//! Workspace root crate.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the `zz-*` crates under `crates/`; the most convenient entry
//! point is [`zz_core`], which re-exports the full co-optimization pipeline.
//!
//! # Quickstart
//!
//! ```
//! use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};
//! use zz_circuit::bench::{BenchmarkKind, generate};
//!
//! let circuit = generate(BenchmarkKind::Qft, 4, 7);
//! let opt = CoOptimizer::builder()
//!     .pulse_method(PulseMethod::Pert)
//!     .scheduler(SchedulerKind::ZzxSched)
//!     .build();
//! let compiled = opt.compile(&circuit)?;
//! assert!(compiled.plan.layer_count() >= 1);
//! # Ok::<(), zz_core::CoOptError>(())
//! ```
//!
//! For many circuits at once, [`zz_core::batch`] compiles whole suites on a
//! worker pool with shared calibration and routing caches:
//!
//! ```
//! use zz_core::batch::{BatchCompiler, BatchJob};
//! use zz_core::{PulseMethod, SchedulerKind};
//! use zz_circuit::bench::{BenchmarkKind, generate};
//!
//! let jobs: Vec<BatchJob> = [PulseMethod::Gaussian, PulseMethod::Pert]
//!     .into_iter()
//!     .map(|m| BatchJob::new(generate(BenchmarkKind::Qft, 4, 7), m, SchedulerKind::ZzxSched))
//!     .collect();
//! let report = BatchCompiler::builder().build().run(jobs);
//! assert_eq!(report.error_count(), 0);
//! println!("{report}");
//! ```
//!
//! Both sit on the typed pass pipeline of [`zz_core::pipeline`]
//! (`Logical → Routed → Native → Scheduled → Compiled`), whose
//! [`PassManager`](zz_core::pipeline::PassManager) times every pass and
//! records stage-cache dispositions into a
//! [`PipelineTrace`](zz_core::pipeline::PipelineTrace):
//!
//! ```
//! use zz_core::pipeline::PassManager;
//! use zz_circuit::bench::{BenchmarkKind, generate};
//! use std::sync::Arc;
//!
//! let outcome = PassManager::builder()
//!     .build()
//!     .run(Arc::new(generate(BenchmarkKind::Qft, 4, 7)))?;
//! assert_eq!(outcome.trace.passes.len(), 5); // validate…pulse, all timed
//! # Ok::<(), zz_core::CoOptError>(())
//! ```
//!
//! To persist compiled artifacts across processes — warm starts for the
//! figure binaries, tests and services — back the compiler with
//! [`zz_persist::ArtifactStore`] (or set `ZZ_CACHE_DIR` and use
//! `BatchCompiler::builder().store_from_env()`); see
//! `examples/warm_cache.rs`.

#![warn(missing_docs)]

pub use zz_circuit as circuit;
pub use zz_core as framework;
pub use zz_graph as graph;
pub use zz_linalg as linalg;
pub use zz_persist as persist;
pub use zz_pulse as pulse;
pub use zz_quantum as quantum;
pub use zz_sched as sched;
pub use zz_sim as sim;
pub use zz_topology as topology;
