//! Workspace root crate.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the `zz-*` crates under `crates/`; the front door is
//! [`zz_service`]: build a [`Target`](zz_service::Target) describing the
//! device, open a [`Session`](zz_service::Session) over it, and submit
//! typed compile/evaluate requests.
//!
//! # Quickstart
//!
//! ```
//! use zz_circuit::bench::{BenchmarkKind, generate};
//! use zz_service::{CompileRequest, Session, Target};
//!
//! let session = Session::new(Target::for_qubits(4)?);
//! let response = session.compile(&CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7)))?;
//! assert!(response.compiled.plan.layer_count() >= 1);
//! # Ok::<(), zz_service::Error>(())
//! ```
//!
//! For many circuits at once, submit non-blocking requests and collect
//! them in order — the session's workers share one calibration cache and
//! one routing memo:
//!
//! ```
//! use zz_circuit::bench::{BenchmarkKind, generate};
//! use zz_service::{CompileOptions, CompileRequest, PulseMethod, Session, Target};
//!
//! let session = Session::new(Target::paper_default());
//! for m in [PulseMethod::Gaussian, PulseMethod::Pert] {
//!     session.submit(
//!         CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7))
//!             .with_options(CompileOptions::default().with_method(m)),
//!     );
//! }
//! let report = session.drain();
//! assert_eq!(report.error_count(), 0);
//! println!("{report}");
//! ```
//!
//! Both paths run the typed pass pipeline of [`zz_core::pipeline`]
//! (`Logical → Routed → Native → Scheduled → Compiled`); every response
//! carries its per-pass [`PipelineTrace`](zz_core::pipeline::PipelineTrace):
//!
//! ```
//! use zz_circuit::bench::{BenchmarkKind, generate};
//! use zz_service::{CompileRequest, Session, Target};
//!
//! let session = Session::new(Target::for_qubits(4)?);
//! let response = session.compile(&CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7)))?;
//! let trace = response.trace.expect("tracing is on by default");
//! assert_eq!(trace.passes.len(), 5); // validate…pulse, all timed
//! # Ok::<(), zz_service::Error>(())
//! ```
//!
//! To persist compiled artifacts across processes — warm starts for the
//! figure binaries, tests and services — give the target an on-disk
//! store (`Target::builder().store_dir(…)`, or set `ZZ_CACHE_DIR` and use
//! `.store_from_env()`); see `examples/warm_cache.rs`.
//!
//! The pre-service facades ([`zz_core::CoOptimizer`],
//! [`zz_core::BatchCompiler`], the `zz_core::evaluate` suite helpers)
//! remain as thin adapters over the same pipeline, pinned bit-identical
//! to the session by `tests/service.rs`.

#![warn(missing_docs)]

pub use zz_circuit as circuit;
pub use zz_core as framework;
pub use zz_fleet as fleet;
pub use zz_graph as graph;
pub use zz_linalg as linalg;
pub use zz_obs as obs;
pub use zz_persist as persist;
pub use zz_pulse as pulse;
pub use zz_quantum as quantum;
pub use zz_sched as sched;
pub use zz_service as service;
pub use zz_sim as sim;
pub use zz_topology as topology;
