//! The paper's real-device validation (Sec 7.4), simulated: Ramsey
//! experiments on a three-transmon line measure the *effective ZZ strength*
//! seen by the middle qubit, with and without protective identity pulses.
//!
//! Run with: `cargo run --example ramsey_experiment --release`

use zz_pulse::ramsey::{effective_zz_khz, NeighborGroup, RamseyCircuit, RamseyConfig};

fn main() {
    let cfg = RamseyConfig {
        blocks: 128, // ~5 µs sweep: enough to resolve kHz-level shifts
        ..RamseyConfig::paper_default()
    };
    println!("three-transmon line Q1–Q2–Q3, λ/2π = 50 kHz per coupling");
    println!("protective identity pulses: DCG (two back-to-back π pulses)\n");

    for (group, label) in [
        (NeighborGroup::Q1Only, "coupling Q2–Q1 only"),
        (NeighborGroup::Q3Only, "coupling Q2–Q3 only"),
        (NeighborGroup::Both, "both couplings"),
    ] {
        println!("{label}:");
        for circuit in [
            RamseyCircuit::Original,
            RamseyCircuit::IdOnQ2,
            RamseyCircuit::IdOnNeighbors,
        ] {
            let zz = effective_zz_khz(circuit, group, &cfg);
            let desc = match circuit {
                RamseyCircuit::Original => "A: bare idling      ",
                RamseyCircuit::IdOnQ2 => "B: I pulses on Q2   ",
                RamseyCircuit::IdOnNeighbors => "C: I pulses on Q1,Q3",
            };
            println!("  circuit {desc} → effective ZZ = {zz:7.1} kHz");
        }
        println!();
    }
    println!("(paper: circuit A ≈ 200 kHz per coupling, circuits B/C < 11 kHz)");
}
