//! Cold vs. warm compilation through the on-disk artifact store.
//!
//! Two passes compile the same benchmark suite against the same device.
//! Each pass uses a *fresh* [`Session`] and a *fresh* calibration cache —
//! as a new process would — so the only state they share is the cache
//! directory. The first pass pays for pulse-level calibration, routing
//! and scheduling and publishes every artifact; the second pass serves
//! everything from disk.
//!
//! ```text
//! cargo run --release --example warm_cache
//! ```
//!
//! Set `ZZ_CACHE_DIR` to persist the cache across invocations (the `fig*`
//! binaries honor the same variable); by default this example uses a
//! scratch directory and removes it at the end.

use std::sync::Arc;
use std::time::Instant;

use zz_bench::demo_requests as suite;
use zz_core::calib::CalibCache;
use zz_persist::CACHE_DIR_ENV;
use zz_service::{ServiceReport, Session, Target};
use zz_topology::Topology;

fn run_pass(name: &str, dir: &std::path::Path) -> ServiceReport {
    // A fresh session *and* a fresh calibration cache: nothing carries
    // over in memory, exactly like a new process.
    let target = Target::builder()
        .topology(Topology::grid(3, 3))
        .store_dir(dir)
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("cache directory is writable");
    let session = Session::new(target);
    let t0 = Instant::now();
    let report = session.run(suite());
    println!("{name:>5} pass: {report}");
    println!("{:>11} {:.1?} end to end", "", t0.elapsed());
    report
}

fn main() {
    let (dir, ephemeral) = match std::env::var(CACHE_DIR_ENV) {
        Ok(d) if !d.is_empty() => (std::path::PathBuf::from(d), false),
        _ => (
            std::env::temp_dir().join(format!("zz-warm-cache-{}", std::process::id())),
            true,
        ),
    };
    println!("artifact store: {}", dir.display());

    let cold = run_pass("cold", &dir);
    let warm = run_pass("warm", &dir);

    assert_eq!(warm.calibration_runs, 0, "warm pass must not calibrate");
    assert_eq!(warm.route_misses, 0, "warm pass must not route");
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        let (c, w) = (
            c.as_ref().expect("cold compiled"),
            w.as_ref().expect("warm compiled"),
        );
        assert_eq!(
            c.compiled, w.compiled,
            "{} must be bit-identical across passes",
            c.label
        );
    }
    // The per-stage traces make the mechanism visible: warm jobs are
    // whole-plan disk hits, so no stage beyond validation executed.
    for stats in warm.stage_stats() {
        if stats.stage != zz_core::Stage::Validate {
            assert_eq!(stats.executed, 0, "warm pass ran stage {}", stats.stage);
        }
    }
    let speedup = cold.cpu_time().as_secs_f64() / warm.cpu_time().as_secs_f64().max(1e-9);
    println!("compile-time speedup (cpu): {speedup:.1}x; outputs bit-identical");

    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        println!("cache kept at {} (set by ${CACHE_DIR_ENV})", dir.display());
    }
}
