//! The paper's motivating example (Figure 3): executing `CNOT₇,₈`, `H₉`,
//! `H₁₀` on a 5×3 grid, showing how identity supplementation and layer
//! partitioning progressively shrink the unsuppressed-crosstalk metrics
//! `NQ` and `NC`.
//!
//! Run with: `cargo run --example motivating_example --release`

use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_sched::{alpha_optimal_suppression, cut_metrics};
use zz_topology::Topology;

fn main() {
    // The paper numbers qubits 1..15 row-major on a 5-wide, 3-row grid.
    let topo = Topology::grid(3, 5);
    println!("device: 5x3 grid, {} couplings\n", topo.coupling_count());

    // Figure 3(b): everything in one layer, no identity gates.
    let mut pulsed = vec![false; 15];
    for q in [6, 7, 8, 9] {
        // CNOT on paper-qubits 7,8 → indices 6,7; H on 9,10 → indices 8,9.
        pulsed[q] = true;
    }
    let m = cut_metrics(&topo, &pulsed);
    println!(
        "(b) one layer, no identities:        NQ = {:2}, NC = {:2}",
        m.nq, m.nc
    );

    // Figure 3(c) plan A: identity gates on paper-qubits 1 and 11.
    let mut plan_a = pulsed.clone();
    plan_a[0] = true;
    plan_a[10] = true;
    let m = cut_metrics(&topo, &plan_a);
    println!(
        "(c) plan A (I on 1, 11):             NQ = {:2}, NC = {:2}",
        m.nq, m.nc
    );

    // Figure 3(c) plan B: identity gates on 1, 11, 3, 13.
    let mut plan_b = pulsed.clone();
    for q in [0, 10, 2, 12] {
        plan_b[q] = true;
    }
    let m = cut_metrics(&topo, &plan_b);
    println!(
        "(c) plan B (I on 1, 11, 3, 13):      NQ = {:2}, NC = {:2}",
        m.nq, m.nc
    );

    // What does Algorithm 1 itself pick for this layer?
    let plan = alpha_optimal_suppression(&topo, &[6, 7, 8, 9], 0.5, 3);
    println!(
        "\nAlgorithm 1 (alpha = 0.5) finds:     NQ = {:2}, NC = {:2}",
        plan.metrics.nq, plan.metrics.nc
    );

    // Figure 3(d): let the full scheduler partition the work into layers.
    let mut native = NativeCircuit::new(15);
    native.push(NativeOp::Zx90 {
        control: 6,
        target: 7,
    }); // the CNOT's pulse
    native.push(NativeOp::X90 { qubit: 8 });
    native.push(NativeOp::X90 { qubit: 9 });
    let schedule = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
    println!("\nZZXSched partition ({} layers):", schedule.layer_count());
    for (i, layer) in schedule.layers.iter().enumerate() {
        let gates: Vec<String> = layer
            .ops
            .iter()
            .filter(|op| !matches!(op, NativeOp::Id { .. }))
            .map(|op| op.to_string())
            .collect();
        println!(
            "  layer {}: NQ = {:2}, NC = {:2}, identities = {:2}, gates = {}",
            i + 1,
            layer.metrics.nq,
            layer.metrics.nc,
            layer.identity_count(),
            gates.join(", ")
        );
    }
}
