//! Domain example: a MaxCut-QAOA workload compiled four ways — every
//! combination of {Gaussian, Pert} pulses and {ParSched, ZZXSched} — to
//! show the synergy the paper's Figure 21 demonstrates: neither optimized
//! pulses nor ZZ-aware scheduling alone recovers the fidelity that the
//! co-optimization reaches.
//!
//! Run with: `cargo run --example qaoa_pipeline --release`

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::evaluate::{device_for, fidelity_of, EvalConfig};
use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};

fn main() -> Result<(), zz_core::CoOptError> {
    let n = 9;
    let circuit = generate(BenchmarkKind::Qaoa, n, 7);
    let device = device_for(n);
    let cfg = EvalConfig::paper_default();

    println!(
        "QAOA-{n} on {}: {} gates ({} two-qubit)\n",
        device.name(),
        circuit.gate_count(),
        circuit.two_qubit_gate_count()
    );
    println!(
        "{:<32} {:>8} {:>10} {:>10}",
        "configuration", "layers", "time (ns)", "fidelity"
    );

    for method in [PulseMethod::Gaussian, PulseMethod::Pert] {
        for sched in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            let compiled = CoOptimizer::builder()
                .topology(device.clone())
                .pulse_method(method)
                .scheduler(sched)
                .build()
                .compile(&circuit)?;
            let fidelity = fidelity_of(&compiled, &cfg);
            println!(
                "{:<32} {:>8} {:>10.0} {:>10.4}",
                format!("{method} + {sched}"),
                compiled.plan.layer_count(),
                compiled.execution_time(),
                fidelity
            );
        }
    }
    println!("\nthe bottom-right cell (Pert + ZZXSched) is the paper's co-optimization");
    Ok(())
}
