//! Domain example: a MaxCut-QAOA workload compiled four ways — every
//! combination of {Gaussian, Pert} pulses and {ParSched, ZZXSched} — to
//! show the synergy the paper's Figure 21 demonstrates: neither optimized
//! pulses nor ZZ-aware scheduling alone recovers the fidelity that the
//! co-optimization reaches.
//!
//! The four configurations go through one non-blocking [`Session`] queue
//! and come back in submission order with their fidelities evaluated by
//! the workers.
//!
//! Run with: `cargo run --example qaoa_pipeline --release`

use std::sync::Arc;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_service::{
    CompileOptions, CompileRequest, EvalSpec, PulseMethod, SchedulerKind, Session, Target,
};

fn main() -> Result<(), zz_service::Error> {
    let n = 9;
    let circuit = Arc::new(generate(BenchmarkKind::Qaoa, n, 7));
    // `for_qubits` picks the paper's smallest sub-grid holding the
    // register (here the 3×3 grid).
    let session = Session::new(Target::for_qubits(n)?);

    println!(
        "QAOA-{n} on {}: {} gates ({} two-qubit)\n",
        session.target().topology().name(),
        circuit.gate_count(),
        circuit.two_qubit_gate_count()
    );
    println!(
        "{:<32} {:>8} {:>10} {:>10}",
        "configuration", "layers", "time (ns)", "fidelity"
    );

    for method in [PulseMethod::Gaussian, PulseMethod::Pert] {
        for sched in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            session.submit(
                CompileRequest::shared(Arc::clone(&circuit))
                    .with_options(CompileOptions::new(method, sched))
                    .with_eval(EvalSpec::paper_default()),
            );
        }
    }
    for outcome in session.drain().outcomes {
        let response = outcome?;
        println!(
            "{:<32} {:>8} {:>10.0} {:>10.4}",
            response.label,
            response.compiled.plan.layer_count(),
            response.compiled.execution_time(),
            response.fidelity.expect("eval requested")
        );
    }
    println!("\nthe bottom row (Pert + ZZXSched) is the paper's co-optimization");
    Ok(())
}
