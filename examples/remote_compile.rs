//! A client round-trip against an in-process `zz_net` server.
//!
//! Starts the TCP front door on an ephemeral port over a paper-default
//! [`Session`], then acts as a remote caller: ping, compile a GHZ
//! circuit (with an in-queue fidelity evaluation), and shut the server
//! down gracefully. The compiled plan that comes back over the wire is
//! asserted bit-identical to an in-process compile of the same circuit —
//! the network layer adds transport, not drift.
//!
//! ```text
//! cargo run --release --example remote_compile
//! ```

use std::sync::Arc;
use std::time::Instant;

use zz_circuit::{Circuit, Gate};
use zz_net::{Client, CompileEnvelope, Server};
use zz_service::{CompileRequest, Session, Target};

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H, &[0]);
    for q in 1..n {
        c.push(Gate::Cnot, &[q - 1, q]);
    }
    c
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: one shared session behind a TCP listener. Port 0
    // binds an ephemeral port; local_addr() reports the real one.
    let session = Arc::new(Session::new(Target::paper_default()));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&session))?;
    let addr = server.local_addr()?;
    let control = server.control();
    let serving = std::thread::spawn(move || server.serve());
    println!("server listening on {addr}");

    // Client side: connect, probe liveness, compile remotely.
    let mut client = Client::connect(addr)?;
    client.ping()?;

    let circuit = ghz(4);
    let t0 = Instant::now();
    let remote = client.compile(
        CompileEnvelope::new(circuit.clone())
            .with_label("ghz-4")
            .with_eval_seeds(vec![11, 23, 37]),
    )?;
    println!(
        "remote compile '{}' [{}]: {} layers in {:.1?} ({} µs server-side), fidelity {:.6}",
        remote.label,
        remote.request_id,
        remote.compiled.plan.layer_count(),
        t0.elapsed(),
        remote.compile_micros,
        remote.fidelity.expect("eval seeds were sent"),
    );

    // The server-assigned request id joins this client-side span to the
    // server's own records: scrape the live registry and pull the
    // matching aggregates in one line.
    let stats = client.stats()?;
    println!(
        "server stats: {} requests, {} pipeline runs, compile p95 {} µs",
        stats.counter("session.requests").unwrap_or(0),
        stats.counter("pipeline.runs").unwrap_or(0),
        stats
            .histogram("session.compile.wall_us")
            .and_then(|h| h.percentile(95.0))
            .unwrap_or(0),
    );

    // The wire adds transport, not drift: the same circuit compiled
    // in-process yields the same plan, bit for bit.
    let local = session.compile(&CompileRequest::new(circuit))?;
    assert_eq!(remote.compiled, local.compiled, "remote ≡ local");
    println!("remote plan is bit-identical to the in-process compile");

    // Graceful shutdown: stop accepting, drain in-flight work, return.
    control.shutdown();
    serving.join().expect("acceptor does not panic")?;
    println!("server drained and exited");
    Ok(())
}
