//! Pulse-level tour: the calibrated library pulses, their suppression
//! quality, and the DRAG correction on a five-level transmon.
//!
//! Run with: `cargo run --example pulse_gallery --release`

use zz_pulse::drag::DragCorrected;
use zz_pulse::library::{id_drive, x90_drive, PulseMethod};
use zz_pulse::systems::{infidelity_1q, infidelity_transmon, residual_zz_rate, QubitDrive};
use zz_pulse::{khz, mhz};
use zz_quantum::gates;

fn main() {
    let lambda = khz(200.0); // the typical device crosstalk strength

    println!("calibrated X90 pulses at λ/2π = 200 kHz:\n");
    println!(
        "{:<10} {:>10} {:>14} {:>16}",
        "method", "T (ns)", "infidelity", "residual ZZ"
    );
    for method in PulseMethod::ALL {
        let drive = x90_drive(method);
        let inf = infidelity_1q(&drive.as_drive(), &gates::x90(), lambda);
        let res = residual_zz_rate(&drive.as_drive(), lambda) / lambda;
        println!(
            "{:<10} {:>10.0} {:>14.2e} {:>15.1}%",
            method,
            drive.duration(),
            inf,
            res * 100.0
        );
    }

    println!("\nidentity pulses (what the scheduler inserts on idle qubits):\n");
    println!("{:<10} {:>10} {:>16}", "method", "T (ns)", "residual ZZ");
    for method in PulseMethod::ALL {
        let drive = id_drive(method);
        let res = residual_zz_rate(&drive.as_drive(), lambda) / lambda;
        println!(
            "{:<10} {:>10.0} {:>15.1}%",
            method,
            drive.duration(),
            res * 100.0
        );
    }

    println!("\nDRAG on a 5-level transmon (α = −300 MHz), Pert X90:\n");
    let alpha = mhz(-300.0);
    let base = x90_drive(PulseMethod::Pert);
    let plain = infidelity_transmon(&base.as_drive(), &gates::x90(), alpha, lambda);
    let d = DragCorrected::new(base.x.as_ref(), base.y.as_ref(), alpha);
    let (dx, dy) = (d.x(), d.y());
    let dragged = infidelity_transmon(&QubitDrive { x: &dx, y: &dy }, &gates::x90(), alpha, lambda);
    println!("  without DRAG: infidelity {plain:.2e}");
    println!("  with DRAG   : infidelity {dragged:.2e}");
}
