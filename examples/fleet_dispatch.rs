//! Fidelity-predictive dispatch across a heterogeneous fleet, through a
//! calibration-drift epoch.
//!
//! A [`Fleet`] of the three shipped device profiles (the paper's 3×4
//! grid, a tunable-coupler grid with order-of-magnitude weaker residual
//! ZZ, and an always-on heavy-hex lattice) receives a mixed job stream.
//! Each job is compiled and scored on every backend that can hold it —
//! simulated fidelity where the device fits under the density-matrix
//! ceiling, a plan-metrics proxy above it — and dispatched to the best
//! predicted backend. An [`advance_epoch`](Fleet::advance_epoch) call
//! then drifts every device's ground-truth λ; any device past the
//! invalidation threshold is re-characterized (fresh calibration cache,
//! epoch-salted artifact keys) before the stream continues.
//!
//! ```text
//! cargo run --release --example fleet_dispatch
//! ```

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_fleet::{Fleet, FleetConfig};
use zz_service::CompileOptions;

fn main() {
    // A tight threshold so the single drift epoch below visibly
    // re-characterizes part of the fleet.
    let config = FleetConfig {
        seed: 0x5eed,
        invalidation_threshold: 0.05,
        threads_per_device: 1,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::standard(config).expect("the standard fleet builds");
    println!("fleet: {:?}", fleet.devices());

    let stream = [
        (BenchmarkKind::Qft, 4),
        (BenchmarkKind::HiddenShift, 6),
        (BenchmarkKind::Qft, 16), // only the 18-qubit heavy-hex fits
    ];
    for (kind, qubits) in stream {
        let dispatch = fleet
            .submit(generate(kind, qubits, 5), CompileOptions::default())
            .expect("some backend holds the job");
        println!("\n{kind} on {qubits} qubits -> {}", dispatch.device);
        for candidate in &dispatch.candidates {
            let marker = if candidate.device == dispatch.device {
                "*"
            } else {
                " "
            };
            println!(
                "  {marker} {:>16}  score {:.4}  ({:?})",
                candidate.device, candidate.score, candidate.kind
            );
        }
    }

    // One calibration epoch: every ground-truth λ drifts; devices past
    // the threshold get a fresh calibration cache and epoch-salted
    // artifact keys, so no stale residual table is ever reused.
    let epoch = fleet.advance_epoch().expect("the epoch advances");
    println!("\nepoch {}:", epoch.epoch);
    for inv in &epoch.invalidations {
        println!(
            "  recalibrated {:>16}  λ {:.6} -> {:.6} rad/ns ({:.1}% drift)",
            inv.device,
            inv.previous_lambda,
            inv.new_lambda,
            inv.deviation * 100.0
        );
    }
    if epoch.invalidations.is_empty() {
        println!("  all devices within threshold");
    }

    // The same small job after drift: scores shift with the new
    // calibrations, and dispatch may re-route.
    let dispatch = fleet
        .submit(
            generate(BenchmarkKind::Qft, 4, 5),
            CompileOptions::default(),
        )
        .expect("dispatches");
    println!("\nQFT on 4 qubits after drift -> {}", dispatch.device);
    for candidate in &dispatch.candidates {
        println!(
            "    {:>16}  score {:.4}  ({:?})",
            candidate.device, candidate.score, candidate.kind
        );
    }

    println!("\n{}", fleet.report());
}
