//! Hidden Shift end to end, the way a device run looks: compile, execute
//! under the ZZ error model, and *sample measurement shots* — comparing how
//! often the correct answer is read out with and without co-optimization.
//!
//! Compilation goes through the service layer (one [`Target`], one
//! [`Session`]); the shot sampling below drives the simulator directly,
//! as a readout experiment would.
//!
//! Run with: `cargo run --example hidden_shift_readout --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zz_circuit::bench::{generate, hidden_shift_answer, BenchmarkKind};
use zz_service::{CompileOptions, CompileRequest, PulseMethod, SchedulerKind, Session, Target};
use zz_sim::executor::{run_ideal, run_with_zz, ZzErrorModel};

fn main() -> Result<(), zz_service::Error> {
    let n = 6;
    let seed = 7;
    let circuit = generate(BenchmarkKind::HiddenShift, n, seed);
    let session = Session::new(Target::for_qubits(n)?);
    let device = session.target().topology().clone();
    let shift = hidden_shift_answer(n, seed);
    let shift_string: String = shift.iter().map(|b| char::from(b'0' + b)).collect();
    println!("hidden shift: |{shift_string}⟩, device {}\n", device.name());

    let shots = 4096;
    for (name, method, sched) in [
        (
            "baseline  (Gaussian + ParSched)",
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
        ),
        (
            "co-optimized (Pert + ZZXSched)",
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
        ),
    ] {
        let response = session.compile(
            &CompileRequest::new(circuit.clone())
                .with_options(CompileOptions::new(method, sched))
                .with_label(name),
        )?;
        let compiled = &response.compiled;
        let model = ZzErrorModel::sampled(
            &device,
            session.target().lambda_mean(),
            session.target().lambda_std(),
            11,
        )
        .with_residuals(compiled.residuals);
        let noisy = run_with_zz(&compiled.plan, &device, &model, &compiled.durations);

        // The ideal output tells us which physical basis state encodes the
        // answer (the snake layout permutes wires).
        let ideal = run_ideal(&compiled.plan);
        let answer_index = ideal
            .amplitudes()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs_sq().partial_cmp(&b.1.abs_sq()).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty state");

        let mut rng = StdRng::seed_from_u64(42);
        let counts = noisy.sample_counts(shots, &mut rng);
        let correct = counts
            .iter()
            .find(|(idx, _)| *idx == answer_index)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        println!("{name}");
        println!(
            "  correct readout: {correct}/{shots} shots ({:.1}%)",
            100.0 * correct as f64 / shots as f64
        );
        let top: Vec<String> = counts
            .iter()
            .take(3)
            .map(|(idx, c)| format!("{idx:0n$b}:{c}"))
            .collect();
        println!("  top outcomes   : {}\n", top.join("  "));
    }
    Ok(())
}
