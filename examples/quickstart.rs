//! Quickstart: compile a circuit with and without ZZ-aware co-optimization
//! and compare the outcome.
//!
//! Run with: `cargo run --example quickstart --release`

use zz_circuit::{Circuit, Gate};
use zz_core::evaluate::{fidelity_of, EvalConfig};
use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};
use zz_topology::Topology;

fn main() -> Result<(), zz_core::CoOptError> {
    // A 6-qubit GHZ-preparation circuit.
    let mut circuit = Circuit::new(6);
    circuit.push(Gate::H, &[0]);
    for i in 0..5 {
        circuit.push(Gate::Cnot, &[i, i + 1]);
    }

    let device = Topology::grid(2, 3);
    let cfg = EvalConfig::paper_default();

    println!(
        "device: {} ({} qubits, {} couplings)\n",
        device.name(),
        device.qubit_count(),
        device.coupling_count()
    );

    for (name, method, sched) in [
        (
            "baseline  (Gaussian + ParSched)",
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
        ),
        (
            "co-optimized (Pert + ZZXSched)",
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
        ),
    ] {
        let compiled = CoOptimizer::builder()
            .topology(device.clone())
            .pulse_method(method)
            .scheduler(sched)
            .build()
            .compile(&circuit)?;
        let fidelity = fidelity_of(&compiled, &cfg);
        println!("{name}");
        println!("  layers            : {}", compiled.plan.layer_count());
        println!("  identity pulses   : {}", compiled.plan.identity_count());
        println!(
            "  mean NC / NQ      : {:.2} / {:.2}",
            compiled.plan.mean_nc(),
            compiled.plan.mean_nq()
        );
        println!("  execution time    : {:.0} ns", compiled.execution_time());
        println!(
            "  residual ZZ (x90/id): {:.4} / {:.4}",
            compiled.residuals.x90, compiled.residuals.id
        );
        println!("  output fidelity   : {fidelity:.4}\n");
    }
    Ok(())
}
