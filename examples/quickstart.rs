//! Quickstart: compile a circuit with and without ZZ-aware co-optimization
//! and compare the outcome — through the service layer's one front door.
//!
//! Run with: `cargo run --example quickstart --release`

use zz_circuit::{Circuit, Gate};
use zz_service::{
    CompileOptions, CompileRequest, EvalSpec, PulseMethod, SchedulerKind, Session, Target,
};
use zz_topology::Topology;

fn main() -> Result<(), zz_service::Error> {
    // A 6-qubit GHZ-preparation circuit.
    let mut circuit = Circuit::new(6);
    circuit.push(Gate::H, &[0]);
    for i in 0..5 {
        circuit.push(Gate::Cnot, &[i, i + 1]);
    }

    // One target describes the device; one session serves every request.
    let target = Target::builder().topology(Topology::grid(2, 3)).build()?;
    println!(
        "device: {} ({} qubits, {} couplings)\n",
        target.topology().name(),
        target.topology().qubit_count(),
        target.topology().coupling_count()
    );
    let session = Session::new(target);

    for (name, method, sched) in [
        (
            "baseline  (Gaussian + ParSched)",
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
        ),
        (
            "co-optimized (Pert + ZZXSched)",
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
        ),
    ] {
        let request = CompileRequest::new(circuit.clone())
            .with_options(CompileOptions::new(method, sched))
            .with_eval(EvalSpec::paper_default())
            .with_label(name);
        let response = session.compile(&request)?;
        let compiled = &response.compiled;
        println!("{name}");
        println!("  layers            : {}", compiled.plan.layer_count());
        println!("  identity pulses   : {}", compiled.plan.identity_count());
        println!(
            "  mean NC / NQ      : {:.2} / {:.2}",
            compiled.plan.mean_nc(),
            compiled.plan.mean_nq()
        );
        println!("  execution time    : {:.0} ns", compiled.execution_time());
        println!(
            "  residual ZZ (x90/id): {:.4} / {:.4}",
            compiled.residuals.x90, compiled.residuals.id
        );
        println!(
            "  output fidelity   : {:.4}\n",
            response.fidelity.expect("eval requested")
        );
    }
    Ok(())
}
