//! Property-based tests across the whole pipeline: random circuits stay
//! correct through routing, native compilation and both schedulers.
//!
//! Random circuits are drawn from the workspace PRNG with per-case seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zz_circuit::native::compile_to_native;
use zz_circuit::{route, Circuit, Gate};
use zz_quantum::gates::equal_up_to_phase;
use zz_sched::par_schedule;
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_sched::GateDurations;
use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};
use zz_topology::Topology;

/// Pushes one random gate acting on up to `n` qubits.
fn push_arb_op(rng: &mut StdRng, c: &mut Circuit, n: usize) {
    if rng.gen_bool(0.5) {
        let q = rng.gen_range(0..n);
        let gate = match rng.gen_range(0..8usize) {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::T,
            3 => Gate::S,
            4 => Gate::Rx(0.7),
            5 => Gate::Rz(1.3),
            6 => Gate::Ry(-0.4),
            _ => Gate::U3(0.3, 1.1, -0.8),
        };
        c.push(gate, &[q]);
    } else {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        if a == b {
            b = (b + 1) % n;
        }
        let gate = match rng.gen_range(0..4usize) {
            0 => Gate::Cnot,
            1 => Gate::Cz,
            2 => Gate::Rzz(0.9),
            _ => Gate::Swap,
        };
        c.push(gate, &[a, b]);
    }
}

fn arb_circuit(rng: &mut StdRng, n: usize, max_len: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..rng.gen_range(1..max_len) {
        push_arb_op(rng, &mut c, n);
    }
    c
}

#[test]
fn random_circuits_compile_correctly() {
    for case in 0..24u64 {
        let rng = &mut StdRng::seed_from_u64(case);
        let circuit = arb_circuit(rng, 5, 12);
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let reference = native.unitary();

        let par = par_schedule(&topo, &native);
        assert!(par.validate().is_ok(), "case {case}");
        assert!(
            equal_up_to_phase(&par.unitary(), &reference, 1e-7),
            "case {case}"
        );

        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(zzx.validate().is_ok(), "case {case}");
        assert!(
            equal_up_to_phase(&zzx.unitary(), &reference, 1e-7),
            "case {case}"
        );
    }
}

#[test]
fn zzxsched_never_regresses_suppression() {
    for case in 0..24u64 {
        let rng = &mut StdRng::seed_from_u64(case);
        let circuit = arb_circuit(rng, 6, 16);
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let par = par_schedule(&topo, &native);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(zzx.mean_nc() <= par.mean_nc() + 1e-9, "case {case}");
    }
}

#[test]
fn suppression_translates_into_fidelity() {
    for case in 0..24u64 {
        let rng = &mut StdRng::seed_from_u64(case);
        let circuit = arb_circuit(rng, 6, 14);
        // With a tiny residual factor, the ZZXSched plan must be at least
        // as good as ParSched under the same disorder sample.
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let model = ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 5)
            .with_residual(0.005);
        let d = GateDurations::standard();
        let par = par_schedule(&topo, &native);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        let f_par = fidelity_under_zz(&par, &topo, &model, &d);
        let f_zzx = fidelity_under_zz(&zzx, &topo, &model, &d);
        // Allow a tiny tolerance: layer structure can shuffle which exact
        // couplings fire, but the aggregate must not collapse.
        assert!(
            f_zzx >= f_par - 0.05,
            "case {case}: zzx {f_zzx} vs par {f_par}"
        );
    }
}

#[test]
fn fidelity_is_monotone_in_crosstalk_strength() {
    for seed in 0u64..50 {
        let topo = Topology::grid(2, 2);
        let circuit = zz_circuit::bench::generate(zz_circuit::bench::BenchmarkKind::Qft, 4, seed);
        let native = compile_to_native(&route(&circuit, &topo));
        let plan = par_schedule(&topo, &native);
        let d = GateDurations::standard();
        let weak = ZzErrorModel::uniform(&topo, zz_sim::khz(50.0));
        let strong = ZzErrorModel::uniform(&topo, zz_sim::khz(400.0));
        let f_weak = fidelity_under_zz(&plan, &topo, &weak, &d);
        let f_strong = fidelity_under_zz(&plan, &topo, &strong, &d);
        assert!(
            f_weak >= f_strong - 1e-9,
            "seed {seed}: weak {f_weak} vs strong {f_strong}"
        );
    }
}
