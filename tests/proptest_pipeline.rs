//! Property-based tests across the whole pipeline: random circuits stay
//! correct through routing, native compilation and both schedulers.

use proptest::prelude::*;
use zz_circuit::native::compile_to_native;
use zz_circuit::{route, Circuit, Gate};
use zz_quantum::gates::equal_up_to_phase;
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_sched::par_schedule;
use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};
use zz_sched::GateDurations;
use zz_topology::Topology;

/// A random gate on up to `n` qubits.
fn arb_op(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let one_q = (0..8usize, 0..n).prop_map(|(g, q)| {
        let gate = match g {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::T,
            3 => Gate::S,
            4 => Gate::Rx(0.7),
            5 => Gate::Rz(1.3),
            6 => Gate::Ry(-0.4),
            _ => Gate::U3(0.3, 1.1, -0.8),
        };
        (gate, vec![q])
    });
    let two_q = (0..4usize, 0..n, 0..n).prop_filter_map("distinct qubits", move |(g, a, b)| {
        if a == b {
            return None;
        }
        let gate = match g {
            0 => Gate::Cnot,
            1 => Gate::Cz,
            2 => Gate::Rzz(0.9),
            _ => Gate::Swap,
        };
        Some((gate, vec![a, b]))
    });
    prop_oneof![one_q, two_q]
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_op(n), 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (g, qs) in ops {
            c.push(g, &qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_compile_correctly(circuit in arb_circuit(5, 12)) {
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let reference = native.unitary();

        let par = par_schedule(&topo, &native);
        prop_assert!(par.validate().is_ok());
        prop_assert!(equal_up_to_phase(&par.unitary(), &reference, 1e-7));

        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        prop_assert!(zzx.validate().is_ok());
        prop_assert!(equal_up_to_phase(&zzx.unitary(), &reference, 1e-7));
    }

    #[test]
    fn zzxsched_never_regresses_suppression(circuit in arb_circuit(6, 16)) {
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let par = par_schedule(&topo, &native);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        prop_assert!(zzx.mean_nc() <= par.mean_nc() + 1e-9);
    }

    #[test]
    fn suppression_translates_into_fidelity(circuit in arb_circuit(6, 14)) {
        // With a tiny residual factor, the ZZXSched plan must be at least
        // as good as ParSched under the same disorder sample.
        let topo = Topology::grid(2, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        let model = ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 5)
            .with_residual(0.005);
        let d = GateDurations::standard();
        let par = par_schedule(&topo, &native);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        let f_par = fidelity_under_zz(&par, &topo, &model, &d);
        let f_zzx = fidelity_under_zz(&zzx, &topo, &model, &d);
        // Allow a tiny tolerance: layer structure can shuffle which exact
        // couplings fire, but the aggregate must not collapse.
        prop_assert!(f_zzx >= f_par - 0.05, "zzx {f_zzx} vs par {f_par}");
    }

    #[test]
    fn fidelity_is_monotone_in_crosstalk_strength(seed in 0u64..50) {
        let topo = Topology::grid(2, 2);
        let circuit = zz_circuit::bench::generate(zz_circuit::bench::BenchmarkKind::Qft, 4, seed);
        let native = compile_to_native(&route(&circuit, &topo));
        let plan = par_schedule(&topo, &native);
        let d = GateDurations::standard();
        let weak = ZzErrorModel::uniform(&topo, zz_sim::khz(50.0));
        let strong = ZzErrorModel::uniform(&topo, zz_sim::khz(400.0));
        let f_weak = fidelity_under_zz(&plan, &topo, &weak, &d);
        let f_strong = fidelity_under_zz(&plan, &topo, &strong, &d);
        prop_assert!(f_weak >= f_strong - 1e-9, "weak {f_weak} vs strong {f_strong}");
    }
}
