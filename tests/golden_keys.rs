//! Golden-value regression tests for the on-disk cache keys.
//!
//! `Circuit::content_digest` and `zz_core::batch::shape_key` key the
//! persistent artifact store ([`zz_persist`]), so their outputs are part
//! of the on-disk format: if either silently changed meaning, a warm cache
//! would serve artifacts for the *wrong* circuits. These tests pin exact
//! outputs for fixed inputs. If one fails because a key function had to
//! change, bump [`zz_persist::SCHEMA_VERSION`] in the same PR and update
//! the pinned values — never update the values alone.

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::{Circuit, Gate};
use zz_core::batch::shape_key;
use zz_topology::Topology;

/// A fixed hand-built circuit with parameter-free gates.
fn bell_plus() -> Circuit {
    let mut c = Circuit::new(3);
    c.push(Gate::H, &[0])
        .push(Gate::Cnot, &[0, 1])
        .push(Gate::X, &[2])
        .push(Gate::Swap, &[1, 2]);
    c
}

/// A fixed circuit whose digest depends on exact angle bit patterns.
fn rotations() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::Rx(0.5), &[0])
        .push(Gate::Rz(-std::f64::consts::PI), &[1])
        .push(Gate::U3(0.1, 0.2, 0.3), &[0])
        .push(Gate::Rzz(2.0_f64.sqrt()), &[0, 1]);
    c
}

#[test]
fn content_digest_is_pinned() {
    assert_eq!(
        bell_plus().content_digest(),
        0xf7205d647c7aa7edu64,
        "bell_plus"
    );
    assert_eq!(
        rotations().content_digest(),
        0xdef101fe87bc4d90u64,
        "rotations"
    );
    // Seeded benchmark generation feeds the same keys, so its stability is
    // pinned too (kind, size and seed are part of the figure pipeline).
    assert_eq!(
        generate(BenchmarkKind::Qft, 4, 7).content_digest(),
        0x3f047223346b62e1u64,
        "qft-4 seed 7"
    );
}

#[test]
fn shape_key_is_pinned() {
    assert_eq!(
        shape_key(&bell_plus(), &Topology::grid(2, 2)),
        0x8c6121df6931459eu64
    );
    assert_eq!(
        shape_key(&bell_plus(), &Topology::ibmq_vigo()),
        0xea4aa0ec0710b3acu64
    );
    assert_eq!(
        shape_key(&rotations(), &Topology::line(2)),
        0x44471d4ef01894eau64
    );
    // The at-scale lattice added by the compile-path scaling work: its
    // shape keys join the on-disk format the moment large-device
    // artifacts are cached, so they are pinned like the paper grids.
    assert_eq!(
        shape_key(&bell_plus(), &Topology::heavy_hex(3)),
        0x712055fcf0b62175u64
    );
}

#[test]
fn digests_depend_on_angle_bits_not_angle_values() {
    // −0.0 == 0.0 numerically, but the bit patterns differ, so the digests
    // must differ: caches key exact compilation inputs.
    let mut pos = Circuit::new(1);
    pos.push(Gate::Rz(0.0), &[0]);
    let mut neg = Circuit::new(1);
    neg.push(Gate::Rz(-0.0), &[0]);
    assert_ne!(pos.content_digest(), neg.content_digest());
}

#[test]
#[ignore = "helper for regenerating pinned values after an intentional schema bump"]
fn print_current_keys() {
    println!("bell_plus  digest: {:#018x}", bell_plus().content_digest());
    println!("rotations  digest: {:#018x}", rotations().content_digest());
    println!(
        "qft-4/7    digest: {:#018x}",
        generate(BenchmarkKind::Qft, 4, 7).content_digest()
    );
    println!(
        "bell@2x2   shape:  {:#018x}",
        shape_key(&bell_plus(), &Topology::grid(2, 2))
    );
    println!(
        "bell@vigo  shape:  {:#018x}",
        shape_key(&bell_plus(), &Topology::ibmq_vigo())
    );
    println!(
        "rot@line2  shape:  {:#018x}",
        shape_key(&rotations(), &Topology::line(2))
    );
    println!(
        "bell@hhd3  shape:  {:#018x}",
        shape_key(&bell_plus(), &Topology::heavy_hex(3))
    );
}
