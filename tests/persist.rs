//! Integration tests of the on-disk compilation cache: a warm start in a
//! fresh compiler with reset calibration state must reproduce the cold
//! pass bit-identically with zero recompilation, and every failure mode of
//! the cache (corruption, truncation, stale versions, unwritable
//! directories) must degrade to recompilation — never to an error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::batch::{BatchCompiler, BatchJob};
use zz_core::calib::CalibCache;
use zz_core::{PulseMethod, SchedulerKind};
use zz_persist::ArtifactStore;
use zz_topology::Topology;

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "zz-persist-it-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small suite exercising both schedulers, three pulse methods and two
/// distinct circuit shapes.
fn suite_jobs() -> Vec<BatchJob> {
    let qft = Arc::new(generate(BenchmarkKind::Qft, 4, 7));
    let ising = Arc::new(generate(BenchmarkKind::Ising, 6, 7));
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
        (PulseMethod::Dcg, SchedulerKind::ZzxSched),
    ];
    [qft, ising]
        .iter()
        .flat_map(|c| {
            configs
                .iter()
                .map(move |&(m, s)| BatchJob::shared(Arc::clone(c), m, s))
        })
        .collect()
}

/// A compiler over `suite_jobs()`-sized devices with isolated calibration
/// state, backed by `dir`.
fn compiler_at(dir: &PathBuf, calib: Arc<CalibCache>) -> BatchCompiler {
    BatchCompiler::builder()
        .topology(Topology::grid(3, 3))
        .store(ArtifactStore::at(dir))
        .calib_cache(calib)
        .build()
}

#[test]
fn warm_start_is_bit_identical_with_zero_calibration_and_routing() {
    let dir = scratch_dir("warm");
    let jobs = suite_jobs().len();

    // Cold pass: fresh cache directory, fresh calibration state — every
    // job misses disk, calibration actually measures, every shape routes.
    let cold_calib = Arc::new(CalibCache::new());
    let cold = compiler_at(&dir, Arc::clone(&cold_calib)).run(suite_jobs());
    assert_eq!(cold.error_count(), 0, "{cold}");
    assert_eq!(cold.disk_hits, 0, "{cold}");
    assert_eq!(cold.disk_misses, jobs, "{cold}");
    assert!(cold.calibration_runs > 0, "{cold}");
    assert!(cold.route_misses > 0, "{cold}");
    assert_eq!(cold_calib.calibration_runs(), cold.calibration_runs);

    // Warm pass: a *new* compiler and *reset* calibration state, backed by
    // the same directory. Everything must come from disk: zero pulse-level
    // measurements, zero routing passes, all compiled plans served.
    let warm_calib = Arc::new(CalibCache::new());
    let warm = compiler_at(&dir, Arc::clone(&warm_calib)).run(suite_jobs());
    assert_eq!(warm.error_count(), 0, "{warm}");
    assert_eq!(warm.calibration_runs, 0, "{warm}");
    assert_eq!(warm_calib.calibration_runs(), 0);
    assert_eq!(warm.route_misses, 0, "{warm}");
    assert_eq!(warm.disk_hits, jobs, "{warm}");
    assert_eq!(warm.disk_misses, 0, "{warm}");

    // The stage traces agree: every warm job is a whole-plan disk hit,
    // so no stage beyond validation executed anywhere in the batch.
    for stats in warm.stage_stats() {
        if stats.stage == zz_core::Stage::Validate {
            assert_eq!(stats.executed, jobs, "{warm}");
        } else {
            assert_eq!(stats.executed, 0, "warm {} ran: {warm}", stats.stage);
        }
    }
    for outcome in &warm.outcomes {
        assert_eq!(
            outcome.trace.compiled_cache,
            zz_core::pipeline::CacheDisposition::DiskHit,
            "{}",
            outcome.label
        );
    }

    // And the outputs are bit-identical, field for field.
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(
            c.result.as_ref().expect("cold compiled"),
            w.result.as_ref().expect("warm compiled"),
            "{} diverged across the disk round-trip",
            c.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_cache_files_are_recompiled_silently() {
    let dir = scratch_dir("damaged");
    let jobs = suite_jobs().len();
    let cold = compiler_at(&dir, Arc::new(CalibCache::new())).run(suite_jobs());
    assert_eq!(cold.error_count(), 0, "{cold}");

    // Damage every artifact in the cache in a rotating style: truncate,
    // corrupt a payload byte, stamp a stale schema version.
    let mut damaged = 0usize;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in walk(&dir) {
        files.push(entry);
    }
    files.sort();
    assert!(!files.is_empty(), "cold pass must populate the cache");
    for (i, path) in files.iter().enumerate() {
        let bytes = std::fs::read(path).expect("artifact readable");
        let mangled = match i % 3 {
            0 => bytes[..bytes.len() / 2].to_vec(), // truncated
            1 => {
                let mut b = bytes;
                let last = b.len() - 1;
                b[last] ^= 0x55; // corrupted payload
                b
            }
            _ => {
                let mut b = bytes;
                b[4..8].copy_from_slice(&u32::MAX.to_le_bytes()); // stale version
                b
            }
        };
        std::fs::write(path, mangled).expect("artifact writable");
        damaged += 1;
    }
    assert!(damaged >= jobs, "every compiled artifact damaged");

    // The warm pass sees only damaged files: every read is a miss, every
    // job recompiles successfully, and the outputs still match the cold
    // pass bit for bit.
    let recovery = compiler_at(&dir, Arc::new(CalibCache::new())).run(suite_jobs());
    assert_eq!(recovery.error_count(), 0, "{recovery}");
    assert_eq!(recovery.disk_hits, 0, "{recovery}");
    assert_eq!(recovery.disk_misses, jobs, "{recovery}");
    assert!(recovery.calibration_runs > 0, "{recovery}");
    for (c, r) in cold.outcomes.iter().zip(&recovery.outcomes) {
        assert_eq!(
            c.result.as_ref().expect("cold compiled"),
            r.result.as_ref().expect("recovery compiled"),
            "{} diverged after cache damage",
            c.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_degrades_to_in_memory_compilation() {
    // Root the store under a regular *file*, so neither directories nor
    // artifacts can ever be created: the batch must behave exactly like a
    // store-less compiler, erroring nowhere.
    let dir = scratch_dir("unwritable");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").expect("blocker file");

    let jobs = suite_jobs().len();
    let report = compiler_at(&blocker.join("cache"), Arc::new(CalibCache::new())).run(suite_jobs());
    assert_eq!(report.error_count(), 0, "{report}");
    assert_eq!(report.disk_hits, 0, "{report}");
    assert_eq!(report.disk_misses, jobs, "{report}");

    // Same results as a compiler with no store at all.
    let baseline = BatchCompiler::builder()
        .topology(Topology::grid(3, 3))
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .run(suite_jobs());
    for (a, b) in report.outcomes.iter().zip(&baseline.outcomes) {
        assert_eq!(
            a.result.as_ref().expect("degraded compiled"),
            b.result.as_ref().expect("baseline compiled"),
            "{} diverged between degraded-store and store-less compilation",
            a.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calib_cache_snapshots_roundtrip_through_a_store() {
    let dir = scratch_dir("calib-snapshot");
    let store = ArtifactStore::at(&dir);

    let source = CalibCache::new();
    source.residuals(PulseMethod::Gaussian);
    source.residuals(PulseMethod::Pert);
    assert_eq!(source.calibration_runs(), 2);
    assert_eq!(source.save_to(&store), 2);

    // A fresh cache imports both tables from disk without measuring.
    let restored = CalibCache::new();
    assert_eq!(restored.load_from(&store), 2);
    assert_eq!(restored.calibration_runs(), 0);
    for m in [PulseMethod::Gaussian, PulseMethod::Pert] {
        assert_eq!(restored.peek(m), Some(source.residuals(m)), "{m}");
    }
    // Unmeasured methods stay empty, and importing over a filled slot is a
    // no-op (already-measured tables win).
    assert_eq!(restored.peek(PulseMethod::Dcg), None);
    assert_eq!(restored.import(&source.snapshot()), 0);

    // A store without a snapshot is a silent no-op.
    let empty = ArtifactStore::at(dir.join("empty"));
    assert_eq!(CalibCache::new().load_from(&empty), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recursively lists the files under `dir`.
fn walk(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}
