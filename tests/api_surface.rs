//! Public-API snapshot of the front-door crates — the same spirit as
//! `tests/golden_keys.rs`, applied to the public surface instead of the
//! on-disk key space.
//!
//! The test extracts every `pub` item declaration (functions with their
//! signatures, structs, enums, traits, constants and re-exports) from
//! `crates/service/src`, `crates/net/src`, `crates/obs/src` and
//! `crates/fleet/src` — the in-process front door, the wire protocol
//! over it, the metrics surface they publish into and the fleet layer
//! above them — and compares the sorted list against
//! the checked-in snapshot `tests/api_surface.snapshot`. An unreviewed
//! addition, removal or signature change of either surface fails
//! CI; an intentional one is recorded by regenerating the snapshot:
//!
//! ```text
//! UPDATE_API_SNAPSHOT=1 cargo test --test api_surface
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Strips `//` line comments (doc comments included) so commented-out
/// items never count as API.
fn strip_line_comments(source: &str) -> String {
    source
        .lines()
        .map(|line| match line.find("//") {
            Some(idx) => &line[..idx],
            None => line,
        })
        .fold(String::new(), |mut out, line| {
            out.push_str(line);
            out.push('\n');
            out
        })
}

/// Extracts every `pub <kind> …` declaration from one source file,
/// normalized to single-space whitespace. A declaration runs from its
/// `pub` keyword to the first top-level `{`, `;` or `=` — enough to pin
/// names, function signatures and re-export lists.
fn public_items(source: &str) -> Vec<String> {
    const KINDS: [&str; 8] = [
        "use", "fn", "struct", "enum", "trait", "const", "type", "mod",
    ];
    let source = strip_line_comments(source);
    let mut items = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    while let Some(rel) = source[i..].find("pub ") {
        let start = i + rel;
        // `pub` must start a token ("pub(crate)" never matches "pub ").
        if start > 0 && !bytes[start - 1].is_ascii_whitespace() {
            i = start + 4;
            continue;
        }
        let rest = &source[start + 4..];
        let Some(kind) = KINDS
            .iter()
            .find(|k| rest.starts_with(&format!("{k} ")) || rest.starts_with(&format!("{k}\n")))
        else {
            i = start + 4;
            continue;
        };
        // Scan to the declaration's end, ignoring nested (), <> and [].
        // Re-exports (`pub use a::{A, B};`) end only at `;` — their brace
        // group is part of the declaration.
        let mut depth = 0i32;
        let mut end = start;
        let mut previous = ' ';
        for (j, c) in source[start..].char_indices() {
            match c {
                ';' if depth <= 0 => {
                    end = start + j;
                    break;
                }
                '{' | '=' if depth <= 0 && *kind != "use" => {
                    end = start + j;
                    break;
                }
                '(' | '[' | '<' => depth += 1,
                // A return arrow's `>` is punctuation, not a bracket.
                '>' if previous != '-' => depth -= 1,
                ')' | ']' => depth -= 1,
                '{' if *kind == "use" => depth += 1,
                '}' if *kind == "use" => depth -= 1,
                _ => {}
            }
            previous = c;
        }
        let declaration: String = source[start..end]
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        // Private modules (`mod error`) are hidden wiring, not API.
        if *kind != "mod" || declaration.contains("pub mod") {
            items.push(declaration);
        }
        i = end.max(start + 4);
    }
    items
}

/// The crates whose public surface the snapshot pins: the in-process
/// service front door, the network layer over it, the observability
/// layer both of them publish into, and the fleet layer above them all.
const SNAPSHOT_CRATES: [&str; 4] = ["service", "net", "obs", "fleet"];

fn public_surface() -> String {
    let mut items = Vec::new();
    for crate_dir in SNAPSHOT_CRATES {
        let src = repo_root().join("crates").join(crate_dir).join("src");
        let mut files: Vec<PathBuf> = std::fs::read_dir(&src)
            .unwrap_or_else(|e| panic!("crates/{crate_dir}/src exists: {e}"))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
            .collect();
        files.sort();

        for file in &files {
            let name = file.file_name().expect("file name").to_string_lossy();
            let source = std::fs::read_to_string(file).expect("crate source readable");
            // Unit-test modules declare pub-free fns; the `pub` scan below
            // is enough, but guard against future `pub` items inside
            // cfg(test).
            let source = source
                .split("#[cfg(test)]")
                .next()
                .expect("split returns at least one piece");
            for item in public_items(source) {
                items.push(format!("{crate_dir}/{name}: {item}"));
            }
        }
    }
    items.sort();
    items.dedup();
    let mut out = String::new();
    for item in items {
        let _ = writeln!(out, "{item}");
    }
    out
}

#[test]
fn public_api_matches_the_checked_in_snapshot() {
    let snapshot_path = repo_root().join("tests/api_surface.snapshot");
    let actual = public_surface();

    if std::env::var("UPDATE_API_SNAPSHOT").is_ok_and(|v| !v.is_empty()) {
        std::fs::write(&snapshot_path, &actual).expect("snapshot writable");
        eprintln!("snapshot updated: {}", snapshot_path.display());
        return;
    }

    let expected = std::fs::read_to_string(&snapshot_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", snapshot_path.display()));
    if expected != actual {
        let diff = diff_lines(&expected, &actual);
        panic!(
            "the zz_service/zz_net public API drifted from tests/api_surface.snapshot.\n\
             Review the change, then regenerate with:\n\
             UPDATE_API_SNAPSHOT=1 cargo test --test api_surface\n\n{diff}"
        );
    }
}

/// A minimal set-style diff: lines only in the snapshot (`-`) and lines
/// only in the current surface (`+`).
fn diff_lines(expected: &str, actual: &str) -> String {
    let expected_set: std::collections::BTreeSet<&str> = expected.lines().collect();
    let actual_set: std::collections::BTreeSet<&str> = actual.lines().collect();
    let mut out = String::new();
    for gone in expected_set.difference(&actual_set) {
        let _ = writeln!(out, "- {gone}");
    }
    for new in actual_set.difference(&expected_set) {
        let _ = writeln!(out, "+ {new}");
    }
    out
}

/// The extractor itself is pinned so snapshot diffs stay trustworthy.
#[test]
fn extractor_handles_the_declaration_shapes_in_use() {
    let items = public_items(
        "pub struct Foo { pub bar: usize }\n\
         impl Foo {\n    pub fn new(x: usize) -> Self { Foo { bar: x } }\n}\n\
         pub(crate) fn hidden() {}\n\
         mod private;\n\
         pub use other::{A, B};\n\
         pub const N: usize = 3;\n",
    );
    assert_eq!(
        items,
        [
            "pub struct Foo",
            "pub fn new(x: usize) -> Self",
            "pub use other::{A, B}",
            "pub const N: usize",
        ]
    );
}

#[test]
fn missing_path_points_at_the_snapshotted_crates() {
    for crate_dir in SNAPSHOT_CRATES {
        assert!(repo_root()
            .join("crates")
            .join(crate_dir)
            .join("src/lib.rs")
            .exists());
    }
}
