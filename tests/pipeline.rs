//! Integration tests of the pass-based pipeline (`zz_core::pipeline`):
//!
//! * **Equivalence matrix** — pipeline output must be bit-identical to
//!   the pre-refactor `CoOptimizer::compile` sequence (re-implemented
//!   verbatim here as `legacy_compile`) for every
//!   `(PulseMethod, SchedulerKind)` combination, through every entry
//!   point: `CoOptimizer::compile`, `PassManager::run`, and the batch
//!   engine.
//! * **Stage-granular caching** — an α/k-only parameter sweep re-runs
//!   *zero* route/lower passes: the first job routes, every other job is
//!   served by the route memo (in-process) or the disk artifact (across
//!   compilers), while scheduling re-runs for every sweep point.
//! * **Per-pass units** — route-only and schedule-only runs using the
//!   typed stage artifacts.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::{route, Circuit};
use zz_core::batch::{BatchCompiler, BatchJob};
use zz_core::calib::{self, CalibCache};
use zz_core::pipeline::{
    CacheDisposition, Logical, LowerPass, PassManager, PipelineTrace, RoutePass, StageArtifact,
    ValidatePass,
};
use zz_core::{CoOptError, CoOptimizer, Compiled, PulseMethod, SchedulerKind, Stage};
use zz_persist::ArtifactStore;
use zz_sched::zzx::{zzx_schedule, Requirement, ZzxConfig};
use zz_sched::{par_schedule, GateDurations};
use zz_topology::Topology;

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "zz-pipeline-it-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The pre-refactor `CoOptimizer::compile` body, reproduced verbatim:
/// route → lower → `match` on the scheduler → `match` on the method →
/// assemble. The pipeline must never drift from this.
fn legacy_compile(
    circuit: &Circuit,
    topo: &Topology,
    method: PulseMethod,
    scheduler: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
) -> Compiled {
    let routed = route(circuit, topo);
    let native = compile_to_native(&routed);
    let plan = match scheduler {
        SchedulerKind::ParSched => par_schedule(topo, &native),
        SchedulerKind::ZzxSched => {
            let config = ZzxConfig {
                alpha,
                k,
                requirement: requirement.unwrap_or_else(|| Requirement::paper_default(topo)),
            };
            zzx_schedule(topo, &native, &config)
        }
    };
    let durations = match method {
        PulseMethod::Dcg => GateDurations::dcg(),
        _ => GateDurations::standard(),
    };
    Compiled {
        plan,
        topology: topo.clone(),
        durations,
        method,
        residuals: calib::residuals(method),
    }
}

/// Every `(PulseMethod, SchedulerKind)` combination.
fn full_matrix() -> Vec<(PulseMethod, SchedulerKind)> {
    PulseMethod::ALL
        .iter()
        .flat_map(|&m| {
            [SchedulerKind::ParSched, SchedulerKind::ZzxSched]
                .into_iter()
                .map(move |s| (m, s))
        })
        .collect()
}

#[test]
fn pipeline_matches_the_legacy_path_for_every_method_scheduler_pair() {
    let topo = Topology::grid(2, 3);
    let circuit = generate(BenchmarkKind::Qaoa, 6, 7);
    for (method, scheduler) in full_matrix() {
        let reference = legacy_compile(&circuit, &topo, method, scheduler, 0.5, 3, None);

        // Entry point 1: the facade.
        let opt = CoOptimizer::builder()
            .topology(topo.clone())
            .pulse_method(method)
            .scheduler(scheduler)
            .build();
        let via_facade = opt.compile(&circuit).expect("fits");
        assert_eq!(reference, via_facade, "{method}+{scheduler}: facade drift");

        // Entry point 2: the pass manager directly.
        let via_pipeline = PassManager::builder()
            .topology(topo.clone())
            .pulse_method(method)
            .scheduler(scheduler)
            .build()
            .run(Arc::new(circuit.clone()))
            .expect("fits")
            .compiled;
        assert_eq!(
            reference, via_pipeline,
            "{method}+{scheduler}: pipeline drift"
        );

        // Entry point 3: the batch engine.
        let report = BatchCompiler::builder()
            .topology(topo.clone())
            .build()
            .run(vec![BatchJob::new(circuit.clone(), method, scheduler)]);
        let via_batch = report.outcomes[0].result.as_ref().expect("fits");
        assert_eq!(&reference, via_batch, "{method}+{scheduler}: batch drift");
    }
}

#[test]
fn pipeline_matches_the_legacy_path_for_non_default_parameters() {
    let topo = Topology::grid(3, 3);
    let circuit = generate(BenchmarkKind::Qft, 9, 7);
    let req = Requirement {
        nq_limit: 3,
        nc_limit: 5,
    };
    for (alpha, k, requirement) in [(0.25, 1, None), (2.0, 8, Some(req))] {
        let reference = legacy_compile(
            &circuit,
            &topo,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            alpha,
            k,
            requirement,
        );
        let mut builder = CoOptimizer::builder()
            .topology(topo.clone())
            .alpha(alpha)
            .k(k);
        if let Some(r) = requirement {
            builder = builder.requirement(r);
        }
        let compiled = builder.build().compile(&circuit).expect("fits");
        assert_eq!(reference, compiled, "alpha={alpha} k={k}");
    }
}

#[test]
fn alpha_k_sweep_reruns_zero_route_passes_in_process() {
    let compiler = BatchCompiler::builder()
        .topology(Topology::grid(3, 3))
        .calib_cache(Arc::new(CalibCache::new()))
        .threads(1) // deterministic hit/miss split
        .build();
    let circuit = Arc::new(generate(BenchmarkKind::Qaoa, 9, 7));
    let jobs: Vec<BatchJob> = [0.0, 0.25, 0.5, 1.0]
        .into_iter()
        .map(|a| {
            BatchJob::shared(
                Arc::clone(&circuit),
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
            )
            .with_alpha(a)
        })
        .chain([1usize, 2, 5].into_iter().map(|k| {
            BatchJob::shared(
                Arc::clone(&circuit),
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
            )
            .with_k(k)
        }))
        .collect();
    let sweep_points = jobs.len();
    let report = compiler.run(jobs);
    assert_eq!(report.error_count(), 0, "{report}");

    // Exactly one job routed; every other sweep point replayed the memo.
    let stats = report.stage_stats();
    let route = stats.iter().find(|s| s.stage == Stage::Route).unwrap();
    assert_eq!(route.executed, 1, "{report}");
    assert_eq!(route.cache_hits, sweep_points - 1, "{report}");
    let lower = stats.iter().find(|s| s.stage == Stage::Lower).unwrap();
    assert_eq!(lower.executed, 1, "{report}");

    // Scheduling can never be replayed across α/k changes: it ran for
    // every sweep point.
    let schedule = stats.iter().find(|s| s.stage == Stage::Schedule).unwrap();
    assert_eq!(schedule.executed, sweep_points, "{report}");
    assert_eq!(schedule.cache_hits, 0, "{report}");

    // The per-job traces agree with the aggregate.
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let trace = &outcome.trace;
        let expected = if i == 0 {
            CacheDisposition::NotCached
        } else {
            CacheDisposition::MemoryHit
        };
        assert_eq!(trace.pass(Stage::Route).unwrap().cache, expected, "job {i}");
        assert!(trace.executed(Stage::Schedule), "job {i}");
    }
}

#[test]
fn alpha_sweep_routes_from_disk_across_compilers() {
    let dir = scratch_dir("alpha-sweep");
    let job = |alpha: f64| {
        BatchJob::new(
            generate(BenchmarkKind::Ising, 6, 7),
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
        )
        .with_alpha(alpha)
    };
    let compiler = |dir: &PathBuf| {
        BatchCompiler::builder()
            .topology(Topology::grid(2, 3))
            .store(ArtifactStore::at(dir))
            .calib_cache(Arc::new(CalibCache::new()))
            .threads(1)
            .build()
    };

    // First compiler pays for routing once.
    let cold = compiler(&dir).run(vec![job(0.5)]);
    assert_eq!(cold.error_count(), 0, "{cold}");
    assert!(cold.outcomes[0].trace.executed(Stage::Route), "{cold}");

    // A *new* compiler (fresh memo, fresh calibration) sweeping *new*
    // α values: the whole-plan artifacts miss (different α), but the
    // route/lower stage is served from the disk artifact — zero route
    // passes run.
    let warm = compiler(&dir).run(vec![job(0.125), job(0.75)]);
    assert_eq!(warm.error_count(), 0, "{warm}");
    let stats = warm.stage_stats();
    let route = stats.iter().find(|s| s.stage == Stage::Route).unwrap();
    assert_eq!(route.executed, 0, "{warm}");
    assert_eq!(
        warm.outcomes[0].trace.pass(Stage::Route).unwrap().cache,
        CacheDisposition::DiskHit,
        "{warm}"
    );
    // The second sweep point hits the memo the first one just filled.
    assert_eq!(
        warm.outcomes[1].trace.pass(Stage::Route).unwrap().cache,
        CacheDisposition::MemoryHit,
        "{warm}"
    );
    let schedule = stats.iter().find(|s| s.stage == Stage::Schedule).unwrap();
    assert_eq!(schedule.executed, 2, "{warm}");

    // Replaying an *already-swept* α in a third compiler is a whole-plan
    // disk hit: no stage beyond validation runs at all.
    let replay = compiler(&dir).run(vec![job(0.75)]);
    let trace = &replay.outcomes[0].trace;
    assert_eq!(trace.compiled_cache, CacheDisposition::DiskHit, "{replay}");
    assert!(!trace.executed(Stage::Route), "{replay}");
    assert!(!trace.executed(Stage::Schedule), "{replay}");
    assert_eq!(
        replay.outcomes[0].result.as_ref().expect("served"),
        warm.outcomes[1].result.as_ref().expect("compiled"),
        "disk replay must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn route_only_pass_produces_the_routed_artifact() {
    let topo = Topology::grid(2, 2);
    let circuit = Arc::new(generate(BenchmarkKind::Qft, 4, 7));
    let manager = PassManager::builder().topology(topo.clone()).build();
    let mut trace = PipelineTrace::default();

    let logical = manager
        .apply(
            &ValidatePass,
            Logical {
                circuit: Arc::clone(&circuit),
            },
            CacheDisposition::NotCached,
            &mut trace,
        )
        .expect("fits");
    let routed = manager
        .apply(&RoutePass, logical, CacheDisposition::NotCached, &mut trace)
        .expect("route is infallible");

    // The typed artifact carries both the source and the routed circuit,
    // and matches a direct `route` call exactly.
    assert_eq!(*routed.source, *circuit);
    assert_eq!(routed.circuit, route(&circuit, &topo));
    assert_eq!(trace.passes.len(), 2);
    assert_eq!(trace.passes[1].stage, Stage::Route);
    assert_eq!(trace.passes[1].output_items, routed.items());

    // And lowering the routed artifact matches a direct translation.
    let native = manager
        .apply(&LowerPass, routed, CacheDisposition::NotCached, &mut trace)
        .expect("lower is infallible");
    assert_eq!(*native.circuit, compile_to_native(&route(&circuit, &topo)));
}

#[test]
fn schedule_only_run_skips_route_and_lower() {
    let topo = Topology::grid(2, 2);
    let circuit = generate(BenchmarkKind::Qft, 4, 7);
    let native = compile_to_native(&route(&circuit, &topo));
    let manager = PassManager::builder().topology(topo.clone()).build();

    let outcome = manager.run_native(&native).expect("fits");
    assert!(outcome.trace.pass(Stage::Route).is_none());
    assert!(outcome.trace.pass(Stage::Lower).is_none());
    assert!(outcome.trace.executed(Stage::Schedule));

    // Identical to the full pipeline's result on the same circuit.
    let full = manager.run(Arc::new(circuit)).expect("fits");
    assert_eq!(outcome.compiled, full.compiled);
}

#[test]
fn oversized_circuits_error_through_both_entry_points() {
    let opt = CoOptimizer::builder()
        .topology(Topology::grid(2, 2))
        .build();
    let too_large = CoOptError::CircuitTooLarge {
        needed: 9,
        available: 4,
    };

    // `compile` rejects, as it always did…
    assert_eq!(opt.compile(&Circuit::new(9)).err(), Some(too_large.clone()));

    // …and `compile_native` now returns the same error through the
    // validation pass instead of panicking.
    let native = compile_to_native(&Circuit::new(9));
    assert_eq!(opt.compile_native(&native).err(), Some(too_large.clone()));
    assert_eq!(
        opt.compile_native_with_residuals(&native, calib::residuals(PulseMethod::Pert))
            .err(),
        Some(too_large)
    );
}
