//! Cross-crate tests for the observability layer: histogram accuracy
//! against an exact reference, snapshot consistency under concurrent
//! writers, and the `MetricsSnapshot` ↔ artifact-container round trip
//! the `Stats` wire endpoint and offline diffing both rely on.

use std::sync::Arc;
use std::thread;

use zz_obs::{MetricsSnapshot, Registry};
use zz_persist::{decode_artifact, encode_artifact, ArtifactKind};

/// Deterministic pseudo-random stream (splitmix64) — no external crates,
/// no process-global state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exact nearest-rank percentile: the smallest element such that at
/// least `⌈p/100 · n⌉` elements are ≤ it.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

// ------------------------------------------------------ histogram accuracy

/// The power-of-two bucket histogram guarantees `exact ≤ estimate <
/// 2 · max(exact, 1)` for every percentile: the estimate is the upper
/// bound of the bucket holding the nearest-rank element, and buckets
/// span at most one doubling.
#[test]
fn histogram_percentiles_bound_the_exact_nearest_rank() {
    let registry = Registry::new();
    let histogram = registry.histogram("test.latency_us");

    // A hostile mix: zeros, tight clusters, a heavy tail across twelve
    // orders of magnitude (bounded so the exact sum stays in u64).
    let mut state = 0x5eed_u64;
    let mut values: Vec<u64> = (0..10_000)
        .map(|i| match i % 5 {
            0 => 0,
            1 => 40 + splitmix(&mut state) % 10,
            2 => splitmix(&mut state) % 1_000,
            3 => splitmix(&mut state) % 1_000_000,
            _ => splitmix(&mut state) % 1_000_000_000_000,
        })
        .collect();
    for &v in &values {
        histogram.observe(v);
    }
    values.sort_unstable();

    let snapshot = registry.snapshot();
    let h = snapshot.histogram("test.latency_us").expect("registered");
    assert_eq!(h.count, values.len() as u64);

    for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
        let exact = exact_percentile(&values, p);
        let estimate = h.percentile(p).expect("non-empty histogram");
        assert!(
            exact <= estimate,
            "p{p}: estimate {estimate} must not undershoot exact {exact}"
        );
        assert!(
            (estimate as u128) < 2 * (exact.max(1) as u128),
            "p{p}: estimate {estimate} must stay within one doubling of exact {exact}"
        );
    }

    // The exact-sum mean has no bucket error at all.
    let exact_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
}

// ----------------------------------------------- concurrent snapshot sanity

/// N threads hammer shared counters/gauges/histograms; after they join,
/// a snapshot holds exactly the totals, and two snapshots of a quiescent
/// registry are identical (snapshotting is deterministic, not sampled).
#[test]
fn snapshot_is_exact_and_deterministic_after_concurrent_writers() {
    const WRITERS: usize = 8;
    const ROUNDS: u64 = 5_000;

    let registry = Arc::new(Registry::new());
    thread::scope(|scope| {
        for t in 0..WRITERS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Half the names are shared across all writers, half are
                // per-writer — both shard paths get contended.
                let shared = registry.counter("writers.shared");
                let own = registry.counter(&format!("writers.own.{t}"));
                let gauge = registry.gauge("writers.level");
                let histogram = registry.histogram("writers.values");
                for i in 0..ROUNDS {
                    shared.inc();
                    own.inc();
                    gauge.inc();
                    gauge.dec();
                    histogram.observe(t as u64 * ROUNDS + i);
                }
            });
        }
    });

    let first = registry.snapshot();
    assert_eq!(
        first.counter("writers.shared"),
        Some(WRITERS as u64 * ROUNDS)
    );
    for t in 0..WRITERS {
        assert_eq!(first.counter(&format!("writers.own.{t}")), Some(ROUNDS));
    }
    assert_eq!(first.gauge("writers.level"), Some(0), "inc/dec balanced");
    let h = first.histogram("writers.values").expect("registered");
    assert_eq!(h.count, WRITERS as u64 * ROUNDS);
    let expected_sum: u64 = (0..WRITERS as u64 * ROUNDS).sum();
    assert_eq!(h.sum, expected_sum, "every observation landed exactly once");

    // Quiescent registry → byte-identical snapshots, names sorted.
    let second = registry.snapshot();
    assert_eq!(first, second);
    let names: Vec<&str> = first.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "counters come out name-sorted");
}

// ------------------------------------------------------- codec round trip

/// A populated snapshot survives the full artifact container (magic,
/// schema version, kind tag, checksum) — the same path `Response::Stats`
/// uses on the wire and `ArtifactKind::Metrics` uses on disk.
#[test]
fn metrics_snapshot_round_trips_through_the_artifact_container() {
    let registry = Registry::new();
    registry.counter("net.frames").add(17);
    registry.counter("session.requests").add(5);
    registry.gauge("net.inflight").set(-3);
    registry.gauge("session.queue.depth").set(2);
    let h = registry.histogram("session.queue.wait_us");
    for v in [0, 1, 7, 800, 65_000, u64::MAX] {
        h.observe(v);
    }

    let snapshot = registry.snapshot();
    let bytes = encode_artifact(ArtifactKind::Metrics, &snapshot);
    let decoded: MetricsSnapshot =
        decode_artifact(ArtifactKind::Metrics, &bytes).expect("well-formed container decodes");
    assert_eq!(decoded, snapshot);

    // Corruption is detected by the container, not silently decoded.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    assert!(
        decode_artifact::<MetricsSnapshot>(ArtifactKind::Metrics, &flipped).is_err(),
        "a flipped payload byte must fail the checksum"
    );

    // And the empty snapshot round-trips too (a fresh server's scrape).
    let empty = Registry::new().snapshot();
    assert!(empty.is_empty());
    let bytes = encode_artifact(ArtifactKind::Metrics, &empty);
    let decoded: MetricsSnapshot =
        decode_artifact(ArtifactKind::Metrics, &bytes).expect("empty snapshot decodes");
    assert_eq!(decoded, empty);
}
