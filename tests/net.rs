//! Wire-protocol integration tests over real TCP sockets: adversarial
//! frames, request coalescing across client threads, backpressure, and
//! graceful shutdown that drains instead of dropping.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zz_circuit::{bench, Circuit, Gate};
use zz_core::calib::CalibCache;
use zz_net::{
    Client, ClientError, CompileEnvelope, Request, Response, Server, ServerConfig, ServerControl,
};
use zz_persist::{encode_artifact, ArtifactKind};
use zz_service::{Session, Target};
use zz_topology::Topology;

/// One running server over a dedicated session (private calibration
/// cache, so calibration counters are isolated from other tests in this
/// process).
struct Fixture {
    addr: SocketAddr,
    control: ServerControl,
    session: Arc<Session>,
    serving: JoinHandle<std::io::Result<()>>,
}

impl Fixture {
    fn start(config: ServerConfig) -> Self {
        let target = Target::builder()
            .topology(Topology::grid(2, 2))
            .calib_cache(Arc::new(CalibCache::new()))
            .build()
            .expect("no store configured");
        let session = Arc::new(Session::with_threads(target, 2));
        let server =
            Server::bind_with("127.0.0.1:0", Arc::clone(&session), config).expect("ephemeral port");
        let addr = server.local_addr().expect("bound socket has an address");
        let control = server.control();
        let serving = std::thread::spawn(move || server.serve());
        Fixture {
            addr,
            control,
            session,
            serving,
        }
    }

    fn stop(self) {
        self.control.shutdown();
        self.serving
            .join()
            .expect("acceptor does not panic")
            .expect("serve exits cleanly");
    }
}

fn fast_config() -> ServerConfig {
    ServerConfig {
        poll: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
    c
}

/// Reads whatever the server sends until it closes the connection.
fn drain_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    let mut bytes = Vec::new();
    let _ = stream.read_to_end(&mut bytes);
    bytes
}

// -------------------------------------------------------------- happy path

#[test]
fn ping_compile_and_shutdown_round_trip() {
    let fixture = Fixture::start(fast_config());
    let mut client = Client::connect(fixture.addr).expect("connects");
    client.ping().expect("pong");

    let compiled = client
        .compile(CompileEnvelope::new(bell()).with_label("bell"))
        .expect("compiles");
    assert_eq!(compiled.label, "bell");
    assert!(compiled.compiled.plan.layer_count() > 0);
    assert!(compiled.fidelity.is_none(), "no eval was requested");

    // Remote result ≡ in-process result, bit for bit.
    let local = fixture
        .session
        .compile(&zz_service::CompileRequest::new(bell()))
        .expect("compiles");
    assert_eq!(compiled.compiled, local.compiled);

    let mut stopper = Client::connect(fixture.addr).expect("connects");
    stopper.shutdown_server().expect("acknowledged");
    fixture
        .serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
}

#[test]
fn eval_requests_carry_fidelity_back() {
    let fixture = Fixture::start(fast_config());
    let mut client = Client::connect(fixture.addr).expect("connects");
    let compiled = client
        .compile(CompileEnvelope::new(bell()).with_eval_seeds(vec![11, 23]))
        .expect("compiles");
    let fidelity = compiled.fidelity.expect("eval seeds were sent");
    assert!((0.0..=1.0).contains(&fidelity), "fidelity {fidelity}");
    fixture.stop();
}

#[test]
fn compile_errors_cross_the_wire_typed() {
    let fixture = Fixture::start(fast_config());
    let mut client = Client::connect(fixture.addr).expect("connects");
    // 9 qubits on the 2×2 target device.
    let too_big = CompileEnvelope::new(Circuit::new(9)).with_label("too-big");
    match client.compile(too_big) {
        Err(ClientError::Service(zz_service::Error::Validate { job, .. })) => {
            assert_eq!(job, "too-big")
        }
        other => panic!("expected a typed Validate error, got {other:?}"),
    }
    // The connection survives a failed compile.
    client.ping().expect("still serving");
    fixture.stop();
}

// -------------------------------------------------------- adversarial frames

#[test]
fn garbage_bytes_get_a_malformed_reply_and_the_server_survives() {
    let fixture = Fixture::start(fast_config());

    let mut stream = TcpStream::connect(fixture.addr).expect("connects");
    // Exactly one header's worth of garbage, so the server consumes
    // everything before replying (no unread bytes → clean close, no RST).
    stream.write_all(&[0xde; 28]).expect("writes");
    let reply = drain_to_eof(&mut stream);
    assert!(!reply.is_empty(), "server must answer before closing");
    drop(stream);

    // A fresh, well-behaved client is still served.
    let mut client = Client::connect(fixture.addr).expect("connects");
    client.ping().expect("server survived the garbage");
    fixture.stop();
}

#[test]
fn corrupted_frames_are_answered_typed_then_disconnected() {
    let good = encode_artifact(ArtifactKind::NetRequest, &Request::Ping);

    // Header-rejected frames are sent as the bare 28-byte header so the
    // server consumes every byte before replying (clean close, no RST);
    // the checksum case needs the whole frame, which is fully read too.
    let mut checksum_flip = good.clone();
    *checksum_flip.last_mut().expect("non-empty") ^= 1;
    let mut magic_flip = good[..28].to_vec();
    magic_flip[0] ^= 0xff;
    let mut oversized = good[..28].to_vec();
    oversized[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    let wrong_kind = encode_artifact(ArtifactKind::NetResponse, &Response::Pong)[..28].to_vec();

    let cases: [(&str, &[u8], &str); 4] = [
        ("checksum flip", &checksum_flip, "checksum"),
        ("magic flip", &magic_flip, "magic"),
        ("oversized length prefix", &oversized, "payload bytes"),
        ("response frame as request", &wrong_kind, "kind"),
    ];

    for (name, bytes, needle) in cases {
        let fixture = Fixture::start(fast_config());
        let mut stream = TcpStream::connect(fixture.addr).expect("connects");
        stream.write_all(bytes).expect("writes");
        stream.flush().expect("flushes");

        // The reply is a well-formed Malformed response frame.
        let response: Response =
            zz_net::read_frame(&mut stream, ArtifactKind::NetResponse).expect("typed reply");
        match response {
            Response::Malformed { detail } => assert!(
                detail.contains(needle),
                "{name}: detail '{detail}' must mention '{needle}'"
            ),
            other => panic!("{name}: expected Malformed, got {other:?}"),
        }

        // ... after which the server closes this connection but keeps
        // serving new ones.
        assert!(drain_to_eof(&mut stream).is_empty(), "{name}: must close");
        let mut client = Client::connect(fixture.addr).expect("connects");
        client.ping().expect("server survived");
        fixture.stop();
    }
}

#[test]
fn mid_frame_disconnect_leaks_nothing() {
    let fixture = Fixture::start(fast_config());
    let good = encode_artifact(
        ArtifactKind::NetRequest,
        &Request::Compile(CompileEnvelope::new(bell())),
    );
    // Kill the connection at several points inside the frame.
    for cut in [1, 10, 27, 28, good.len() - 1] {
        let mut stream = TcpStream::connect(fixture.addr).expect("connects");
        stream.write_all(&good[..cut]).expect("writes");
        drop(stream); // mid-frame disconnect
    }
    // Every handler must have exited without panicking or wedging the
    // acceptor: a fresh client still gets served end to end.
    let mut client = Client::connect(fixture.addr).expect("connects");
    client
        .compile(CompileEnvelope::new(bell()))
        .expect("server survived five mid-frame disconnects");
    fixture.stop();
}

// ------------------------------------------------------- the Stats endpoint

/// One scrape of a live server reflects exactly the traffic it served:
/// request ids on every answer, per-layer counters matching the known
/// request/adversarial-frame sequence, and wall-time histograms with one
/// sample per compile.
#[test]
fn stats_scrape_reflects_known_traffic() {
    let fixture = Fixture::start(fast_config());
    let mut client = Client::connect(fixture.addr).expect("connects");
    client.ping().expect("pong");

    // Three sequential compiles: cold bell, warm bell, cold QFT.
    let first = client
        .compile(CompileEnvelope::new(bell()))
        .expect("compiles");
    let second = client
        .compile(CompileEnvelope::new(bell()))
        .expect("compiles");
    let third = client
        .compile(CompileEnvelope::new(bench::generate(
            bench::BenchmarkKind::Qft,
            4,
            7,
        )))
        .expect("compiles");

    // Every answer names its server-side execution, and sequential
    // requests never share one.
    for compiled in [&first, &second, &third] {
        assert!(compiled.request_id.as_u64() != 0, "request id present");
    }
    assert_ne!(first.request_id, second.request_id);
    assert_ne!(second.request_id, third.request_id);

    // Two adversarial connections, each killed by one garbage header.
    for _ in 0..2 {
        let mut stream = TcpStream::connect(fixture.addr).expect("connects");
        stream.write_all(&[0xde; 28]).expect("writes");
        drain_to_eof(&mut stream);
    }

    let stats = Client::connect(fixture.addr)
        .expect("connects")
        .stats()
        .expect("live server answers Stats");

    // Wire layer: ping + 3 compiles + this stats request = 5 well-formed
    // frames; the 2 garbage headers count as malformed, not frames; the
    // compile client + 2 adversaries + the scraper = 4 connections.
    assert_eq!(stats.counter("net.frames"), Some(5));
    assert_eq!(stats.counter("net.malformed"), Some(2));
    assert_eq!(stats.counter("net.connections"), Some(4));
    assert_eq!(stats.counter("net.admitted"), Some(3));
    assert_eq!(
        stats.counter("net.busy"),
        Some(0),
        "no busy rejection happened"
    );
    assert_eq!(
        stats.gauge("net.inflight"),
        Some(0),
        "all compiles answered"
    );

    // Session layer: three submissions, all leaders (sequential traffic
    // cannot coalesce), no errors, one wall-time sample per compile.
    assert_eq!(stats.counter("session.requests"), Some(3));
    assert_eq!(stats.counter("session.coalesce.leader"), Some(3));
    assert_eq!(stats.counter("session.coalesce.follower"), Some(0));
    assert_eq!(stats.counter("session.errors"), Some(0));
    let wall = stats
        .histogram("session.compile.wall_us")
        .expect("compiles were timed");
    assert_eq!(wall.count, 3);

    // Pipeline layer: one full pass-pipeline execution per compile.
    assert_eq!(stats.counter("pipeline.runs"), Some(3));

    fixture.stop();
}

// ---------------------------------------------------- coalescing over TCP

#[test]
fn identical_concurrent_compiles_share_work_and_answers() {
    const M: usize = 8;
    let fixture = Fixture::start(fast_config());

    let addr = fixture.addr;
    let compiled: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..M)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    client
                        .compile(CompileEnvelope::new(bench::generate(
                            bench::BenchmarkKind::Qaoa,
                            4,
                            7,
                        )))
                        .expect("compiles")
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("no panic"))
            .collect()
    });

    // All M answers are bit-identical.
    assert_eq!(compiled.len(), M);
    for other in &compiled[1..] {
        assert_eq!(other.compiled, compiled[0].compiled);
    }

    // Exactly one execution of the expensive stages: one calibration
    // measurement, one routed shape. Every response beyond the first
    // either coalesced onto an in-flight job or was served by the
    // routing memo — whichever way the race resolves, only the first
    // execution can be a miss (followers adopt their leader's flag, so
    // at most 1 + coalesced misses are ever reported).
    let report = fixture.session.drain();
    assert_eq!(report.outcomes.len(), M);
    assert_eq!(report.error_count(), 0);
    assert_eq!(report.calibration_runs, 1, "one calibration for M compiles");
    assert_eq!(fixture.session.memoized_shapes(), 1, "one routed shape");
    let coalesced = fixture.session.coalesced_jobs();
    assert!(
        report.route_misses >= 1 && report.route_misses <= 1 + coalesced,
        "route misses {} with {coalesced} coalesced",
        report.route_misses
    );
    assert_eq!(report.route_hits + report.route_misses, M);

    // The registry tells the same story: M submissions split into
    // leaders + followers, and every follower adopted its leader's
    // request id (an id names one pipeline execution, so the answers
    // carry exactly M − coalesced distinct ids).
    let stats = fixture.session.metrics().snapshot();
    assert_eq!(stats.counter("session.requests"), Some(M as u64));
    assert_eq!(
        stats.counter("session.coalesce.follower"),
        Some(coalesced as u64)
    );
    assert_eq!(
        stats.counter("session.coalesce.leader"),
        Some((M - coalesced) as u64)
    );
    let mut ids: Vec<u64> = compiled.iter().map(|c| c.request_id.as_u64()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), M - coalesced, "followers share the leader's id");
    fixture.stop();
}

// ------------------------------------------------------------- backpressure

#[test]
fn admission_beyond_the_bound_is_busy_not_a_hang() {
    let fixture = Fixture::start(ServerConfig {
        max_inflight: 0, // every compile overflows the queue
        poll: Duration::from_millis(5),
    });
    let mut client = Client::connect(fixture.addr).expect("connects");

    let t0 = Instant::now();
    match client.compile(CompileEnvelope::new(bell())) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "backpressure must answer promptly, not hang"
    );
    assert_eq!(fixture.control.busy_rejections(), 1);
    assert_eq!(fixture.control.admitted(), 0, "nothing was enqueued");

    // Pings are not subject to compile admission — and neither are
    // stats scrapes, so the rejection is observable on the saturated
    // server itself.
    client.ping().expect("control traffic still flows");
    let stats = client.stats().expect("a saturated server still scrapes");
    assert_eq!(stats.counter("net.busy"), Some(1));
    assert_eq!(stats.counter("net.admitted"), Some(0));
    assert_eq!(stats.counter("session.requests"), Some(0), "never enqueued");
    fixture.stop();
}

// ------------------------------------------------------------ graceful drain

#[test]
fn shutdown_drains_inflight_jobs_without_dropping_any() {
    const M: usize = 4;
    let fixture = Fixture::start(fast_config());

    let addr = fixture.addr;
    let control = fixture.control.clone();
    let answers: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..M)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    client
                        .compile(
                            CompileEnvelope::new(bench::generate(
                                bench::BenchmarkKind::Ising,
                                4,
                                i as u64, // distinct circuits: no coalescing
                            ))
                            .with_label(format!("job-{i}")),
                        )
                        .expect("admitted jobs are answered, not dropped")
                })
            })
            .collect();

        // Wait until every request is past the admission gate (i.e. in
        // flight), then pull the plug. (Bounded, so a failing worker
        // turns into an assertion instead of a hung test.)
        let deadline = Instant::now() + Duration::from_secs(60);
        while control.admitted() < M && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(control.admitted(), M, "all jobs must admit within 60s");
        control.shutdown();

        workers
            .into_iter()
            .map(|w| w.join().expect("no panic"))
            .collect()
    });

    // serve() returns only after the drain: all M were answered.
    fixture
        .serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
    let mut labels: Vec<String> = answers.into_iter().map(|a| a.label).collect();
    labels.sort();
    assert_eq!(labels, ["job-0", "job-1", "job-2", "job-3"]);

    // New connections are refused once the listener is down.
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may still accept into the (closed) backlog; a
            // request on such a socket must fail rather than hang.
            let mut client = Client::connect(addr).expect("backlog race");
            client.ping().is_err()
        },
        "a drained server must not serve new work"
    );
}

#[test]
fn compiles_after_shutdown_are_answered_shutting_down() {
    let fixture = Fixture::start(fast_config());
    let mut client = Client::connect(fixture.addr).expect("connects");
    client.ping().expect("pong");

    fixture.control.shutdown();
    // The handler still answers frames already in flight on open
    // connections — but refuses to start new work.
    match client.compile(CompileEnvelope::new(bell())) {
        Err(ClientError::ShuttingDown) | Err(ClientError::Frame(_)) => {}
        other => panic!("expected ShuttingDown (or a closed socket), got {other:?}"),
    }
    fixture
        .serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
}

// ------------------------------------------------------------ reconnect

/// Restarts a server on a specific (just-vacated) address — the second
/// half of every reconnect scenario.
fn restart_at(addr: SocketAddr) -> (ServerControl, JoinHandle<std::io::Result<()>>) {
    let target = Target::builder()
        .topology(Topology::grid(2, 2))
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("no store configured");
    let session = Arc::new(Session::with_threads(target, 2));
    let server = Server::bind_with(addr, session, fast_config())
        .expect("the vacated port rebinds (SO_REUSEADDR)");
    let control = server.control();
    let serving = std::thread::spawn(move || server.serve());
    (control, serving)
}

#[test]
fn idempotent_requests_survive_a_server_restart() {
    let fixture = Fixture::start(fast_config());
    let addr = fixture.addr;
    let mut client = Client::connect(addr).expect("connects");
    client.ping().expect("pong");

    // Kill the server mid-session: the client's connection is now dead.
    fixture.stop();
    // With nothing listening, even the one re-dial retry must fail —
    // visibly, not by hanging.
    assert!(client.ping().is_err(), "no server to reconnect to");

    // Restart on the same port; the stale client transparently re-dials
    // and retries its idempotent calls.
    let (control, serving) = restart_at(addr);
    client.ping().expect("re-dials and pongs");
    let stats = client.stats().expect("stats over the fresh connection");
    assert!(
        stats.counter("net.connections").unwrap_or(0) >= 1,
        "the scrape reflects the fresh server"
    );

    control.shutdown();
    serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
}

#[test]
fn ensure_connected_revives_a_dead_connection() {
    let fixture = Fixture::start(fast_config());
    let addr = fixture.addr;
    let mut client = Client::connect(addr).expect("connects");
    client.ensure_connected().expect("healthy from the start");

    fixture.stop();
    let (control, serving) = restart_at(addr);

    // The old stream is dead; ensure_connected replaces it, and the
    // *non*-idempotent compile path then works without its own retry.
    client
        .ensure_connected()
        .expect("re-dials the restarted server");
    let compiled = client
        .compile(CompileEnvelope::new(bell()).with_label("post-restart"))
        .expect("compiles over the fresh connection");
    assert_eq!(compiled.label, "post-restart");

    control.shutdown();
    serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
}

#[test]
fn stats_responses_merge_an_extra_registry() {
    let target = Target::builder()
        .topology(Topology::grid(2, 2))
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("no store configured");
    let session = Arc::new(Session::with_threads(target, 2));
    let fleet_registry = Arc::new(zz_service::Registry::new());
    fleet_registry.counter("fleet.dispatch").add(5);
    fleet_registry.gauge("fleet.epoch").set(2);
    let server = Server::bind_with_stats(
        "127.0.0.1:0",
        Arc::clone(&session),
        fast_config(),
        Arc::clone(&fleet_registry),
    )
    .expect("ephemeral port");
    let addr = server.local_addr().expect("bound");
    let control = server.control();
    let serving = std::thread::spawn(move || server.serve());

    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats().expect("scrapes");
    assert_eq!(stats.counter("fleet.dispatch"), Some(5));
    assert_eq!(stats.gauge("fleet.epoch"), Some(2));
    // The session's own series are still present alongside the extras.
    assert!(stats.counter("net.frames").is_some());

    control.shutdown();
    serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");
}
