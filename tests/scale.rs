//! Integration tests of the compile-path scaling work: large devices
//! compile through the full service stack, evaluation stays gated at
//! the density-matrix ceiling, and the scale-facing observability
//! counters (`route.graph_reuse`, `sched.distance_queries`) surface in
//! the session's metrics registry.
//!
//! The compile/eval split these tests pin down: a [`Target`] may be as
//! large as topology construction allows — routing and scheduling are
//! polynomial — while density-matrix *evaluation* is exponential and
//! refuses devices above `zz_core::evaluate::MAX_EVAL_QUBITS` with a
//! typed [`Error::Eval`] at evaluation time, never at target
//! construction or compile time.

use zz_circuit::{Circuit, Gate};
use zz_core::{CompileOptions, SchedulerKind};
use zz_service::{CompileRequest, Error, EvalSpec, Session, Target};
use zz_topology::Topology;

/// A shallow entangling circuit on `n` qubits: one brickwork CNOT
/// round plus a medium-range CNOT so routing inserts SWAPs.
fn shallow_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    let mut q = 0;
    while q + 1 < n {
        c.push(Gate::Cnot, &[q, q + 1]);
        q += 2;
    }
    c.push(Gate::Cnot, &[0, n / 2]);
    c
}

#[test]
fn hundred_qubit_circuits_compile_through_the_session() {
    let target = Target::for_qubits(100).expect("large targets build");
    assert_eq!(target.topology().qubit_count(), 100); // 10×10
    let session = Session::new(target);

    let request = CompileRequest::new(shallow_circuit(100)).with_label("scale-100");
    let response = session.compile(&request).expect("compiles at 100 qubits");
    assert!(response.fidelity.is_none(), "no eval was requested");

    // The scheduler-metrics fidelity proxy is well-formed.
    let summary = response.plan_metrics();
    assert!(summary.layers > 0);
    assert!(summary.duration_ns > 0.0);
    assert!(summary.residual_zz_weight >= 0.0);
    assert!(summary.mean_nq >= 0.0 && summary.mean_nc >= 0.0);

    // Queued path: the same request through submit/drain.
    let handle = session.submit(request);
    assert!(handle.wait().is_ok());
    session.drain();
}

#[test]
fn evaluation_above_the_ceiling_is_a_typed_eval_error() {
    let session = Session::new(Target::for_qubits(100).expect("builds"));
    let request = CompileRequest::new(shallow_circuit(100))
        .with_label("scale-eval")
        .with_eval(EvalSpec::paper_default());
    match session.compile(&request) {
        Err(Error::Eval { job, detail }) => {
            assert_eq!(job, "scale-eval");
            assert!(detail.contains("100 qubits"), "{detail}");
            assert!(detail.contains("plan_metrics"), "{detail}");
        }
        other => panic!("expected Eval, got {other:?}"),
    }
    // The same circuit without an EvalSpec still compiles: the ceiling
    // gates evaluation, not compilation.
    let compile_only = CompileRequest::new(shallow_circuit(100)).with_label("scale-eval");
    assert!(session.compile(&compile_only).is_ok());
}

#[test]
fn heavy_hex_devices_compile_under_both_schedulers() {
    // d = 5 is a 57-qubit heavy-hex lattice: big enough to be beyond
    // evaluation, small enough to keep the test fast.
    let target = Target::heavy_hex(5).expect("builds");
    let qubits = target.topology().qubit_count();
    assert!(qubits > 12, "heavy-hex d=5 is beyond the eval ceiling");
    let session = Session::new(target);
    for scheduler in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
        let request = CompileRequest::new(shallow_circuit(qubits))
            .with_options(CompileOptions::default().with_scheduler(scheduler))
            .with_label(format!("hex-{scheduler}"));
        let response = session
            .compile(&request)
            .unwrap_or_else(|e| panic!("{scheduler} failed: {e}"));
        assert!(response.plan_metrics().layers > 0);
    }
}

#[test]
fn scale_counters_surface_in_the_session_registry() {
    let target = Target::builder()
        .topology(Topology::grid(3, 4))
        .build()
        .expect("builds");
    let session = Session::new(target);

    // First circuit: builds the device coupling graph (a miss).
    session
        .compile(&CompileRequest::new(shallow_circuit(12)).with_label("warm"))
        .expect("compiles");
    // Second, differently-shaped circuit: routing must reuse it.
    let mut other = shallow_circuit(12);
    other.push(Gate::X, &[3]);
    session
        .compile(&CompileRequest::new(other).with_label("reuse"))
        .expect("compiles");

    let snapshot = session.metrics().snapshot();
    assert!(
        snapshot.counter("route.graph_reuse").unwrap_or(0) >= 1,
        "second shape must hit the device-graph cache"
    );
    assert!(
        snapshot.counter("sched.distance_queries").unwrap_or(0) >= 1,
        "ZZXSched must report its lazy distance-oracle traffic"
    );
    assert!(
        snapshot.counter("sched.schedules").unwrap_or(0) >= 2,
        "each compile runs one schedule"
    );
}
