//! Integration tests of the batch compilation engine: batch output must be
//! bit-identical to sequential compilation, and the shared caches must
//! actually share.

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::batch::{BatchCompiler, BatchJob};
use zz_core::calib::CalibCache;
use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};
use zz_topology::Topology;

/// The suite used by both tests: every core benchmark at its smallest
/// paper size, under three pulse × scheduler configurations.
fn suite() -> Vec<(BenchmarkKind, usize, PulseMethod, SchedulerKind)> {
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
        (PulseMethod::Dcg, SchedulerKind::ZzxSched),
    ];
    BenchmarkKind::CORE
        .iter()
        .map(|&kind| (kind, kind.paper_sizes()[0]))
        .flat_map(|(kind, n)| configs.iter().map(move |&(m, s)| (kind, n, m, s)))
        .collect()
}

#[test]
fn batch_results_are_identical_to_sequential_compilation() {
    let topo = Topology::grid(3, 3);
    let cases = suite();

    // Sequential reference: one CoOptimizer::compile call per case.
    let sequential: Vec<_> = cases
        .iter()
        .map(|&(kind, n, method, scheduler)| {
            CoOptimizer::builder()
                .topology(topo.clone())
                .pulse_method(method)
                .scheduler(scheduler)
                .build()
                .compile(&generate(kind, n, 7))
                .expect("fits the 3x3 grid")
        })
        .collect();

    // The same cases through the batch engine (worker pool + caches).
    let jobs: Vec<BatchJob> = cases
        .iter()
        .map(|&(kind, n, method, scheduler)| BatchJob::new(generate(kind, n, 7), method, scheduler))
        .collect();
    let report = BatchCompiler::builder().topology(topo).build().run(jobs);

    assert_eq!(report.error_count(), 0, "{report}");
    assert!(
        report.route_hits > 0,
        "repeated circuit shapes must hit the routing memo: {}",
        report
    );
    for (case, (seq, outcome)) in cases.iter().zip(sequential.iter().zip(&report.outcomes)) {
        let batch = outcome.result.as_ref().expect("compiled");
        // Bit-identical: the full Compiled (plan layers, Rz bookkeeping,
        // durations, residual table) compares equal field-for-field.
        assert_eq!(
            seq, batch,
            "case {case:?} diverged between batch and sequential"
        );
    }
}

#[test]
fn calibration_runs_at_most_once_per_method_per_process() {
    let cache = CalibCache::global();
    let compiler = BatchCompiler::builder()
        .topology(Topology::grid(2, 2))
        .build();
    let jobs = || -> Vec<BatchJob> {
        [
            PulseMethod::Gaussian,
            PulseMethod::Pert,
            PulseMethod::Gaussian,
        ]
        .into_iter()
        .map(|m| {
            BatchJob::new(
                generate(BenchmarkKind::Qft, 4, 7),
                m,
                SchedulerKind::ZzxSched,
            )
        })
        .collect()
    };

    // Fill every slot deterministically first (idempotent): the sibling
    // test in this binary runs concurrently and also calibrates, so the
    // global counter is only stable once all methods are measured.
    for method in PulseMethod::ALL {
        cache.residuals(method);
    }
    let runs_before = cache.calibration_runs();
    assert!(
        runs_before <= PulseMethod::ALL.len(),
        "at most one measurement per method per process, got {runs_before}"
    );

    // First batch: every method is already cached — zero new measurements,
    // regardless of how many jobs or workers used each.
    let first = compiler.run(jobs());
    assert_eq!(first.error_count(), 0);
    assert_eq!(first.calibration_runs, 0, "{first}");

    // Second batch with the same methods: still fully served from the
    // shared cache.
    let second = compiler.run(jobs());
    assert_eq!(second.error_count(), 0);
    assert_eq!(second.calibration_runs, 0, "{second}");
    assert_eq!(cache.calibration_runs(), runs_before);

    // And sequential compilation shares the same process-wide cache.
    CoOptimizer::builder()
        .topology(Topology::grid(2, 2))
        .pulse_method(PulseMethod::Pert)
        .build()
        .compile(&generate(BenchmarkKind::Qft, 4, 7))
        .expect("fits");
    assert_eq!(cache.calibration_runs(), runs_before);
}
