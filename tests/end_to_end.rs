//! Cross-crate integration tests: the full compile pipeline, schedule
//! correctness, and end-to-end fidelity ordering.

use zz_circuit::bench::{generate, hidden_shift_answer, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::{route, Circuit, Gate};
use zz_core::evaluate::{benchmark_fidelity, compile_benchmark, device_for, EvalConfig};
use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};
use zz_quantum::gates::equal_up_to_phase;
use zz_quantum::states::basis_state;
use zz_sim::executor::{run_ideal, run_with_zz, ZzErrorModel};
use zz_topology::Topology;

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        crosstalk_seeds: vec![11],
        ..EvalConfig::paper_default()
    }
}

#[test]
fn both_schedulers_preserve_the_computation() {
    let topo = Topology::grid(2, 3);
    for kind in [
        BenchmarkKind::Qft,
        BenchmarkKind::Qaoa,
        BenchmarkKind::HiddenShift,
    ] {
        let circuit = generate(kind, 5, 3);
        let native = compile_to_native(&route(&circuit, &topo));
        for sched in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            let compiled = CoOptimizer::builder()
                .topology(topo.clone())
                .scheduler(sched)
                .build()
                .compile(&circuit)
                .expect("fits");
            assert!(compiled.plan.validate().is_ok());
            assert!(
                equal_up_to_phase(&compiled.plan.unitary(), &native.unitary(), 1e-7),
                "{kind} under {sched} changed the computation"
            );
        }
    }
}

#[test]
fn hidden_shift_survives_the_full_noisy_pipeline() {
    // Compile HS-6, run it under weak ZZ, and check the answer still has
    // dominant probability at the hidden shift (measured on the snake
    // starting layout; HS needs no SWAPs, so the layout never changes).
    let n = 6;
    let compiled = compile_benchmark(
        BenchmarkKind::HiddenShift,
        n,
        PulseMethod::Pert,
        SchedulerKind::ZzxSched,
        &quick_cfg(),
    )
    .expect("fits");
    let model = ZzErrorModel::uniform(&compiled.topology, zz_sim::khz(200.0))
        .with_residuals(compiled.residuals);
    let noisy = run_with_zz(
        &compiled.plan,
        &compiled.topology,
        &model,
        &compiled.durations,
    );

    // Ideal output: |shift⟩ permuted onto the device by the snake layout.
    let ideal = run_ideal(&compiled.plan);
    let shift = hidden_shift_answer(n, quick_cfg().circuit_seed);
    // Verify the ideal output is a basis state (sanity of the pipeline).
    let max_prob = ideal
        .amplitudes()
        .iter()
        .map(|a| a.abs_sq())
        .fold(0.0f64, f64::max);
    assert!(max_prob > 0.999, "ideal HS output must be a basis state");
    let _ = basis_state(&shift); // the permuted position is checked via fidelity:
    assert!(
        noisy.fidelity(&ideal) > 0.9,
        "suppressed run must keep the answer readable"
    );
}

#[test]
fn co_optimization_wins_on_every_core_benchmark() {
    let cfg = quick_cfg();
    for kind in BenchmarkKind::CORE {
        let n = kind.paper_sizes()[1]; // the 6-qubit size
        let base = benchmark_fidelity(
            kind,
            n,
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
            &cfg,
        )
        .expect("fits");
        let ours = benchmark_fidelity(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg)
            .expect("fits");
        assert!(
            ours >= base,
            "{kind}-{n}: co-optimization {ours} lost to baseline {base}"
        );
    }
}

#[test]
fn execution_time_cost_is_bounded() {
    // Paper Fig 24: ZZXSched costs typically < 2× ParSched execution time;
    // allow 3× as the hard bound across all benchmarks.
    let cfg = quick_cfg();
    for kind in BenchmarkKind::CORE {
        for &n in kind.paper_sizes() {
            let par = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ParSched, &cfg)
                .expect("fits");
            let zzx = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg)
                .expect("fits");
            let ratio = zzx.execution_time() / par.execution_time();
            assert!(
                ratio < 3.0,
                "{kind}-{n}: ZZXSched time ratio {ratio:.2} too high"
            );
        }
    }
}

#[test]
fn zzxsched_reduces_unsuppressed_couplings_everywhere() {
    let cfg = quick_cfg();
    for kind in BenchmarkKind::CORE {
        for &n in kind.paper_sizes() {
            let par = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ParSched, &cfg)
                .expect("fits");
            let zzx = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg)
                .expect("fits");
            assert!(
                zzx.plan.mean_nc() <= par.plan.mean_nc(),
                "{kind}-{n}: mean NC regressed"
            );
        }
    }
}

#[test]
fn compile_is_fast_enough() {
    // Paper Sec 7.3: < 0.25 s per benchmark on a 2.3 GHz CPU. Allow 2 s in
    // this (possibly debug-ish) environment.
    let cfg = quick_cfg();
    let start = std::time::Instant::now();
    let _ = compile_benchmark(
        BenchmarkKind::Grc,
        12,
        PulseMethod::Pert,
        SchedulerKind::ZzxSched,
        &cfg,
    )
    .expect("fits");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "compilation too slow: {:?}",
        start.elapsed()
    );
}

#[test]
fn sub_devices_match_benchmark_sizes() {
    for (n, couplings) in [(4usize, 4usize), (6, 7), (9, 12), (12, 17)] {
        assert_eq!(device_for(n).coupling_count(), couplings);
    }
}

#[test]
fn framework_generalizes_to_heavy_hex_devices() {
    // The suppression theory only needs planarity (+ bipartiteness for
    // complete suppression); IBM's heavy-hex lattice has both.
    let topo = Topology::heavy_hex_cell();
    let mut c = Circuit::new(topo.qubit_count());
    for q in 0..topo.qubit_count() {
        c.push(Gate::H, &[q]);
    }
    c.push(Gate::Cnot, &[0, 1]).push(Gate::Cnot, &[8, 9]);
    let compiled = CoOptimizer::builder()
        .topology(topo)
        .pulse_method(PulseMethod::Pert)
        .scheduler(SchedulerKind::ZzxSched)
        .build()
        .compile(&c)
        .expect("fits");
    assert!(compiled.plan.validate().is_ok());
    // Single-qubit layers achieve complete suppression on the bipartite
    // heavy-hex just as on grids.
    let one_q_layers = compiled
        .plan
        .layers
        .iter()
        .filter(|l| l.ops.iter().all(|op| op.qubits().len() == 1))
        .count();
    assert!(one_q_layers > 0);
    for layer in &compiled.plan.layers {
        if layer.ops.iter().all(|op| op.qubits().len() == 1) {
            assert_eq!(
                layer.metrics.nc, 0,
                "heavy-hex 1q layer not fully suppressed"
            );
        }
    }
}

#[test]
fn custom_circuits_compile_on_custom_devices() {
    let topo = Topology::ibmq_vigo();
    let mut c = Circuit::new(5);
    c.push(Gate::H, &[0])
        .push(Gate::Cnot, &[0, 4]) // distant on Vigo: forces routing
        .push(Gate::T, &[4]);
    let compiled = CoOptimizer::builder()
        .topology(topo)
        .pulse_method(PulseMethod::Pert)
        .build()
        .compile(&c)
        .expect("fits on vigo");
    assert!(compiled.plan.validate().is_ok());
    assert!(compiled.plan.layer_count() > 0);
}
