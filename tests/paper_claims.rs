//! Qualitative paper claims, asserted end to end.
//!
//! These tests pin the *shape* of the paper's results: who wins, what gets
//! suppressed, and the scalability properties — not the absolute numbers,
//! which depend on the substituted simulation substrate (see DESIGN.md).

use zz_circuit::bench::BenchmarkKind;
use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_core::evaluate::{benchmark_fidelity, compile_benchmark, EvalConfig};
use zz_core::{calib, PulseMethod, SchedulerKind};
use zz_pulse::library::{x90_drive, PulseMethod as PM};
use zz_pulse::systems::infidelity_1q;
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_topology::Topology;

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        crosstalk_seeds: vec![11],
        ..EvalConfig::paper_default()
    }
}

/// Sec 5.1: complete suppression is achievable on bipartite topologies —
/// every single-qubit-gate layer scheduled by ZZXSched has NC = 0.
#[test]
fn claim_complete_suppression_on_bipartite_devices() {
    for topo in [
        Topology::grid(3, 4),
        Topology::grid(2, 3),
        Topology::line(7),
    ] {
        let mut native = NativeCircuit::new(topo.qubit_count());
        for q in 0..topo.qubit_count() {
            native.push(NativeOp::X90 { qubit: q });
        }
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        for (i, layer) in plan.layers.iter().enumerate() {
            assert_eq!(
                layer.metrics.nc,
                0,
                "layer {i} on {} not completely suppressed",
                topo.name()
            );
        }
    }
}

/// Fig 16: the pulse-method ordering at the typical device strength —
/// Pert ≤ OptCtrl/DCG ≪ Gaussian.
#[test]
fn claim_pulse_method_ordering() {
    let lambda = zz_pulse::khz(200.0);
    let inf = |m: PM| {
        let d = x90_drive(m);
        infidelity_1q(&d.as_drive(), &zz_quantum::gates::x90(), lambda)
    };
    let (gauss, optctrl, pert, dcg) = (
        inf(PM::Gaussian),
        inf(PM::OptCtrl),
        inf(PM::Pert),
        inf(PM::Dcg),
    );
    assert!(pert < optctrl, "Pert {pert} must beat OptCtrl {optctrl}");
    assert!(pert < dcg, "Pert {pert} must beat DCG {dcg}");
    assert!(
        optctrl < gauss / 5.0,
        "OptCtrl {optctrl} must beat Gaussian {gauss}"
    );
    assert!(dcg < gauss / 5.0, "DCG {dcg} must beat Gaussian {gauss}");
}

/// Fig 20, key result 2: the approach is insensitive to the pulse method —
/// OptCtrl+ZZXSched and Pert+ZZXSched land far closer to each other than
/// to the baseline.
#[test]
fn claim_insensitive_to_pulse_method() {
    let cfg = quick_cfg();
    let kind = BenchmarkKind::Grc;
    let n = 6;
    let base = benchmark_fidelity(
        kind,
        n,
        PulseMethod::Gaussian,
        SchedulerKind::ParSched,
        &cfg,
    )
    .expect("fits");
    let opt = benchmark_fidelity(kind, n, PulseMethod::OptCtrl, SchedulerKind::ZzxSched, &cfg)
        .expect("fits");
    let pert = benchmark_fidelity(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg)
        .expect("fits");
    assert!(
        (opt - pert).abs() < (pert - base).abs(),
        "methods should agree more with each other (opt {opt}, pert {pert}) than with the baseline ({base})"
    );
}

/// Fig 21: co-optimization beats each part alone (synergy).
#[test]
fn claim_synergy_of_co_optimization() {
    let cfg = quick_cfg();
    for (kind, n) in [(BenchmarkKind::Grc, 6), (BenchmarkKind::Ising, 6)] {
        let pulses_only =
            benchmark_fidelity(kind, n, PulseMethod::Pert, SchedulerKind::ParSched, &cfg)
                .expect("fits");
        let sched_only = benchmark_fidelity(
            kind,
            n,
            PulseMethod::Gaussian,
            SchedulerKind::ZzxSched,
            &cfg,
        )
        .expect("fits");
        let both = benchmark_fidelity(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg)
            .expect("fits");
        assert!(
            both + 1e-9 >= pulses_only && both + 1e-9 >= sched_only,
            "{kind}-{n}: both {both} vs pulses {pulses_only} / sched {sched_only}"
        );
    }
}

/// Fig 25: on tunable-coupler devices, the co-optimization slashes the
/// number of couplings that must be turned off.
#[test]
fn claim_fewer_couplings_to_turn_off() {
    let cfg = quick_cfg();
    let compiled = compile_benchmark(
        BenchmarkKind::Qv,
        9,
        PulseMethod::Pert,
        SchedulerKind::ZzxSched,
        &cfg,
    )
    .expect("fits");
    let baseline = compiled.topology.coupling_count() as f64;
    assert!(
        compiled.plan.mean_nc() < baseline / 3.0,
        "mean NC {} vs all-couplings baseline {baseline}",
        compiled.plan.mean_nc()
    );
}

/// Sec 7.2 / calib: the residual factors behind the circuit-level error
/// model keep the pulse-method hierarchy.
#[test]
fn claim_residual_hierarchy() {
    let g = calib::residual_factor(PulseMethod::Gaussian);
    let o = calib::residual_factor(PulseMethod::OptCtrl);
    let p = calib::residual_factor(PulseMethod::Pert);
    assert!(
        p < o && o < g,
        "hierarchy violated: pert {p}, optctrl {o}, gauss {g}"
    );
}

/// Sec 7.4 / Fig 27: protective identity pulses collapse the effective ZZ
/// strength measured by Ramsey interferometry.
#[test]
fn claim_ramsey_suppression() {
    use zz_pulse::ramsey::*;
    let cfg = RamseyConfig {
        blocks: 96,
        ..RamseyConfig::paper_default()
    };
    let bare = effective_zz_khz(RamseyCircuit::Original, NeighborGroup::Q1Only, &cfg);
    let protected = effective_zz_khz(RamseyCircuit::IdOnQ2, NeighborGroup::Q1Only, &cfg);
    assert!(
        bare > 150.0,
        "unprotected ZZ should be ≈200 kHz, got {bare}"
    );
    assert!(
        protected < 11.0,
        "protected ZZ should be <11 kHz, got {protected}"
    );
}
