//! OpenQASM 2.0 import/export coverage: round-trips through `to_qasm` /
//! `from_qasm`, typed rejection of malformed input, and golden circuits
//! (GHZ, QAOA, a ripple full adder) checked structurally and — for the
//! adder — against its truth table.

use zz_circuit::qasm::{from_qasm, to_qasm, QasmError};
use zz_circuit::{bench, Circuit, Gate};
use zz_quantum::states::basis_state;

const PI: f64 = std::f64::consts::PI;

// ---------------------------------------------------------------- round-trip

/// Every gate whose QASM spelling is exact (all but `SqrtY`/`SqrtW`,
/// which export as `ry`/`u3` approximations up to global phase).
fn exactly_representable() -> Circuit {
    let mut c = Circuit::new(3);
    for gate in [
        Gate::H,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::SqrtX,
        Gate::Rx(0.1),
        Gate::Ry(-0.2),
        Gate::Rz(PI / 2.0),
        Gate::Phase(0.4),
        Gate::U3(0.1, -0.2, 0.3),
    ] {
        c.push(gate, &[1]);
    }
    for gate in [
        Gate::Cnot,
        Gate::Cz,
        Gate::CPhase(0.5),
        Gate::Rzz(-0.625),
        Gate::Swap,
    ] {
        c.push(gate, &[2, 0]);
    }
    c
}

#[test]
fn export_import_round_trip_is_exact() {
    let circuit = exactly_representable();
    let back = from_qasm(&to_qasm(&circuit)).expect("own output parses");
    assert_eq!(back, circuit, "round trip must preserve every op exactly");
    assert_eq!(
        back.content_digest(),
        circuit.content_digest(),
        "angles must survive bit-for-bit"
    );
}

#[test]
fn reexport_is_a_fixed_point() {
    let text = to_qasm(&exactly_representable());
    let again = to_qasm(&from_qasm(&text).expect("parses"));
    assert_eq!(text, again, "export∘import must be idempotent on text");
}

#[test]
fn benchmark_families_round_trip() {
    for kind in [
        bench::BenchmarkKind::HiddenShift,
        bench::BenchmarkKind::Qft,
        bench::BenchmarkKind::Qpe,
        bench::BenchmarkKind::Qaoa,
        bench::BenchmarkKind::Ising,
        bench::BenchmarkKind::Qv,
    ] {
        let circuit = bench::generate(kind, 4, 7);
        let back = from_qasm(&to_qasm(&circuit)).expect("benchmark exports parse");
        assert_eq!(back, circuit, "{kind} must round-trip");
    }
}

#[test]
fn angle_expressions_evaluate() {
    let text = "OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\nrz(-3*pi/4) q[0];\nu3(pi/2, -pi/4, (pi+pi)/4) q[0];\nrx(1e-3) q[0];\n";
    let circuit = from_qasm(text).expect("qelib-style angles parse");
    let angles: Vec<Gate> = circuit.ops().iter().map(|op| op.gate).collect();
    assert_eq!(
        angles,
        vec![
            Gate::Rx(PI / 2.0),
            Gate::Rz(-3.0 * PI / 4.0),
            Gate::U3(PI / 2.0, -PI / 4.0, PI / 2.0),
            Gate::Rx(1e-3),
        ]
    );
}

// ------------------------------------------------------------- golden: GHZ

#[test]
fn golden_ghz_parses_to_the_reference_circuit() {
    let text = "\
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[4];
creg c[4]; // classical register is accepted and ignored
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
barrier q[0],q[1],q[2],q[3];
";
    let parsed = from_qasm(text).expect("GHZ parses");
    let mut expected = Circuit::new(4);
    expected.push(Gate::H, &[0]);
    expected.push(Gate::Cnot, &[0, 1]);
    expected.push(Gate::Cnot, &[1, 2]);
    expected.push(Gate::Cnot, &[2, 3]);
    assert_eq!(parsed, expected);

    // |0000⟩ → (|0000⟩ + |1111⟩)/√2.
    let out = parsed.unitary().mul_vec(&zz_quantum::states::zero_state(4));
    let p0 = out.fidelity(&basis_state(&[0, 0, 0, 0]));
    let p1 = out.fidelity(&basis_state(&[1, 1, 1, 1]));
    assert!((p0 - 0.5).abs() < 1e-9 && (p1 - 0.5).abs() < 1e-9);
}

// ------------------------------------------------------------ golden: QAOA

#[test]
fn golden_qaoa_matches_the_generator() {
    // The paper's QAOA family, externalized and re-imported: the QASM
    // text is the interchange format for exactly this circuit.
    let circuit = bench::generate(bench::BenchmarkKind::Qaoa, 6, 3);
    let text = to_qasm(&circuit);
    assert!(text.contains("rzz("), "QAOA must carry its cost layer");
    assert!(text.contains("rx("), "QAOA must carry its mixer layer");
    let parsed = from_qasm(&text).expect("QAOA exports parse");
    assert_eq!(parsed, circuit);
}

// ----------------------------------------------------------- golden: adder

/// Emits the qelib1 `ccx` body (Toffoli over {h, t, tdg, cx}) — gate
/// definitions are outside the importer's subset, so the golden adder
/// inlines them the way a `gate`-free QASM emitter would.
fn push_ccx(out: &mut String, a: usize, b: usize, c: usize) {
    let lines = [
        format!("h q[{c}];"),
        format!("cx q[{b}],q[{c}];"),
        format!("tdg q[{c}];"),
        format!("cx q[{a}],q[{c}];"),
        format!("t q[{c}];"),
        format!("cx q[{b}],q[{c}];"),
        format!("tdg q[{c}];"),
        format!("cx q[{a}],q[{c}];"),
        format!("t q[{b}];"),
        format!("t q[{c}];"),
        format!("h q[{c}];"),
        format!("cx q[{a}],q[{b}];"),
        format!("t q[{a}];"),
        format!("tdg q[{b}];"),
        format!("cx q[{a}],q[{b}];"),
    ];
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
}

#[test]
fn golden_adder_implements_its_truth_table() {
    // Full adder on q = [cin, a, b, cout]: after the circuit, b holds
    // a⊕b⊕cin and cout holds the carry; cin and a are unchanged.
    let mut text = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n");
    push_ccx(&mut text, 1, 2, 3); // cout ^= a·b
    text.push_str("cx q[1],q[2];\n"); // b = a⊕b
    push_ccx(&mut text, 0, 2, 3); // cout ^= cin·(a⊕b)
    text.push_str("cx q[0],q[2];\n"); // b = a⊕b⊕cin

    let adder = from_qasm(&text).expect("adder parses");
    assert_eq!(adder.qubit_count(), 4);
    assert_eq!(adder.gate_count(), 32, "2 inlined Toffolis + 2 CNOTs");

    let u = adder.unitary();
    for input in 0..8u8 {
        let (cin, a, b) = (input & 1, (input >> 1) & 1, (input >> 2) & 1);
        let sum = a ^ b ^ cin;
        let carry = (a & b) | (cin & (a ^ b));
        let out = u.mul_vec(&basis_state(&[cin, a, b, 0]));
        let expected = basis_state(&[cin, a, sum, carry]);
        assert!(
            out.fidelity(&expected) > 1.0 - 1e-9,
            "adder wrong on cin={cin} a={a} b={b}"
        );
    }
}

// ------------------------------------------------------------ malformed input

#[test]
fn missing_header_is_typed() {
    assert_eq!(
        from_qasm("qreg q[2];\nh q[0];\n").unwrap_err(),
        QasmError::MissingHeader
    );
    assert_eq!(from_qasm("").unwrap_err(), QasmError::MissingHeader);
}

#[test]
fn wrong_version_is_unsupported() {
    match from_qasm("OPENQASM 3.0;\nqreg q[1];\n").unwrap_err() {
        QasmError::Unsupported { line: 1, what } => assert!(what.contains("3.0")),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn unknown_gates_are_typed_with_their_line() {
    let text = "OPENQASM 2.0;\nqreg q[2];\nccx q[0],q[1],q[0];\n";
    assert_eq!(
        from_qasm(text).unwrap_err(),
        QasmError::UnknownGate {
            line: 3,
            name: "ccx".into()
        }
    );
}

#[test]
fn out_of_range_and_repeated_qubits_are_typed() {
    assert_eq!(
        from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n").unwrap_err(),
        QasmError::QubitOutOfRange {
            line: 3,
            qubit: 5,
            count: 2
        }
    );
    assert_eq!(
        from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[1],q[1];\n").unwrap_err(),
        QasmError::RepeatedQubit { line: 3, qubit: 1 }
    );
}

#[test]
fn gate_before_register_is_typed() {
    assert_eq!(
        from_qasm("OPENQASM 2.0;\nh q[0];\n").unwrap_err(),
        QasmError::NoRegister { line: 2 }
    );
}

#[test]
fn statements_must_terminate() {
    match from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0]\n").unwrap_err() {
        QasmError::Malformed { line: 3, detail } => assert!(detail.contains(';')),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn malformed_angles_are_typed_not_panicking() {
    for bad in [
        "rx() q[0];",
        "rx(pi/) q[0];",
        "rx((pi) q[0];",
        "rx(1..2) q[0];",
        "rx(banana) q[0];",
        "rx(0.1 0.2) q[0];",
        "u3(0.1) q[0];",
        "h(0.3) q[0];",
    ] {
        let text = format!("OPENQASM 2.0;\nqreg q[1];\n{bad}\n");
        assert!(
            matches!(
                from_qasm(&text).unwrap_err(),
                QasmError::Malformed { line: 3, .. }
            ),
            "'{bad}' must be Malformed at line 3"
        );
    }
}

#[test]
fn unsupported_constructs_are_typed() {
    for (stmt, needle) in [
        ("measure q[0] -> c[0];", "measure"),
        ("reset q[0];", "reset"),
        ("if (c == 1) x q[0];", "if"),
        ("gate mine a { h a; };", "gate"),
        ("opaque thing(theta) a,b;", "opaque"),
        ("h q;", "whole-register"),
        ("qreg r[2];", "second"),
    ] {
        let text = format!("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n{stmt}\n");
        match from_qasm(&text).unwrap_err() {
            QasmError::Unsupported { line: 4, what } => {
                assert!(what.contains(needle), "'{stmt}' → {what}")
            }
            other => panic!("'{stmt}' expected Unsupported, got {other:?}"),
        }
    }
}

#[test]
fn errors_render_their_line_numbers() {
    let err = from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[9];\n").unwrap_err();
    assert!(err.to_string().contains("line 3"), "{err}");
}
