//! Integration tests of the service layer (`zz_service`):
//!
//! * **Adapter equivalence matrix** — for every `(PulseMethod,
//!   SchedulerKind)` combination, `Session::compile` output must be
//!   bit-identical to the legacy `CoOptimizer::compile` and
//!   `BatchCompiler::run` facades (which are kept as thin adapters over
//!   the same pass pipeline), through both the synchronous and the
//!   submit/drain paths.
//! * **Typed error paths** — oversized circuits, unwritable cache
//!   directories and failing jobs inside `drain` come back as typed
//!   `zz_service::Error` variants, never as panics.
//! * **Evaluation equivalence** — a request's in-queue fidelity matches
//!   the legacy `evaluate::fidelity_of` exactly.

use std::sync::Arc;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::Circuit;
use zz_core::batch::{BatchCompiler, BatchJob};
use zz_core::evaluate::{fidelity_of, EvalConfig};
use zz_core::{CoOptError, CoOptimizer, CompileOptions, PulseMethod, SchedulerKind};
use zz_sched::zzx::Requirement;
use zz_service::{CompileRequest, Error, EvalSpec, Session, Target};
use zz_topology::Topology;

/// Every `(PulseMethod, SchedulerKind)` combination.
fn full_matrix() -> Vec<(PulseMethod, SchedulerKind)> {
    PulseMethod::ALL
        .iter()
        .flat_map(|&m| {
            [SchedulerKind::ParSched, SchedulerKind::ZzxSched]
                .into_iter()
                .map(move |s| (m, s))
        })
        .collect()
}

#[test]
fn session_matches_the_legacy_facades_for_every_method_scheduler_pair() {
    let topo = Topology::grid(2, 3);
    let circuit = generate(BenchmarkKind::Qaoa, 6, 7);
    let session = Session::new(
        Target::builder()
            .topology(topo.clone())
            .build()
            .expect("no store"),
    );

    for (method, scheduler) in full_matrix() {
        let options = CompileOptions::new(method, scheduler);

        // Legacy facade 1: the sequential optimizer.
        let via_optimizer = CoOptimizer::builder()
            .topology(topo.clone())
            .options(options)
            .build()
            .compile(&circuit)
            .expect("fits");

        // Legacy facade 2: the batch engine.
        let report = BatchCompiler::builder()
            .topology(topo.clone())
            .build()
            .run(vec![BatchJob::with_options(
                Arc::new(circuit.clone()),
                options,
            )]);
        let via_batch = report.outcomes[0].result.as_ref().expect("fits");

        // The service, synchronous path.
        let via_session = session
            .compile(&CompileRequest::new(circuit.clone()).with_options(options))
            .expect("fits")
            .compiled;

        // The service, submit/drain path.
        let handle = session.submit(CompileRequest::new(circuit.clone()).with_options(options));
        let via_queue = handle.wait().expect("fits").compiled;
        session.drain();

        assert_eq!(
            via_optimizer, via_session,
            "{method}+{scheduler}: session drifted from CoOptimizer"
        );
        assert_eq!(
            via_batch, &via_session,
            "{method}+{scheduler}: session drifted from BatchCompiler"
        );
        assert_eq!(
            via_session, via_queue,
            "{method}+{scheduler}: queued path drifted from synchronous path"
        );
    }
}

#[test]
fn session_matches_the_legacy_facades_for_non_default_parameters() {
    let topo = Topology::grid(3, 3);
    let circuit = generate(BenchmarkKind::Qft, 9, 7);
    let req = Requirement {
        nq_limit: 3,
        nc_limit: 5,
    };
    let session = Session::new(
        Target::builder()
            .topology(topo.clone())
            .build()
            .expect("no store"),
    );
    for (alpha, k, requirement) in [(0.25, 1, None), (2.0, 8, Some(req))] {
        let mut options = CompileOptions::default().with_alpha(alpha).with_k(k);
        if let Some(r) = requirement {
            options = options.with_requirement(r);
        }
        let legacy = CoOptimizer::builder()
            .topology(topo.clone())
            .options(options)
            .build()
            .compile(&circuit)
            .expect("fits");
        let via_session = session
            .compile(&CompileRequest::new(circuit.clone()).with_options(options))
            .expect("fits")
            .compiled;
        assert_eq!(legacy, via_session, "alpha={alpha} k={k}");
    }
}

#[test]
fn in_queue_evaluation_matches_the_legacy_eval_path() {
    let session = Session::new(Target::for_qubits(4).expect("fits"));
    let circuit = generate(BenchmarkKind::HiddenShift, 4, 7);
    let spec = EvalSpec::paper_default().with_seeds(vec![11, 23]);

    let response = session
        .compile(
            &CompileRequest::new(circuit.clone())
                .with_options(CompileOptions::default())
                .with_eval(spec),
        )
        .expect("fits");

    let legacy_cfg = EvalConfig {
        crosstalk_seeds: vec![11, 23],
        ..EvalConfig::paper_default()
    };
    let legacy = fidelity_of(&response.compiled, &legacy_cfg);
    assert_eq!(
        response.fidelity.expect("eval requested"),
        legacy,
        "in-queue evaluation drifted from evaluate::fidelity_of"
    );
}

/// A Monte-Carlo in-queue evaluation (9 qubits forces the trajectory
/// path) must surface the batched engine's counters — trajectories,
/// kernel sweeps, per-batch run-time histogram — in the session registry
/// that `Client::stats()` ships.
#[test]
fn engine_metrics_surface_in_the_session_registry() {
    let session = Session::new(Target::for_qubits(9).expect("fits"));
    let circuit = generate(BenchmarkKind::Qaoa, 9, 7);
    let trajectories = 24;
    let spec = EvalSpec::paper_default()
        .with_seeds(vec![11])
        .with_decoherence_us(200.0, trajectories);

    let response = session
        .compile(
            &CompileRequest::new(circuit)
                .with_options(CompileOptions::default())
                .with_eval(spec),
        )
        .expect("fits");
    assert!(response.fidelity.is_some(), "eval was requested");

    let snapshot = session.metrics().snapshot();
    let simulated = snapshot.counter("engine.trajectories").unwrap_or(0);
    assert!(
        simulated >= trajectories as u64,
        "expected ≥{trajectories} trajectories in the registry, saw {simulated}"
    );
    assert!(
        snapshot.counter("engine.kernel_sweeps").unwrap_or(0) > 0,
        "kernel sweep counter never moved"
    );
    let hist = snapshot
        .histogram("engine.batch.run_us")
        .expect("batch run-time histogram registered");
    // 24 trajectories at the default batch width of 16 is two batches.
    assert!(hist.count >= 2, "expected ≥2 batches, saw {}", hist.count);
    assert!(
        snapshot.counter("engine.diag.fused").is_some(),
        "fused-diagonal counter registered"
    );
}

#[test]
fn oversized_circuits_are_typed_validate_errors_never_panics() {
    let session = Session::new(
        Target::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .expect("no store"),
    );
    let request = CompileRequest::new(Circuit::new(9)).with_label("nine-on-four");

    // Synchronous path.
    match session.compile(&request) {
        Err(Error::Validate { job, source }) => {
            assert_eq!(job, "nine-on-four");
            assert_eq!(
                source,
                CoOptError::CircuitTooLarge {
                    needed: 9,
                    available: 4
                }
            );
        }
        other => panic!("expected Validate, got {other:?}"),
    }

    // Queued path: the same typed error through the handle.
    let handle = session.submit(request);
    assert!(matches!(handle.wait(), Err(Error::Validate { .. })));
    session.drain();

    // Target construction no longer rejects large devices: beyond the
    // paper's 12-qubit evaluation sub-grids, `for_qubits` scales to a
    // near-square compile-only grid (13 → 3×5 = 15 qubits).
    let large = Target::for_qubits(13).expect("large targets build");
    assert_eq!(large.topology().qubit_count(), 15);
}

#[test]
fn unwritable_cache_dir_is_a_typed_persist_error() {
    // A path under a regular file can never be created as a directory.
    let file = std::env::temp_dir().join(format!("zz-service-it-probe-{}", std::process::id()));
    std::fs::write(&file, b"occupied").expect("temp file");
    let result = Target::builder().store_dir(file.join("cache")).build();
    match result {
        Err(Error::Persist { detail }) => {
            assert!(detail.contains("cache"), "{detail}");
        }
        other => panic!("expected Persist, got {other:?}"),
    }
    let _ = std::fs::remove_file(&file);
}

#[test]
fn failing_jobs_inside_drain_are_reported_in_order_not_panicking() {
    let session = Session::new(
        Target::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .expect("no store"),
    );
    session.submit(CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7)).with_label("ok-1"));
    session.submit(CompileRequest::new(Circuit::new(9)).with_label("too-big"));
    session.submit(CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7)).with_label("ok-2"));

    let report = session.drain();
    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(report.error_count(), 1);
    assert!(report.outcomes[0].is_ok());
    match &report.outcomes[1] {
        Err(Error::Validate { job, .. }) => assert_eq!(job, "too-big"),
        other => panic!("expected Validate, got {other:?}"),
    }
    assert!(report.outcomes[2].is_ok());

    // The failure also surfaces through the typed fidelity accessor.
    assert!(matches!(
        report.fidelities(),
        Err(Error::Eval { .. } | Error::Validate { .. })
    ));
}

#[test]
fn sweeps_share_one_routing_pass_through_the_session_memo() {
    let session = Session::with_threads(
        Target::builder()
            .topology(Topology::grid(3, 3))
            .build()
            .expect("no store"),
        1, // deterministic hit/miss split
    );
    let circuit = Arc::new(generate(BenchmarkKind::Qaoa, 9, 7));
    for alpha in [0.0, 0.25, 0.5, 1.0] {
        session.submit(
            CompileRequest::shared(Arc::clone(&circuit))
                .with_options(CompileOptions::default().with_alpha(alpha))
                .with_label(format!("alpha-{alpha}")),
        );
    }
    let report = session.drain();
    assert_eq!(report.error_count(), 0, "{report}");
    assert_eq!(report.route_misses, 1, "{report}");
    assert_eq!(report.route_hits, 3, "{report}");
    assert_eq!(session.memoized_shapes(), 1);
}
