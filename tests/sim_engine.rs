//! Equivalence suite for the precompiled simulation engine.
//!
//! The engine in `zz_sim::program` replaces the straight-line executor
//! that swept the full amplitude array once per coupling per layer. This
//! suite pins the new engine against the shared **reference executor**
//! ([`zz_bench::reference`]), which reproduces the legacy semantics
//! literally (per-coupling ZZ sweeps, per-rotation phase passes, freshly
//! built gate matrices), across the full `(PulseMethod, SchedulerKind)`
//! compile matrix, and pins the Monte-Carlo fan's bit-identical
//! thread-count invariance.

use zz_bench::reference;
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::{Circuit, Gate};
use zz_core::evaluate::device_for;
use zz_core::{CoOptimizer, Compiled, PulseMethod, SchedulerKind};
use zz_sched::GateDurations;
use zz_sim::density::Decoherence;
use zz_sim::executor::{
    fidelity_under_zz, fidelity_with_decoherence, fidelity_with_decoherence_threads, run_ideal,
    run_with_zz, ZzErrorModel,
};
use zz_sim::program::{PlanProgram, TrajectoryProgram, DIAG_TABLE_MAX_QUBITS};
use zz_sim::StateVector;
use zz_topology::Topology;

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn compile_case(method: PulseMethod, scheduler: SchedulerKind) -> Compiled {
    let n = 6;
    let circuit = generate(BenchmarkKind::Qaoa, n, 7);
    CoOptimizer::builder()
        .topology(device_for(n))
        .pulse_method(method)
        .scheduler(scheduler)
        .build()
        .compile(&circuit)
        .expect("benchmark sized to the device")
}

/// Every `(PulseMethod, SchedulerKind)` cell: the precompiled engine must
/// match the per-coupling reference executor amplitude-for-amplitude.
#[test]
fn engine_matches_reference_across_the_compile_matrix() {
    for method in [
        PulseMethod::Gaussian,
        PulseMethod::OptCtrl,
        PulseMethod::Pert,
        PulseMethod::Dcg,
    ] {
        for scheduler in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            let compiled = compile_case(method, scheduler);
            let topo = &compiled.topology;
            let model = ZzErrorModel::sampled(topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 11)
                .with_residuals(compiled.residuals);

            let ideal_new = run_ideal(&compiled.plan);
            let ideal_ref = reference::run_ideal(&compiled.plan);
            let d_ideal = max_amp_diff(&ideal_new, &ideal_ref);
            assert!(d_ideal <= 1e-12, "{method}+{scheduler}: ideal Δ={d_ideal}");

            let noisy_new = run_with_zz(&compiled.plan, topo, &model, &compiled.durations);
            let noisy_ref =
                reference::run_with_zz(&compiled.plan, topo, &model, &compiled.durations);
            let d_noisy = max_amp_diff(&noisy_new, &noisy_ref);
            assert!(d_noisy <= 1e-12, "{method}+{scheduler}: noisy Δ={d_noisy}");

            let f_new = fidelity_under_zz(&compiled.plan, topo, &model, &compiled.durations);
            let f_ref = ideal_ref.fidelity(&noisy_ref);
            assert!(
                (f_new - f_ref).abs() <= 1e-12,
                "{method}+{scheduler}: fidelity {f_new} vs {f_ref}"
            );
        }
    }
}

/// A reused program must give the same answer as the one-shot wrappers.
#[test]
fn precompiled_program_is_reusable() {
    let compiled = compile_case(PulseMethod::Pert, SchedulerKind::ZzxSched);
    let topo = &compiled.topology;
    let model = ZzErrorModel::sampled(topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 23)
        .with_residuals(compiled.residuals);
    let program = PlanProgram::compile(&compiled.plan, topo, &model, &compiled.durations);
    let once = program.run();
    let twice = program.run();
    assert_eq!(max_amp_diff(&once, &twice), 0.0, "replay must be exact");
    let wrapper = run_with_zz(&compiled.plan, topo, &model, &compiled.durations);
    assert_eq!(max_amp_diff(&once, &wrapper), 0.0);
}

/// The Monte-Carlo fan must be bit-identical for 1, 2 and 8 threads: the
/// per-trajectory seeds are derived deterministically and the reduction
/// is ordered, so the pool width cannot leak into the result.
#[test]
fn monte_carlo_fidelity_is_bit_identical_across_thread_counts() {
    // 9 qubits: the size evaluate() routes to the Monte-Carlo path.
    let topo = Topology::grid(3, 3);
    let circuit = generate(BenchmarkKind::Qaoa, 9, 7);
    let native = zz_circuit::native::compile_to_native(&zz_circuit::route(&circuit, &topo));
    let plan = zz_sched::par_schedule(&topo, &native);
    let model =
        ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 5).with_residual(0.05);
    let deco = Decoherence::equal_us(200.0);
    let d = GateDurations::standard();

    let f1 = fidelity_with_decoherence_threads(&plan, &topo, &model, &deco, &d, 48, 17, 1);
    let f2 = fidelity_with_decoherence_threads(&plan, &topo, &model, &deco, &d, 48, 17, 2);
    let f8 = fidelity_with_decoherence_threads(&plan, &topo, &model, &deco, &d, 48, 17, 8);
    assert_eq!(f1.to_bits(), f2.to_bits(), "1 vs 2 threads: {f1} vs {f2}");
    assert_eq!(f1.to_bits(), f8.to_bits(), "1 vs 8 threads: {f1} vs {f8}");
    // The default-width wrapper rides the same derivation.
    let f_default = fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, 48, 17);
    assert_eq!(f1.to_bits(), f_default.to_bits());
    assert!(f1 > 0.0 && f1 <= 1.0 + 1e-9, "fidelity {f1}");
}

/// The batched Monte-Carlo fan must be bit-identical across every batch
/// width × thread count combination on the 9-qubit workload: each lane's
/// arithmetic never mixes with its neighbours and the reduction stays in
/// trajectory order, so neither knob can leak into the result.
#[test]
fn monte_carlo_fidelity_is_bit_identical_across_batch_widths() {
    let topo = Topology::grid(3, 3);
    let circuit = generate(BenchmarkKind::Qaoa, 9, 7);
    let native = zz_circuit::native::compile_to_native(&zz_circuit::route(&circuit, &topo));
    let plan = zz_sched::par_schedule(&topo, &native);
    let model =
        ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 5).with_residual(0.05);
    let deco = Decoherence::equal_us(200.0);
    let trajectories = 48;
    let program =
        TrajectoryProgram::compile(&plan, &topo, &model, &deco, &GateDurations::standard());
    let ideal = PlanProgram::ideal(&plan).run();

    let reference = program.mean_fidelity_batched(&ideal, trajectories, 17, 1, 1);
    for lanes in [1, 3, 8, trajectories] {
        for threads in [1, 2, 8] {
            let f = program.mean_fidelity_batched(&ideal, trajectories, 17, threads, lanes);
            assert_eq!(
                reference.to_bits(),
                f.to_bits(),
                "lanes={lanes} threads={threads}: {reference} vs {f}"
            );
        }
    }
    assert!(reference > 0.0 && reference <= 1.0 + 1e-9);
}

/// Every `(PulseMethod, SchedulerKind)` cell through the **batched**
/// trajectory path: with decoherence switched off, every trajectory is
/// the deterministic evolution, so the batched mean must agree with the
/// reference executor's fidelity to ≤1e-12.
#[test]
fn batched_trajectories_match_reference_across_the_compile_matrix() {
    for method in [
        PulseMethod::Gaussian,
        PulseMethod::OptCtrl,
        PulseMethod::Pert,
        PulseMethod::Dcg,
    ] {
        for scheduler in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            let compiled = compile_case(method, scheduler);
            let topo = &compiled.topology;
            let model = ZzErrorModel::sampled(topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 11)
                .with_residuals(compiled.residuals);
            let deco = Decoherence::new(f64::INFINITY, f64::INFINITY);
            let program = TrajectoryProgram::compile(
                &compiled.plan,
                topo,
                &model,
                &deco,
                &compiled.durations,
            );
            let ideal_ref = reference::run_ideal(&compiled.plan);
            let noisy_ref =
                reference::run_with_zz(&compiled.plan, topo, &model, &compiled.durations);
            let f_ref = ideal_ref.fidelity(&noisy_ref);
            let f_batched = program.mean_fidelity_batched(&ideal_ref, 6, 3, 1, 4);
            assert!(
                (f_batched - f_ref).abs() <= 1e-12,
                "{method}+{scheduler}: batched {f_batched} vs reference {f_ref}"
            );
        }
    }
}

/// A 17-qubit GHZ plan crosses the `DIAG_TABLE_MAX_QUBITS` boundary, so
/// every fused diagonal runs through the per-term fallback — which must
/// still match the reference executor amplitude-for-amplitude.
#[test]
fn seventeen_qubit_ghz_exercises_the_diag_fallback_against_reference() {
    let n = DIAG_TABLE_MAX_QUBITS + 1;
    let topo = Topology::line(n);
    let mut circuit = Circuit::new(n);
    circuit.push(Gate::H, &[0]);
    for q in 1..n {
        circuit.push(Gate::Cnot, &[q - 1, q]);
    }
    let native = zz_circuit::native::compile_to_native(&zz_circuit::route(&circuit, &topo));
    let plan = zz_sched::par_schedule(&topo, &native);
    let model =
        ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 13).with_residual(0.05);
    let d = GateDurations::standard();

    let noisy_new = run_with_zz(&plan, &topo, &model, &d);
    let noisy_ref = reference::run_with_zz(&plan, &topo, &model, &d);
    let diff = max_amp_diff(&noisy_new, &noisy_ref);
    assert!(diff <= 1e-12, "17-qubit fallback Δ={diff}");
}
