//! Fleet-level integration tests: dispatch determinism across thread
//! counts, drift-driven calibration invalidation (no stale disk
//! artifact is ever reused), and per-device shard isolation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::batch::DiskStatus;
use zz_fleet::{DeviceProfile, DriftModel, Fleet, FleetConfig};
use zz_service::{CompileOptions, CompileRequest};

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "zz-fleet-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small config: single eval seed and few trajectories keep the
/// simulation-scored candidates fast without touching determinism.
fn fast_config(threads: usize) -> FleetConfig {
    FleetConfig {
        seed: 7,
        threads_per_device: threads,
        eval_seeds: vec![11],
        trajectories: 4,
        ..FleetConfig::default()
    }
}

/// The mixed job stream every determinism assertion replays: two small
/// jobs all three backends can hold, and one 16-qubit job only the
/// 18-qubit heavy-hex device fits.
fn job_stream() -> Vec<(BenchmarkKind, usize)> {
    vec![
        (BenchmarkKind::Qft, 4),
        (BenchmarkKind::Qft, 16),
        (BenchmarkKind::HiddenShift, 6),
    ]
}

/// Runs the standard job stream (with one drift epoch in the middle)
/// and records every decision bit-exactly.
fn run_stream(threads: usize) -> Vec<String> {
    let mut fleet = Fleet::standard(fast_config(threads)).expect("standard fleet builds");
    let mut decisions = Vec::new();
    for (round, (kind, n)) in job_stream().into_iter().enumerate() {
        if round == 2 {
            let epoch = fleet.advance_epoch().expect("epoch advances");
            for inv in &epoch.invalidations {
                decisions.push(format!(
                    "invalidate {} {:016x}",
                    inv.device,
                    inv.new_lambda.to_bits()
                ));
            }
        }
        let dispatch = fleet
            .submit(generate(kind, n, 5), CompileOptions::default())
            .expect("dispatches");
        for candidate in &dispatch.candidates {
            decisions.push(format!(
                "candidate {} {:016x}",
                candidate.device,
                candidate.score.to_bits()
            ));
        }
        decisions.push(format!(
            "dispatch {} -> {} {:016x}",
            dispatch.label,
            dispatch.device,
            dispatch.score.to_bits()
        ));
    }
    decisions
}

#[test]
fn dispatch_decisions_are_bit_identical_at_any_thread_count() {
    let single = run_stream(1);
    let pooled = run_stream(4);
    assert_eq!(single, pooled, "thread count changed a dispatch decision");
    // The stream exercised both scoring paths and a real choice: the
    // 20-qubit job had exactly one candidate, the small jobs three.
    assert!(single.iter().any(|d| d.contains("heavy-hex-static")));
    assert!(single.iter().filter(|d| d.starts_with("candidate")).count() >= 7);
}

#[test]
fn same_seed_makes_identical_fleets_twice() {
    assert_eq!(run_stream(2), run_stream(2));
}

/// A threshold strictly between the smallest and largest epoch-1
/// deviations of the shipped profiles, so one `advance_epoch` provably
/// invalidates *some but not all* devices — computed from the
/// deterministic drift walk rather than hard-coded.
fn partitioning_threshold(config: &FleetConfig) -> f64 {
    let drift = DriftModel::new(config.seed).with_step(config.drift_step);
    let deviations: Vec<f64> = DeviceProfile::standard_fleet()
        .iter()
        .map(|p| (drift.lambda_at(p.lambda_mean, &p.name, 1) - p.lambda_mean).abs() / p.lambda_mean)
        .collect();
    let lo = deviations.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = deviations.iter().cloned().fold(0.0, f64::max);
    assert!(lo < hi, "deviations must differ to partition the fleet");
    (lo + hi) / 2.0
}

#[test]
fn drift_invalidates_exactly_the_drifted_devices_and_leaves_other_shards_warm() {
    let dir = scratch_dir("drift");
    let mut config = fast_config(1);
    config.store_root = Some(dir.clone());
    config.invalidation_threshold = partitioning_threshold(&config);
    let drift = DriftModel::new(config.seed).with_step(config.drift_step);

    let mut fleet = Fleet::standard(config.clone()).expect("standard fleet builds");
    let circuit = || generate(BenchmarkKind::Qft, 4, 5);

    // Warm every shard: the submit compiles on all three backends.
    fleet
        .submit(circuit(), CompileOptions::default())
        .expect("warms the fleet");
    let warm = fleet.report();

    // Predict the partition from the pure drift function, then check
    // the epoch agrees.
    let expected: Vec<String> = DeviceProfile::standard_fleet()
        .iter()
        .filter(|p| {
            let dev =
                (drift.lambda_at(p.lambda_mean, &p.name, 1) - p.lambda_mean).abs() / p.lambda_mean;
            dev > config.invalidation_threshold
        })
        .map(|p| p.name.clone())
        .collect();
    assert!(
        !expected.is_empty(),
        "seed must drift someone past threshold"
    );
    assert!(expected.len() < 3, "seed must leave someone calibrated");

    let epoch = fleet.advance_epoch().expect("epoch advances");
    let invalidated: Vec<String> = epoch
        .invalidations
        .iter()
        .map(|i| i.device.clone())
        .collect();
    assert_eq!(
        invalidated, expected,
        "exactly the drifted devices recalibrate"
    );

    // Recompile the same circuit on every device it fits; the stale
    // compiled artifact must never be served on an invalidated device.
    for profile in DeviceProfile::standard_fleet() {
        if profile.topology().qubit_count() < 4 {
            continue;
        }
        let session = fleet.session(&profile.name).expect("registered");
        let response = session
            .compile(&CompileRequest::new(circuit()))
            .expect("compiles");
        if invalidated.contains(&profile.name) {
            assert_eq!(
                response.disk,
                DiskStatus::Miss,
                "{}: a post-drift compile reused a stale disk artifact",
                profile.name
            );
        } else {
            assert_eq!(
                response.disk,
                DiskStatus::Hit,
                "{}: an undrifted device lost its warm artifact",
                profile.name
            );
        }
    }

    // Invalidated devices re-characterized from scratch (one fresh
    // calibration run on the new cache, zero disk hits for it); warm
    // devices never re-ran calibration.
    let after = fleet.report();
    for (w, a) in warm.devices.iter().zip(&after.devices) {
        assert_eq!(w.device, a.device);
        if invalidated.contains(&a.device) {
            assert_eq!(a.invalidations, 1, "{}", a.device);
            assert_eq!(
                a.calibration_runs, 1,
                "{}: the fresh cache must measure, not load stale residuals",
                a.device
            );
            assert_eq!(a.calibrated_epoch, 1, "{}", a.device);
        } else {
            assert_eq!(a.invalidations, 0, "{}", a.device);
            assert_eq!(
                a.calibration_runs, w.calibration_runs,
                "{}: no recalibration without drift",
                a.device
            );
            assert_eq!(a.calibrated_epoch, 0, "{}", a.device);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaging_one_shard_leaves_the_others_fully_warm() {
    let dir = scratch_dir("shards");
    let mut config = fast_config(1);
    config.store_root = Some(dir.clone());

    // Warm every device's shard, then tear the fleet down.
    {
        let mut fleet = Fleet::standard(config.clone()).expect("builds");
        fleet
            .submit(
                generate(BenchmarkKind::Qft, 4, 5),
                CompileOptions::default(),
            )
            .expect("warms the fleet");
        let report = fleet.report();
        for device in &report.devices {
            let stats = device.store.expect("store configured");
            assert!(stats.writes > 0, "{}: shard never written", device.device);
        }
    }

    // Destroy the paper-grid shard only.
    std::fs::remove_dir_all(dir.join("paper-grid")).expect("shard dir exists");

    // A fresh fleet over the same root: the damaged device recompiles
    // from scratch, every other device is served from its warm shard.
    let fleet = Fleet::standard(config).expect("builds");
    for profile in DeviceProfile::standard_fleet() {
        let session = fleet.session(&profile.name).expect("registered");
        let response = session
            .compile(&CompileRequest::new(generate(BenchmarkKind::Qft, 4, 5)))
            .expect("compiles");
        if profile.name == "paper-grid" {
            assert_eq!(response.disk, DiskStatus::Miss, "damaged shard must miss");
        } else {
            assert_eq!(
                response.disk,
                DiskStatus::Hit,
                "{}: another device's damage evicted this warm shard",
                profile.name
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_metrics_track_dispatch_and_invalidation() {
    let mut fleet = Fleet::standard(fast_config(1)).expect("builds");
    fleet
        .submit(
            generate(BenchmarkKind::Qft, 4, 5),
            CompileOptions::default(),
        )
        .expect("dispatches");
    let mut config = fast_config(1);
    config.invalidation_threshold = 0.0; // any drift recalibrates
    let mut drifty = Fleet::standard(config).expect("builds");
    drifty.advance_epoch().expect("advances");

    let snap = fleet.registry().snapshot();
    assert_eq!(snap.counter("fleet.dispatch"), Some(1));
    let winner = fleet
        .report()
        .devices
        .iter()
        .any(|d| snap.counter(&format!("fleet.device.{}.jobs", d.device)) == Some(1));
    assert!(winner, "the winning device's job counter ticked");

    let snap = drifty.registry().snapshot();
    assert_eq!(snap.counter("fleet.drift.invalidations"), Some(3));
    assert_eq!(snap.gauge("fleet.epoch"), Some(1));
}
