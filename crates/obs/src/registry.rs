//! The metrics registry: named counters, gauges and log-scale
//! histograms behind one sharded name table.
//!
//! Registration (name → metric) takes a per-shard lock once; after that,
//! every update is a handful of relaxed atomic operations on an
//! [`Arc`]-shared metric — the fast path never locks, so instrumented
//! hot paths (per-frame counters, per-request latency observations) cost
//! nanoseconds, not contention. [`Registry::snapshot`] walks every shard
//! and returns a [`MetricsSnapshot`] sorted by metric name, so two
//! snapshots of the same quiescent registry are byte-identical however
//! many threads wrote to it.
//!
//! Naming convention (`layer.subject.unit`, lowercase, dot-separated):
//! `pipeline.route.wall_us`, `session.queue.depth`, `net.malformed`.
//! The Prometheus exposition ([`MetricsSnapshot::render_prometheus`])
//! prefixes `zz_` and rewrites the separators to underscores.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use zz_persist::{fnv1a, Decode, DecodeError, Decoder, Encode, Encoder};

/// Number of power-of-two histogram buckets: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 65 buckets cover the
/// whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A metric that can go up and down (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale (power-of-two) histogram over `u64` samples.
///
/// Observations land in the bucket whose range covers them (`bucket 0` =
/// the value 0, `bucket i` = `[2^(i-1), 2^i)`), so percentile estimates
/// carry at most one octave of quantization error:
/// `exact ≤ estimate < 2 · max(exact, 1)` (pinned by the crate's
/// exact-reference test). The sum and count are tracked exactly, so
/// [`HistogramSnapshot::mean`] has no bucket error at all.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index covering `v`.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A duration in microseconds, saturating at `u64::MAX` instead of
/// silently truncating the `u128` — the one conversion every duration
/// metric and wire field in the workspace goes through.
pub fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The largest value of bucket `i` (its inclusive upper bound) — what
/// [`HistogramSnapshot::percentile`] reports for a rank landing in `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating — a 584-millennium
    /// wait records as `u64::MAX` µs rather than wrapping).
    pub fn observe_micros(&self, d: Duration) {
        self.observe(saturating_micros(d));
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// One registered metric (the shard table's value type).
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

const SHARDS: usize = 16;

/// The sharded name → metric table. See the [crate docs](crate) for the
/// locking model and naming convention.
#[derive(Debug)]
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        &self.shards[(fnv1a(name.as_bytes()) as usize) % SHARDS]
    }

    /// The counter named `name`, registering it on first use. Hold the
    /// returned handle on hot paths — updates through it never touch the
    /// registry lock.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type
    /// (a programming error, like two subsystems fighting over one name).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().unwrap_or_else(|e| e.into_inner());
        let metric = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().unwrap_or_else(|e| e.into_inner());
        let metric = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock().unwrap_or_else(|e| e.into_inner());
        let metric = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// A consistent, name-sorted snapshot of every registered metric.
    /// Concurrent writers may land between two metric reads (each metric
    /// is read atomically; the set is not a global transaction), but the
    /// snapshot's *structure* is deterministic: same registered names in
    /// the same order, whatever the thread interleaving was.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => {
                        let buckets: Vec<(u64, u64)> = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n > 0).then_some((i as u64, n))
                            })
                            .collect();
                        histograms.push(HistogramSnapshot {
                            name: name.clone(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            buckets,
                        });
                    }
                }
            }
        }
        counters.sort();
        gauges.sort();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of one histogram: exact count and sum plus the
/// sparse non-empty bucket list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The histogram's registered name.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// `(bucket index, sample count)` for every non-empty bucket, in
    /// ascending index order. Indices are < [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Exact mean of the samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Nearest-rank percentile estimate: the upper bound of the bucket
    /// holding the `⌈p/100 · count⌉`-th smallest sample. Because buckets
    /// are power-of-two wide, `exact ≤ estimate < 2 · max(exact, 1)`.
    /// Returns `None` for an empty histogram or `p` outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) || p <= 0.0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(index as usize));
            }
        }
        // Counts and buckets are read without a global lock, so a racing
        // writer can leave `count` ahead of the bucket sum; clamp to the
        // top non-empty bucket.
        self.buckets
            .last()
            .map(|&(index, _)| bucket_upper_bound(index as usize))
    }
}

impl Encode for HistogramSnapshot {
    fn encode(&self, out: &mut Encoder) {
        out.str(&self.name);
        out.u64(self.count);
        out.u64(self.sum);
        self.buckets.encode(out);
    }
}

impl Decode for HistogramSnapshot {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = r.str()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let buckets: Vec<(u64, u64)> = Decode::decode(r)?;
        let mut previous = None;
        for &(index, n) in &buckets {
            if index >= HISTOGRAM_BUCKETS as u64 {
                return Err(DecodeError::Invalid("histogram bucket index"));
            }
            if previous.is_some_and(|p| index <= p) {
                return Err(DecodeError::Invalid("histogram bucket order"));
            }
            if n == 0 {
                return Err(DecodeError::Invalid("empty histogram bucket"));
            }
            previous = Some(index);
        }
        Ok(HistogramSnapshot {
            name,
            count,
            sum,
            buckets,
        })
    }
}

/// A consistent, name-sorted copy of a whole [`Registry`] — the value
/// the `Stats` wire endpoint ships and the codec persists.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Whether no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another snapshot into this one, keeping every series sorted
    /// by name so the binary-search accessors stay valid. On a name
    /// collision this snapshot's entry wins and `other`'s is dropped —
    /// the intended use is layering disjoint registries (a session's
    /// metrics plus a fleet's) into one wire response, where collisions
    /// only arise if two layers misuse one name.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        fn merge_sorted<T: Clone>(ours: &mut Vec<(String, T)>, theirs: &[(String, T)]) {
            for (name, value) in theirs {
                if let Err(at) = ours.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    ours.insert(at, (name.clone(), value.clone()));
                }
            }
        }
        merge_sorted(&mut self.counters, &other.counters);
        merge_sorted(&mut self.gauges, &other.gauges);
        for hist in &other.histograms {
            if let Err(at) = self
                .histograms
                .binary_search_by(|h| h.name.as_str().cmp(&hist.name))
            {
                self.histograms.insert(at, hist.clone());
            }
        }
    }

    /// Prometheus-style text exposition: `# TYPE` lines, `zz_`-prefixed
    /// underscore names, histograms as cumulative `_bucket{le="…"}`
    /// series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for hist in &self.histograms {
            let name = prometheus_name(&hist.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(index, n) in &hist.buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(index as usize)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }
}

/// Rewrites a dotted metric name to the Prometheus charset with the
/// workspace prefix: `session.queue.wait_us` → `zz_session_queue_wait_us`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("zz_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl Encode for MetricsSnapshot {
    fn encode(&self, out: &mut Encoder) {
        self.counters.encode(out);
        out.usize(self.gauges.len());
        for (name, value) in &self.gauges {
            out.str(name);
            out.u64(*value as u64); // exact bit pattern; sign restored on decode
        }
        self.histograms.encode(out);
    }
}

impl Decode for MetricsSnapshot {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let counters: Vec<(String, u64)> = Decode::decode(r)?;
        let len = r.seq_len(9)?;
        let mut gauges = Vec::with_capacity(len);
        for _ in 0..len {
            let name = r.str()?;
            gauges.push((name, r.u64()? as i64));
        }
        let histograms: Vec<HistogramSnapshot> = Decode::decode(r)?;
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn counters_gauges_and_histograms_register_once() {
        let registry = Registry::new();
        let a = registry.counter("x.hits");
        let b = registry.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x.hits").get(), 3);

        let g = registry.gauge("x.depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(registry.gauge("x.depth").get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);

        let h = registry.histogram("x.wall_us");
        h.observe(3);
        assert_eq!(registry.histogram("x.wall_us").count(), 1);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn type_confusion_panics_with_the_name() {
        let registry = Registry::new();
        registry.counter("same.name");
        registry.gauge("same.name");
    }

    #[test]
    fn snapshot_lookup_matches_linear_scan() {
        let registry = Registry::new();
        for name in ["b.two", "a.one", "c.three"] {
            registry.counter(name).add(name.len() as u64);
        }
        registry.gauge("z.depth").set(7);
        registry.histogram("m.wall").observe(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.one"), Some(5));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("z.depth"), Some(7));
        assert_eq!(snap.histogram("m.wall").unwrap().count, 1);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two", "c.three"], "sorted by name");
    }

    #[test]
    fn merge_from_layers_disjoint_registries() {
        let base = Registry::new();
        base.counter("session.jobs").add(4);
        base.gauge("session.depth").set(2);
        let extra = Registry::new();
        extra.counter("fleet.dispatch").add(9);
        extra.counter("session.jobs").add(100); // collision: base wins
        extra.histogram("fleet.score").observe(7);

        let mut snap = base.snapshot();
        snap.merge_from(&extra.snapshot());
        assert_eq!(snap.counter("fleet.dispatch"), Some(9));
        assert_eq!(snap.counter("session.jobs"), Some(4));
        assert_eq!(snap.gauge("session.depth"), Some(2));
        assert_eq!(snap.histogram("fleet.score").unwrap().count, 1);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["fleet.dispatch", "session.jobs"], "still sorted");
    }

    #[test]
    fn negative_gauges_round_trip_through_the_codec() {
        let registry = Registry::new();
        registry.gauge("g.neg").set(i64::MIN);
        registry.gauge("g.pos").set(i64::MAX);
        let snap = registry.snapshot();
        let back = zz_persist::roundtrip(&snap).expect("round trips");
        assert_eq!(back, snap);
    }

    #[test]
    fn decode_rejects_malformed_bucket_lists() {
        let mut hist = HistogramSnapshot {
            name: "h".into(),
            count: 2,
            sum: 3,
            buckets: vec![(1, 1), (1, 1)], // duplicate index
        };
        let mut enc = Encoder::new();
        hist.encode(&mut enc);
        let bytes = enc.finish();
        assert!(HistogramSnapshot::decode(&mut Decoder::new(&bytes)).is_err());

        hist.buckets = vec![(HISTOGRAM_BUCKETS as u64, 1)]; // out of range
        let mut enc = Encoder::new();
        hist.encode(&mut enc);
        let bytes = enc.finish();
        assert!(HistogramSnapshot::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let registry = Registry::new();
        registry.counter("net.frames").add(9);
        let h = registry.histogram("session.queue.wait_us");
        h.observe(1);
        h.observe(1);
        h.observe(100);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# TYPE zz_net_frames counter"), "{text}");
        assert!(text.contains("zz_net_frames 9"), "{text}");
        assert!(
            text.contains("zz_session_queue_wait_us_bucket{le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("zz_session_queue_wait_us_bucket{le=\"127\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("zz_session_queue_wait_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("zz_session_queue_wait_us_count 3"), "{text}");
        assert!(text.contains("zz_session_queue_wait_us_sum 102"), "{text}");
    }
}
