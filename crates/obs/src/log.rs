//! The structured event log: newline-delimited JSON records gated by
//! `ZZ_LOG`, written to stderr or `ZZ_LOG_FILE`.
//!
//! Every record is one JSON object per line (`{"event":"compile.done",
//! "request_id":"req-00000001","wall_us":812}`), so standard line tools
//! consume it without a parser. Two verbosity tiers:
//!
//! * `ZZ_LOG=summary` — only events flagged with [`Event::summary`]
//!   (request completions, lifecycle milestones).
//! * `ZZ_LOG=json` — every event, including per-stage detail.
//! * `ZZ_LOG=off` (or unset) — nothing; emission is a single relaxed
//!   enum compare, so dormant instrumentation is free.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::sync::Mutex;

use crate::id::RequestId;

/// Environment variable selecting the log level (`off|summary|json`).
pub const LOG_ENV: &str = "ZZ_LOG";

/// Environment variable redirecting the log from stderr to a file
/// (appended, created if missing).
pub const LOG_FILE_ENV: &str = "ZZ_LOG_FILE";

/// How much the event log emits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing (the default).
    #[default]
    Off,
    /// Only events flagged as summaries.
    Summary,
    /// Every event.
    Json,
}

impl LogLevel {
    /// Parses a `ZZ_LOG` value (case-insensitive). Unknown strings parse
    /// as `None` so a typo surfaces as "no logs" plus this `None` rather
    /// than a panic at process start.
    ///
    /// ```
    /// use zz_obs::LogLevel;
    /// assert_eq!(LogLevel::parse("json"), Some(LogLevel::Json));
    /// assert_eq!(LogLevel::parse("SUMMARY"), Some(LogLevel::Summary));
    /// assert_eq!(LogLevel::parse("verbose"), None);
    /// ```
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "" => Some(LogLevel::Off),
            "summary" => Some(LogLevel::Summary),
            "json" => Some(LogLevel::Json),
            _ => None,
        }
    }

    /// Reads [`LOG_ENV`], defaulting to [`LogLevel::Off`] when unset or
    /// unparseable.
    pub fn from_env() -> LogLevel {
        std::env::var(LOG_ENV)
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Off)
    }
}

/// One typed field value of an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, microseconds).
    U64(u64),
    /// A signed integer (gauge readings).
    I64(i64),
    /// A float (fidelities, ratios).
    F64(f64),
    /// A string (labels, stage names).
    Str(String),
    /// A boolean (cache hits).
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured log record, built fluently and rendered as a single
/// JSON line.
///
/// ```
/// use zz_obs::{Event, RequestId};
/// let line = Event::summary("compile.done")
///     .request(RequestId::from_raw(7))
///     .field("label", "ghz-4")
///     .field("wall_us", 812u64)
///     .to_json();
/// assert_eq!(
///     line,
///     r#"{"event":"compile.done","request_id":"req-00000007","label":"ghz-4","wall_us":812}"#
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    name: &'static str,
    request_id: Option<RequestId>,
    is_summary: bool,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// A detail-level event (emitted only under `ZZ_LOG=json`).
    pub fn new(name: &'static str) -> Event {
        Event {
            name,
            request_id: None,
            is_summary: false,
            fields: Vec::new(),
        }
    }

    /// A summary-level event (emitted under `summary` and `json`).
    pub fn summary(name: &'static str) -> Event {
        Event {
            is_summary: true,
            ..Event::new(name)
        }
    }

    /// Attaches the request this event belongs to.
    pub fn request(mut self, id: RequestId) -> Event {
        self.request_id = Some(id);
        self
    }

    /// Appends one key/value field (keys render in insertion order).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Renders the record as one JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"event\":");
        json_string(&mut out, self.name);
        if let Some(id) = self.request_id {
            let _ = write!(out, ",\"request_id\":\"{id}\"");
        }
        for (key, value) in &self.fields {
            out.push(',');
            json_string(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                // JSON has no NaN/Infinity literals; stringify them.
                FieldValue::F64(v) => {
                    let _ = write!(out, "\"{v}\"");
                }
                FieldValue::Str(v) => json_string(&mut out, v),
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug)]
enum Sink {
    Stderr,
    File(Mutex<File>),
    Capture(Mutex<Vec<String>>),
}

/// The emission gate: filters [`Event`]s by [`LogLevel`] and writes the
/// survivors as NDJSON to stderr, a file, or (in tests) a capture buffer.
///
/// Cheap when off: `emit` on a [`LogLevel::Off`] log is one enum compare
/// and never renders the event.
#[derive(Debug)]
pub struct EventLog {
    level: LogLevel,
    sink: Sink,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::disabled()
    }
}

impl EventLog {
    /// A log that emits nothing.
    pub fn disabled() -> EventLog {
        EventLog {
            level: LogLevel::Off,
            sink: Sink::Stderr,
        }
    }

    /// A log configured from the process environment: level from
    /// [`LOG_ENV`], destination from [`LOG_FILE_ENV`] (appending; falls
    /// back to stderr if the file cannot be opened).
    pub fn from_env() -> EventLog {
        let level = LogLevel::from_env();
        let sink = match std::env::var(LOG_FILE_ENV) {
            Ok(path) if level != LogLevel::Off => File::options()
                .create(true)
                .append(true)
                .open(path)
                .map(|f| Sink::File(Mutex::new(f)))
                .unwrap_or(Sink::Stderr),
            _ => Sink::Stderr,
        };
        EventLog { level, sink }
    }

    /// A log that collects rendered lines in memory — the test sink
    /// (read back with [`captured`](Self::captured)).
    pub fn capture(level: LogLevel) -> EventLog {
        EventLog {
            level,
            sink: Sink::Capture(Mutex::new(Vec::new())),
        }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether `event` would be emitted at the configured level.
    pub fn would_emit(&self, event: &Event) -> bool {
        match self.level {
            LogLevel::Off => false,
            LogLevel::Summary => event.is_summary,
            LogLevel::Json => true,
        }
    }

    /// Writes `event` as one NDJSON line if the level admits it.
    /// Write failures are swallowed — observability must never take the
    /// service down.
    pub fn emit(&self, event: &Event) {
        if !self.would_emit(event) {
            return;
        }
        let line = event.to_json();
        match &self.sink {
            Sink::Stderr => eprintln!("{line}"),
            Sink::File(file) => {
                let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
                let _ = writeln!(file, "{line}");
            }
            Sink::Capture(lines) => {
                lines.lock().unwrap_or_else(|e| e.into_inner()).push(line);
            }
        }
    }

    /// The lines collected by a [`capture`](Self::capture) sink (empty
    /// for the other sinks).
    pub fn captured(&self) -> Vec<String> {
        match &self.sink {
            Sink::Capture(lines) => lines.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filtering_matches_the_tier_table() {
        let detail = Event::new("pipeline.stage");
        let rollup = Event::summary("compile.done");
        for (level, wants_detail, wants_rollup) in [
            (LogLevel::Off, false, false),
            (LogLevel::Summary, false, true),
            (LogLevel::Json, true, true),
        ] {
            let log = EventLog::capture(level);
            log.emit(&detail);
            log.emit(&rollup);
            assert_eq!(log.would_emit(&detail), wants_detail, "{level:?}");
            assert_eq!(log.would_emit(&rollup), wants_rollup, "{level:?}");
            assert_eq!(
                log.captured().len(),
                usize::from(wants_detail) + usize::from(wants_rollup),
                "{level:?}"
            );
        }
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let line = Event::new("x").field("label", "a\"b\\c\nd\u{1}").to_json();
        assert_eq!(line, r#"{"event":"x","label":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn non_finite_floats_render_as_strings() {
        let line = Event::new("x").field("f", f64::NAN).to_json();
        assert_eq!(line, r#"{"event":"x","f":"NaN"}"#);
        let line = Event::new("x").field("f", f64::INFINITY).to_json();
        assert_eq!(line, r#"{"event":"x","f":"inf"}"#);
    }

    #[test]
    fn parse_rejects_unknown_levels() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse(" Json "), Some(LogLevel::Json));
        assert_eq!(LogLevel::parse("debug"), None);
    }
}
