//! Request identity: the id the service mints per submission and carries
//! through `CompileResponse`, the event log and the wire envelopes, so a
//! client-side trace joins the server-side one.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use zz_persist::{Decode, DecodeError, Decoder, Encode, Encoder};

/// Identity of one service submission.
///
/// Ids are unique within a service process (minted from one [`IdSource`]),
/// never zero, and displayed as `req-<hex>`. Coalesced duplicate
/// submissions share their leader's id — the id names the *execution*,
/// not the socket that asked for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// Rebuilds an id from its wire value.
    pub fn from_raw(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The wire value (what the envelopes carry).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{:08x}", self.0)
    }
}

impl Encode for RequestId {
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.0);
    }
}

impl Decode for RequestId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RequestId(r.u64()?))
    }
}

/// Mints [`RequestId`]s: an atomic counter starting at 1 (so an id is
/// never zero and an all-zero wire field is visibly "unassigned").
///
/// ```
/// let ids = zz_obs::IdSource::new();
/// let a = ids.next_id();
/// let b = ids.next_id();
/// assert_ne!(a, b);
/// assert_eq!(a.to_string(), "req-00000001");
/// ```
#[derive(Debug, Default)]
pub struct IdSource {
    next: AtomicU64,
}

impl IdSource {
    /// A source whose first id is `req-00000001`.
    pub fn new() -> Self {
        IdSource::default()
    }

    /// Mints the next id.
    pub fn next_id(&self) -> RequestId {
        RequestId(self.next.fetch_add(1, Ordering::Relaxed) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_nonzero_and_roundtrip() {
        let source = IdSource::new();
        let first = source.next_id();
        assert_eq!(first.as_u64(), 1);
        assert_eq!(source.next_id().as_u64(), 2);
        assert_eq!(RequestId::from_raw(first.as_u64()), first);
        assert_eq!(zz_persist::roundtrip(&first).unwrap(), first);
    }
}
