//! `zz_obs` — unified observability for the compile-service stack:
//! a sharded metrics registry, a structured event log and per-request
//! identity, with zero external dependencies.
//!
//! Three pieces, designed to be threaded through every layer (pipeline,
//! session, TCP server) without coupling them to each other:
//!
//! * **[`Registry`]** — named [`Counter`]s, [`Gauge`]s and log-scale
//!   [`Histogram`]s behind a sharded name table. Registration locks one
//!   shard once; updates through the returned [`Arc`](std::sync::Arc)
//!   handles are plain atomic ops, so hot paths pay nanoseconds.
//!   [`Registry::snapshot`] produces a name-sorted [`MetricsSnapshot`]
//!   that round-trips through the `zz_persist` codec (so it can travel
//!   as a wire artifact — the `Stats` endpoint) and renders as
//!   Prometheus-style text exposition.
//! * **[`EventLog`]** — `ZZ_LOG=off|summary|json` gated NDJSON records
//!   ([`Event`]) on stderr or `ZZ_LOG_FILE`, one JSON object per line.
//! * **[`RequestId`] / [`IdSource`]** — the identity the service mints
//!   per submission and carries through responses, events and wire
//!   envelopes, so a client-side trace joins the server-side one.
//!
//! ```
//! use zz_obs::Registry;
//!
//! let registry = Registry::new();
//! let frames = registry.counter("net.frames");
//! let wait = registry.histogram("session.queue.wait_us");
//! frames.inc();
//! wait.observe(250);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("net.frames"), Some(1));
//! assert_eq!(snap.histogram("session.queue.wait_us").unwrap().count, 1);
//!
//! // The snapshot is a codec artifact and a Prometheus page.
//! let again = zz_persist::roundtrip(&snap).unwrap();
//! assert_eq!(again, snap);
//! assert!(snap.render_prometheus().contains("zz_net_frames 1"));
//! ```

#![warn(missing_docs)]

mod id;
mod log;
mod registry;

pub use id::{IdSource, RequestId};
pub use log::{Event, EventLog, FieldValue, LogLevel, LOG_ENV, LOG_FILE_ENV};
pub use registry::{
    bucket_index, bucket_upper_bound, saturating_micros, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
