//! Multi-level (Duffing) transmon operators for leakage studies.
//!
//! Superconducting qubits are weakly anharmonic oscillators; truncating them
//! to two levels hides *leakage* into `|2⟩` and above. The paper's Figure 18
//! evaluates ZZ-suppressing pulses on a five-level transmon with typical
//! anharmonicities (−200 … −400 MHz) and the DRAG correction. This module
//! provides the operators for that model, in the frame rotating at the qubit
//! frequency:
//!
//! `H = (α/2)·n(n−1) + Ωx(t)·(a + a†) + Ωy(t)·i(a† − a) + λ Z̃⊗σz`
//!
//! where `Z̃ = 1 − 2n = diag(1, −1, −3, …)` generalizes σz linearly in the
//! excitation number (a dispersive-ladder model of the crosstalk shift; the
//! computational block reproduces the two-level `σz⊗σz` exactly).

use zz_linalg::{c64, Matrix};

/// Annihilation operator `a` on a `d`-level system.
///
/// ```
/// use zz_quantum::transmon::annihilation;
/// let a = annihilation(3);
/// assert!((a[(0, 1)].re - 1.0).abs() < 1e-15);
/// assert!((a[(1, 2)].re - 2f64.sqrt()).abs() < 1e-15);
/// ```
pub fn annihilation(d: usize) -> Matrix {
    let mut m = Matrix::zeros(d, d);
    for n in 1..d {
        m[(n - 1, n)] = c64::real((n as f64).sqrt());
    }
    m
}

/// Number operator `n = a†a`.
pub fn number(d: usize) -> Matrix {
    Matrix::diag(&(0..d).map(|n| c64::real(n as f64)).collect::<Vec<_>>())
}

/// Duffing anharmonicity term `(α/2)·n(n−1)` (diagonal, rad/ns when `alpha`
/// is in rad/ns).
pub fn anharmonicity_term(d: usize, alpha: f64) -> Matrix {
    Matrix::diag(
        &(0..d)
            .map(|n| c64::real(alpha / 2.0 * (n as f64) * (n as f64 - 1.0)))
            .collect::<Vec<_>>(),
    )
}

/// In-phase drive operator `a + a†` (reduces to σx on two levels).
pub fn drive_x(d: usize) -> Matrix {
    let a = annihilation(d);
    &a + &a.dagger()
}

/// Quadrature drive operator `i(a† − a)` (reduces to σy on two levels).
pub fn drive_y(d: usize) -> Matrix {
    let a = annihilation(d);
    (&a.dagger() - &a).scale(c64::I)
}

/// Generalized Pauli-Z ladder `Z̃ = 1 − 2n = diag(1, −1, −3, …)`.
pub fn z_ladder(d: usize) -> Matrix {
    Matrix::diag(
        &(0..d)
            .map(|n| c64::real(1.0 - 2.0 * n as f64))
            .collect::<Vec<_>>(),
    )
}

/// Extracts the computational block of an operator on a tensor product of
/// qudits: rows/columns where every subsystem is in level 0 or 1.
///
/// `dims[i]` is the dimension of subsystem `i` (subsystem 0 is the leftmost
/// tensor factor). The result is `2^k × 2^k` with the workspace bit order.
///
/// # Panics
///
/// Panics if `m`'s dimension does not equal the product of `dims`, or if any
/// subsystem has dimension < 2.
///
/// # Example
///
/// ```
/// use zz_quantum::transmon::{computational_block, z_ladder};
/// use zz_quantum::pauli::Pauli;
///
/// // The 5-level Z̃ restricted to levels {0,1} is exactly σz.
/// let block = computational_block(&z_ladder(5), &[5]);
/// assert!(block.approx_eq(&Pauli::Z.matrix(), 1e-15));
/// ```
pub fn computational_block(m: &Matrix, dims: &[usize]) -> Matrix {
    let total: usize = dims.iter().product();
    assert_eq!(
        m.rows(),
        total,
        "matrix dimension must match product of dims"
    );
    assert!(m.is_square(), "matrix must be square");
    assert!(
        dims.iter().all(|&d| d >= 2),
        "every subsystem needs ≥ 2 levels"
    );

    let k = dims.len();
    // Map a computational index (k bits, subsystem 0 most significant) to the
    // full product-space index.
    let to_full = |comp: usize| -> usize {
        let mut full = 0usize;
        for (i, &d) in dims.iter().enumerate() {
            let bit = (comp >> (k - 1 - i)) & 1;
            full = full * d + bit;
        }
        full
    };

    let dim = 1usize << k;
    Matrix::from_fn(dim, dim, |r, c| m[(to_full(r), to_full(c))])
}

/// Leakage population of a state on a `d`-level system ⊗ (2-level spectator):
/// the total probability outside the computational block.
///
/// # Panics
///
/// Panics if `state.len() != d * 2`.
pub fn leakage_probability(state: &zz_linalg::Vector, d: usize) -> f64 {
    assert_eq!(state.len(), d * 2, "state must live on d-level ⊗ 2-level");
    let mut leaked = 0.0;
    for (idx, amp) in state.as_slice().iter().enumerate() {
        let level = idx / 2; // transmon level (spectator is least significant)
        if level >= 2 {
            leaked += amp.abs_sq();
        }
    }
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::Pauli;

    #[test]
    fn commutator_of_a_and_adagger() {
        // [a, a†] = 1 on the truncated space except the top level.
        let d = 5;
        let a = annihilation(d);
        let comm = &a.matmul(&a.dagger()) - &a.dagger().matmul(&a);
        for n in 0..d - 1 {
            assert!((comm[(n, n)].re - 1.0).abs() < 1e-14);
        }
        assert!((comm[(d - 1, d - 1)].re - (1.0 - d as f64)).abs() < 1e-12);
    }

    #[test]
    fn number_operator_from_ladder() {
        let d = 4;
        let a = annihilation(d);
        assert!(a.dagger().matmul(&a).approx_eq(&number(d), 1e-14));
    }

    #[test]
    fn two_level_truncation_recovers_paulis() {
        assert!(computational_block(&drive_x(5), &[5]).approx_eq(&Pauli::X.matrix(), 1e-15));
        assert!(computational_block(&drive_y(5), &[5]).approx_eq(&Pauli::Y.matrix(), 1e-15));
        assert!(computational_block(&z_ladder(5), &[5]).approx_eq(&Pauli::Z.matrix(), 1e-15));
    }

    #[test]
    fn anharmonicity_vanishes_on_computational_block() {
        let h = anharmonicity_term(5, -1.0);
        let block = computational_block(&h, &[5]);
        assert!(block.approx_eq(&Matrix::zeros(2, 2), 1e-15));
    }

    #[test]
    fn computational_block_of_product_operator() {
        // (Z̃ ⊗ σz) restricted = σz ⊗ σz.
        let full = z_ladder(5).kron(&Pauli::Z.matrix());
        let block = computational_block(&full, &[5, 2]);
        let zz = Pauli::Z.matrix().kron(&Pauli::Z.matrix());
        assert!(block.approx_eq(&zz, 1e-15));
    }

    #[test]
    fn leakage_probability_counts_high_levels() {
        let mut amps = vec![c64::ZERO; 10]; // 5-level ⊗ 2-level
        amps[0] = c64::real(0.6); // |0⟩|0⟩
        amps[4] = c64::real(0.8); // |2⟩|0⟩ → leaked
        let state = zz_linalg::Vector::from_vec(amps);
        assert!((leakage_probability(&state, 5) - 0.64).abs() < 1e-15);
    }
}
