//! Standard and IBMQ-native quantum gate matrices.
//!
//! The native set used throughout the paper (and this reproduction) is
//! `{Rz(θ) (virtual), X90 = Rx(π/2), ZX90 = Rzx(π/2), I = Rx(2π)}`, matching
//! IBMQ backends. Two-qubit gate matrices follow the workspace convention
//! that qubit 0 (the first argument / control) is the most significant bit.

use zz_linalg::{c64, Matrix};

use crate::pauli::Pauli;

/// The single-qubit identity.
pub fn id() -> Matrix {
    Matrix::identity(2)
}

/// Pauli X.
pub fn x() -> Matrix {
    Pauli::X.matrix()
}

/// Pauli Y.
pub fn y() -> Matrix {
    Pauli::Y.matrix()
}

/// Pauli Z.
pub fn z() -> Matrix {
    Pauli::Z.matrix()
}

/// Hadamard.
pub fn h() -> Matrix {
    let s = c64::real(std::f64::consts::FRAC_1_SQRT_2);
    Matrix::from_rows(&[&[s, s], &[s, -s]])
}

/// Phase gate `S = diag(1, i)`.
pub fn s() -> Matrix {
    Matrix::diag(&[c64::ONE, c64::I])
}

/// Inverse phase gate `S† = diag(1, −i)`.
pub fn sdg() -> Matrix {
    Matrix::diag(&[c64::ONE, -c64::I])
}

/// T gate `diag(1, e^{iπ/4})`.
pub fn t() -> Matrix {
    Matrix::diag(&[c64::ONE, c64::cis(std::f64::consts::FRAC_PI_4)])
}

/// Inverse T gate.
pub fn tdg() -> Matrix {
    Matrix::diag(&[c64::ONE, c64::cis(-std::f64::consts::FRAC_PI_4)])
}

/// Rotation about X: `Rx(θ) = exp(−i θ/2 X)`.
pub fn rx(theta: f64) -> Matrix {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_rows(&[
        &[c64::real(c), c64::new(0.0, -s)],
        &[c64::new(0.0, -s), c64::real(c)],
    ])
}

/// Rotation about Y: `Ry(θ) = exp(−i θ/2 Y)`.
pub fn ry(theta: f64) -> Matrix {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_rows(&[
        &[c64::real(c), c64::real(-s)],
        &[c64::real(s), c64::real(c)],
    ])
}

/// Rotation about Z: `Rz(θ) = exp(−i θ/2 Z)`.
pub fn rz(theta: f64) -> Matrix {
    Matrix::diag(&[c64::cis(-theta / 2.0), c64::cis(theta / 2.0)])
}

/// The native `X90 = Rx(π/2)` pulse gate.
pub fn x90() -> Matrix {
    rx(std::f64::consts::FRAC_PI_2)
}

/// Phase gate `P(θ) = diag(1, e^{iθ})` (equals `Rz(θ)` up to global phase).
pub fn phase(theta: f64) -> Matrix {
    Matrix::diag(&[c64::ONE, c64::cis(theta)])
}

/// General single-qubit gate `U3(θ, φ, λ)` (OpenQASM convention).
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Matrix {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_rows(&[
        &[c64::real(c), -c64::cis(lambda) * s],
        &[c64::cis(phi) * s, c64::cis(phi + lambda) * c],
    ])
}

/// Cross-resonance rotation `Rzx(θ) = exp(−i θ/2 Z⊗X)`; qubit 0 is the
/// control (Z factor), qubit 1 the target (X factor).
pub fn rzx(theta: f64) -> Matrix {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let cos = c64::real(c);
    let isin = c64::new(0.0, -s);
    Matrix::from_rows(&[
        &[cos, isin, c64::ZERO, c64::ZERO],
        &[isin, cos, c64::ZERO, c64::ZERO],
        &[c64::ZERO, c64::ZERO, cos, -isin],
        &[c64::ZERO, c64::ZERO, -isin, cos],
    ])
}

/// The native `ZX90 = Rzx(π/2)` gate.
pub fn zx90() -> Matrix {
    rzx(std::f64::consts::FRAC_PI_2)
}

/// Two-qubit ZZ rotation `Rzz(θ) = exp(−i θ/2 Z⊗Z)`.
pub fn rzz(theta: f64) -> Matrix {
    let p = c64::cis(-theta / 2.0);
    let q = c64::cis(theta / 2.0);
    Matrix::diag(&[p, q, q, p])
}

/// CNOT with qubit 0 as control, qubit 1 as target.
pub fn cnot() -> Matrix {
    Matrix::from_rows(&[
        &[c64::ONE, c64::ZERO, c64::ZERO, c64::ZERO],
        &[c64::ZERO, c64::ONE, c64::ZERO, c64::ZERO],
        &[c64::ZERO, c64::ZERO, c64::ZERO, c64::ONE],
        &[c64::ZERO, c64::ZERO, c64::ONE, c64::ZERO],
    ])
}

/// Controlled-Z (symmetric).
pub fn cz() -> Matrix {
    Matrix::diag(&[c64::ONE, c64::ONE, c64::ONE, -c64::ONE])
}

/// Controlled phase `CP(θ) = diag(1, 1, 1, e^{iθ})` (symmetric).
pub fn cphase(theta: f64) -> Matrix {
    Matrix::diag(&[c64::ONE, c64::ONE, c64::ONE, c64::cis(theta)])
}

/// SWAP.
pub fn swap() -> Matrix {
    Matrix::from_rows(&[
        &[c64::ONE, c64::ZERO, c64::ZERO, c64::ZERO],
        &[c64::ZERO, c64::ZERO, c64::ONE, c64::ZERO],
        &[c64::ZERO, c64::ONE, c64::ZERO, c64::ZERO],
        &[c64::ZERO, c64::ZERO, c64::ZERO, c64::ONE],
    ])
}

/// `√X` (used by Google random circuits).
pub fn sqrt_x() -> Matrix {
    let a = c64::new(0.5, 0.5);
    let b = c64::new(0.5, -0.5);
    Matrix::from_rows(&[&[a, b], &[b, a]])
}

/// `√Y` (used by Google random circuits).
pub fn sqrt_y() -> Matrix {
    let a = c64::new(0.5, 0.5);
    Matrix::from_rows(&[&[a, -a], &[a, a]])
}

/// `√W` where `W = (X+Y)/√2` (used by Google random circuits).
pub fn sqrt_w() -> Matrix {
    let w = {
        let mut m = Pauli::X.matrix();
        m.add_scaled(&Pauli::Y.matrix(), c64::ONE);
        m.scale(c64::real(std::f64::consts::FRAC_1_SQRT_2))
    };
    let u = zz_linalg::expm::expm_neg_i_h_t(&w, std::f64::consts::FRAC_PI_4);
    // Normalize the global phase so the (0,0) entry is 0.5+0.5i like √X/√Y.
    u.scale(c64::new(0.5, 0.5) / u[(0, 0)])
}

/// Returns `true` if `a` and `b` are equal up to a global phase, entry-wise
/// within `tol`.
///
/// ```
/// use zz_quantum::gates::{self, equal_up_to_phase};
/// let minus_x = gates::x().scale(zz_linalg::c64::new(-1.0, 0.0));
/// assert!(equal_up_to_phase(&gates::x(), &minus_x, 1e-12));
/// ```
pub fn equal_up_to_phase(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    // Find the largest entry of a to estimate the relative phase.
    let mut best = (0, 0);
    let mut best_mag = 0.0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let m = a[(i, j)].abs();
            if m > best_mag {
                best_mag = m;
                best = (i, j);
            }
        }
    }
    if best_mag < tol {
        return b.max_norm() < tol;
    }
    let rel = b[best];
    if rel.abs() < tol {
        return false;
    }
    let phase = rel / a[best];
    a.scale(phase).approx_eq(b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::average_gate_fidelity;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn all_gates_are_unitary() {
        for (name, g) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("t", t()),
            ("x90", x90()),
            ("rx", rx(0.7)),
            ("ry", ry(1.3)),
            ("rz", rz(-2.1)),
            ("u3", u3(0.5, 1.0, -0.3)),
            ("rzx", rzx(0.9)),
            ("rzz", rzz(1.1)),
            ("cnot", cnot()),
            ("cz", cz()),
            ("swap", swap()),
            ("sqrt_x", sqrt_x()),
            ("sqrt_y", sqrt_y()),
            ("sqrt_w", sqrt_w()),
        ] {
            assert!(g.is_unitary(1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn h_diagonalizes_x() {
        // H X H = Z
        let hxh = h().matmul(&x()).matmul(&h());
        assert!(hxh.approx_eq(&z(), 1e-15));
    }

    #[test]
    fn two_x90_make_an_x() {
        assert!(equal_up_to_phase(&x90().matmul(&x90()), &x(), 1e-12));
    }

    #[test]
    fn sqrt_gates_square_correctly() {
        assert!(equal_up_to_phase(&sqrt_x().matmul(&sqrt_x()), &x(), 1e-12));
        assert!(equal_up_to_phase(&sqrt_y().matmul(&sqrt_y()), &y(), 1e-12));
        let w = {
            let mut m = x();
            m.add_scaled(&y(), c64::ONE);
            m.scale(c64::real(std::f64::consts::FRAC_1_SQRT_2))
        };
        assert!(equal_up_to_phase(&sqrt_w().matmul(&sqrt_w()), &w, 1e-12));
    }

    #[test]
    fn zxzxz_euler_form_reaches_h() {
        // H = Rz(π/2)·X90·Rz(π/2) up to global phase (standard identity).
        let u = rz(FRAC_PI_2).matmul(&x90()).matmul(&rz(FRAC_PI_2));
        assert!(equal_up_to_phase(&u, &h(), 1e-12), "got {u:?}");
    }

    #[test]
    fn cnot_from_zx90() {
        // CNOT = e^{iπ/4} · (Rz(π/2)⊗Rx(π/2)) · Rzx(−π/2); verify up to phase.
        let pre = rz(FRAC_PI_2).kron(&rx(FRAC_PI_2));
        let u = pre.matmul(&rzx(-FRAC_PI_2));
        assert!(equal_up_to_phase(&u, &cnot(), 1e-12), "got {u:?}");
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(cphase(PI).approx_eq(&cz(), 1e-12));
    }

    #[test]
    fn rzz_matches_pauli_exponential() {
        let zz = crate::pauli::PauliString::zz(2, 0, 1).matrix();
        let direct = zz_linalg::expm::expm_neg_i_h_t(&zz, 0.45);
        assert!(rzz(0.9).approx_eq(&direct, 1e-12));
    }

    #[test]
    fn identity_pulse_is_rx_2pi() {
        // Rx(2π) = −I: identical to I for fidelity purposes.
        let f = average_gate_fidelity(&rx(2.0 * PI), &id());
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_conjugates_operators() {
        // SWAP (A⊗B) SWAP = B⊗A
        let a = rx(0.4);
        let b = rz(1.2);
        let lhs = swap().matmul(&a.kron(&b)).matmul(&swap());
        assert!(lhs.approx_eq(&b.kron(&a), 1e-12));
    }

    #[test]
    fn equal_up_to_phase_rejects_different_gates() {
        assert!(!equal_up_to_phase(&x(), &z(), 1e-12));
    }
}
