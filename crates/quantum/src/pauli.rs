//! Pauli operators and Pauli strings.

use std::fmt;

use zz_linalg::{c64, Matrix};

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// The identity.
    I,
    /// The bit-flip operator σx.
    X,
    /// The operator σy.
    Y,
    /// The phase-flip operator σz.
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this operator.
    ///
    /// ```
    /// use zz_quantum::pauli::Pauli;
    /// assert_eq!(Pauli::Z.matrix()[(1, 1)].re, -1.0);
    /// ```
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => Matrix::from_rows(&[&[c64::ZERO, c64::ONE], &[c64::ONE, c64::ZERO]]),
            Pauli::Y => Matrix::from_rows(&[&[c64::ZERO, -c64::I], &[c64::I, c64::ZERO]]),
            Pauli::Z => Matrix::diag(&[c64::ONE, -c64::ONE]),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A tensor product of single-qubit Pauli operators, e.g. `Z⊗I⊗Z`.
///
/// # Example
///
/// ```
/// use zz_quantum::pauli::{Pauli, PauliString};
///
/// let zz = PauliString::new(vec![Pauli::Z, Pauli::Z]);
/// let m = zz.matrix();
/// assert_eq!(m[(0, 0)].re, 1.0);  // ⟨00|ZZ|00⟩ = +1
/// assert_eq!(m[(1, 1)].re, -1.0); // ⟨01|ZZ|01⟩ = −1
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    factors: Vec<Pauli>,
}

impl PauliString {
    /// Creates a Pauli string from its per-qubit factors (qubit 0 first).
    pub fn new(factors: Vec<Pauli>) -> Self {
        PauliString { factors }
    }

    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            factors: vec![Pauli::I; n],
        }
    }

    /// A string that is `p` on qubit `q` and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        assert!(q < n, "qubit index {q} out of range for {n} qubits");
        let mut s = PauliString::identity(n);
        s.factors[q] = p;
        s
    }

    /// The string `Z_u Z_v` on `n` qubits (the ZZ-crosstalk generator).
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either index is out of range.
    pub fn zz(n: usize, u: usize, v: usize) -> Self {
        assert!(u != v, "zz requires two distinct qubits");
        assert!(u < n && v < n, "qubit index out of range for {n} qubits");
        let mut s = PauliString::identity(n);
        s.factors[u] = Pauli::Z;
        s.factors[v] = Pauli::Z;
        s
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Returns `true` if the string acts on zero qubits.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Per-qubit factors (qubit 0 first).
    pub fn factors(&self) -> &[Pauli] {
        &self.factors
    }

    /// Number of non-identity factors (the *weight* of the string).
    pub fn weight(&self) -> usize {
        self.factors.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// The full `2^n × 2^n` matrix of this string.
    ///
    /// Intended for small `n`; the result has `4^n` entries.
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        for &p in &self.factors {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// The diagonal of the matrix, for strings containing only `I` and `Z`.
    ///
    /// Returns `None` if the string contains `X` or `Y` (not diagonal).
    /// This is the fast path for ZZ-phase evolution: entry `i` is the ±1
    /// eigenvalue of basis state `|i⟩`.
    pub fn diagonal(&self) -> Option<Vec<f64>> {
        if self.factors.iter().any(|&p| p == Pauli::X || p == Pauli::Y) {
            return None;
        }
        let n = self.factors.len();
        let dim = 1usize << n;
        let mut d = vec![1.0; dim];
        for (q, &p) in self.factors.iter().enumerate() {
            if p == Pauli::Z {
                let bit = n - 1 - q;
                for (i, e) in d.iter_mut().enumerate() {
                    if (i >> bit) & 1 == 1 {
                        *e = -*e;
                    }
                }
            }
        }
        Some(d)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.factors {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_matrices_are_involutions() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let m = p.matrix();
            assert!(
                m.matmul(&m).approx_eq(&Matrix::identity(2), 1e-15),
                "{p}² ≠ I"
            );
        }
    }

    #[test]
    fn xy_anticommute() {
        let x = Pauli::X.matrix();
        let y = Pauli::Y.matrix();
        let anti = &x.matmul(&y) + &y.matmul(&x);
        assert!(anti.approx_eq(&Matrix::zeros(2, 2), 1e-15));
    }

    #[test]
    fn zz_diagonal_matches_matrix() {
        let s = PauliString::zz(3, 0, 2);
        let d = s.diagonal().expect("ZZ string is diagonal");
        let m = s.matrix();
        for (i, &di) in d.iter().enumerate() {
            assert_eq!(m[(i, i)].re, di);
        }
    }

    #[test]
    fn diagonal_rejects_x() {
        let s = PauliString::single(2, 0, Pauli::X);
        assert!(s.diagonal().is_none());
    }

    #[test]
    fn weight_counts_non_identity() {
        let s = PauliString::zz(4, 1, 3);
        assert_eq!(s.weight(), 2);
        assert_eq!(PauliString::identity(4).weight(), 0);
    }

    #[test]
    fn display_roundtrip() {
        let s = PauliString::new(vec![Pauli::Z, Pauli::I, Pauli::X]);
        assert_eq!(s.to_string(), "ZIX");
    }

    #[test]
    fn single_places_operator_at_qubit() {
        // Qubit 0 is the most significant bit.
        let s = PauliString::single(2, 0, Pauli::Z);
        let d = s.diagonal().unwrap();
        assert_eq!(d, vec![1.0, 1.0, -1.0, -1.0]);
        let s1 = PauliString::single(2, 1, Pauli::Z);
        assert_eq!(s1.diagonal().unwrap(), vec![1.0, -1.0, 1.0, -1.0]);
    }
}
