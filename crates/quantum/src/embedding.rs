//! Lifting k-qubit operators into an n-qubit register.

use zz_linalg::{c64, Matrix};

/// Embeds a k-qubit operator into an n-qubit register.
///
/// `targets[i]` is the register qubit that the operator's i-th tensor factor
/// acts on (workspace convention: factor 0 / qubit 0 is the most significant
/// bit). All other qubits receive the identity.
///
/// The result is a dense `2^n × 2^n` matrix, so this is intended for small
/// registers (the statevector simulator applies gates without ever forming
/// the full matrix).
///
/// # Panics
///
/// Panics if `op` is not `2^k × 2^k` for `k = targets.len()`, if any target
/// index is `≥ n`, or if targets repeat.
///
/// # Example
///
/// ```
/// use zz_quantum::{embed, gates};
///
/// // CNOT with control 2 and target 0 in a 3-qubit register.
/// let full = embed(&gates::cnot(), &[2, 0], 3);
/// assert!(full.is_unitary(1e-12));
/// ```
pub fn embed(op: &Matrix, targets: &[usize], n: usize) -> Matrix {
    let k = targets.len();
    assert_eq!(op.rows(), 1 << k, "operator dimension must be 2^k");
    assert!(op.is_square(), "operator must be square");
    assert!(n >= k, "register must have at least k qubits");
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < n, "target {t} out of range for {n} qubits");
        assert!(
            !targets[..i].contains(&t),
            "duplicate target qubit {t} in embedding"
        );
    }

    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);

    // Bit position (from LSB) of register qubit q.
    let bit = |q: usize| n - 1 - q;

    // Enumerate the 2^(n-k) assignments of the non-target qubits by
    // iterating full indices whose target bits are all zero.
    let target_mask: usize = targets.iter().map(|&t| 1usize << bit(t)).sum();
    for base in 0..dim {
        if base & target_mask != 0 {
            continue;
        }
        for r in 0..(1usize << k) {
            // Spread the operator row-index bits onto the register.
            let mut row = base;
            for (i, &t) in targets.iter().enumerate() {
                if (r >> (k - 1 - i)) & 1 == 1 {
                    row |= 1 << bit(t);
                }
            }
            for c in 0..(1usize << k) {
                let v = op[(r, c)];
                if v == c64::ZERO {
                    continue;
                }
                let mut col = base;
                for (i, &t) in targets.iter().enumerate() {
                    if (c >> (k - 1 - i)) & 1 == 1 {
                        col |= 1 << bit(t);
                    }
                }
                out[(row, col)] = v;
            }
        }
    }
    out
}

/// Partial trace of an n-qubit density matrix over the qubits in `discard`
/// (workspace bit convention: qubit 0 is the most significant bit).
///
/// Returns the reduced density matrix over the remaining qubits, ordered as
/// in the original register.
///
/// # Panics
///
/// Panics if `rho` is not `2^n × 2^n`, if a discarded index repeats or is
/// out of range, or if everything would be discarded.
///
/// # Example
///
/// ```
/// use zz_linalg::{c64, Matrix};
/// use zz_quantum::{partial_trace, states};
///
/// // Bell state: tracing out either qubit leaves the maximally mixed state.
/// let bell = {
///     let s = states::zero_state(2);
///     let h = zz_quantum::embed(&zz_quantum::gates::h(), &[0], 2);
///     let cx = zz_quantum::embed(&zz_quantum::gates::cnot(), &[0, 1], 2);
///     cx.matmul(&h).mul_vec(&s)
/// };
/// let rho = Matrix::from_fn(4, 4, |i, j| bell[i] * bell[j].conj());
/// let reduced = partial_trace(&rho, &[0], 2);
/// assert!(reduced.approx_eq(&Matrix::identity(2).scale(c64::real(0.5)), 1e-12));
/// ```
pub fn partial_trace(rho: &Matrix, discard: &[usize], n: usize) -> Matrix {
    assert_eq!(rho.rows(), 1 << n, "density matrix must be 2^n x 2^n");
    assert!(rho.is_square(), "density matrix must be square");
    for (i, &d) in discard.iter().enumerate() {
        assert!(d < n, "discarded qubit {d} out of range");
        assert!(!discard[..i].contains(&d), "duplicate discarded qubit {d}");
    }
    let keep: Vec<usize> = (0..n).filter(|q| !discard.contains(q)).collect();
    assert!(!keep.is_empty(), "cannot trace out every qubit");

    let bit = |q: usize| n - 1 - q;
    let k = keep.len();
    let dim = 1usize << k;
    let mut out = Matrix::zeros(dim, dim);
    // For each pair of kept-subspace indices, sum over discarded settings.
    let spread = |sub: usize, wires: &[usize]| -> usize {
        let mut full = 0usize;
        for (i, &q) in wires.iter().enumerate() {
            if (sub >> (wires.len() - 1 - i)) & 1 == 1 {
                full |= 1 << bit(q);
            }
        }
        full
    };
    for r in 0..dim {
        for c in 0..dim {
            let mut acc = c64::ZERO;
            for e in 0..(1usize << discard.len()) {
                let env = spread(e, discard);
                acc += rho[(spread(r, &keep) | env, spread(c, &keep) | env)];
            }
            out[(r, c)] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::pauli::PauliString;

    #[test]
    fn embedding_on_leading_qubits_is_kron() {
        let op = gates::h();
        let full = embed(&op, &[0], 2);
        let expected = op.kron(&Matrix::identity(2));
        assert!(full.approx_eq(&expected, 1e-15));
    }

    #[test]
    fn embedding_on_trailing_qubit_is_kron_right() {
        let op = gates::h();
        let full = embed(&op, &[1], 2);
        let expected = Matrix::identity(2).kron(&op);
        assert!(full.approx_eq(&expected, 1e-15));
    }

    #[test]
    fn two_qubit_embedding_matches_pauli_string() {
        let zz = gates::rzz(0.8);
        let full = embed(&zz, &[0, 2], 3);
        let direct = zz_linalg::expm::expm_neg_i_h_t(&PauliString::zz(3, 0, 2).matrix(), 0.4);
        assert!(full.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn reversed_targets_swap_roles() {
        // CNOT embedded as [1, 0] means qubit 1 is the control.
        let full = embed(&gates::cnot(), &[1, 0], 2);
        let expected = gates::swap().matmul(&gates::cnot()).matmul(&gates::swap());
        assert!(full.approx_eq(&expected, 1e-15));
    }

    #[test]
    fn embedding_preserves_unitarity() {
        let full = embed(&gates::zx90(), &[2, 1], 4);
        assert!(full.is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn rejects_duplicate_targets() {
        let _ = embed(&gates::cnot(), &[1, 1], 3);
    }

    #[test]
    fn partial_trace_of_product_state_is_the_factor() {
        // |ψ⟩ = |+⟩ ⊗ |1⟩: tracing out qubit 1 leaves |+⟩⟨+|.
        let plus = crate::states::plus();
        let one = crate::states::ket1();
        let full = plus.kron(&one);
        let rho = Matrix::from_fn(4, 4, |i, j| full[i] * full[j].conj());
        let reduced = partial_trace(&rho, &[1], 2);
        let expected = Matrix::from_fn(2, 2, |i, j| plus[i] * plus[j].conj());
        assert!(reduced.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let ghz = {
            let mut amps = vec![zz_linalg::c64::ZERO; 8];
            amps[0] = zz_linalg::c64::real(std::f64::consts::FRAC_1_SQRT_2);
            amps[7] = zz_linalg::c64::real(std::f64::consts::FRAC_1_SQRT_2);
            zz_linalg::Vector::from_vec(amps)
        };
        let rho = Matrix::from_fn(8, 8, |i, j| ghz[i] * ghz[j].conj());
        let reduced = partial_trace(&rho, &[0, 2], 3);
        assert!((reduced.trace().re - 1.0).abs() < 1e-12);
        // GHZ reduced to one qubit is maximally mixed.
        assert!((reduced[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!(reduced[(0, 1)].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot trace out every qubit")]
    fn rejects_total_trace_out() {
        let rho = Matrix::identity(4);
        let _ = partial_trace(&rho, &[0, 1], 2);
    }
}
