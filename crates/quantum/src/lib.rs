//! Quantum-computing primitives shared by the `zz-*` workspace.
//!
//! Builds on [`zz_linalg`] and provides:
//!
//! * [`pauli`] — the Pauli operators and tensor-product Pauli strings,
//! * [`gates`] — standard and IBMQ-native gate matrices (`X90`, `Rzx`, …),
//! * [`states`] — computational-basis and common single-qubit states,
//! * [`fidelity`] — average gate fidelity (Nielsen's formula) and friends,
//! * [`embed`] — lifting k-qubit operators into an n-qubit register,
//! * [`transmon`] — multi-level (Duffing) transmon operators for leakage
//!   studies.
//!
//! # Qubit ordering convention
//!
//! Qubit `0` is the **leftmost** tensor factor and therefore the **most
//! significant bit** of a basis-state index: `|q₀ q₁ … q_{n−1}⟩` has index
//! `Σ qᵢ · 2^{n−1−i}`. All crates in this workspace follow this convention.
//!
//! # Example
//!
//! ```
//! use zz_quantum::gates;
//! use zz_quantum::fidelity::average_gate_fidelity;
//!
//! // Two X90 pulses compose to an X gate (up to global phase).
//! let x90 = gates::x90();
//! let composed = x90.matmul(&x90);
//! let f = average_gate_fidelity(&composed, &gates::x());
//! assert!((f - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod embedding;
pub mod fidelity;
pub mod gates;
pub mod pauli;
pub mod states;
pub mod transmon;

pub use embedding::{embed, partial_trace};
