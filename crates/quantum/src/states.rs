//! Common quantum states.

use zz_linalg::{c64, Vector};

/// The single-qubit ground state `|0⟩`.
pub fn ket0() -> Vector {
    Vector::basis(2, 0)
}

/// The single-qubit excited state `|1⟩`.
pub fn ket1() -> Vector {
    Vector::basis(2, 1)
}

/// The superposition `|+⟩ = (|0⟩ + |1⟩)/√2`.
pub fn plus() -> Vector {
    Vector::from_vec(vec![
        c64::real(std::f64::consts::FRAC_1_SQRT_2),
        c64::real(std::f64::consts::FRAC_1_SQRT_2),
    ])
}

/// The superposition `|−⟩ = (|0⟩ − |1⟩)/√2`.
pub fn minus() -> Vector {
    Vector::from_vec(vec![
        c64::real(std::f64::consts::FRAC_1_SQRT_2),
        c64::real(-std::f64::consts::FRAC_1_SQRT_2),
    ])
}

/// The n-qubit all-zeros state `|0…0⟩`.
pub fn zero_state(n: usize) -> Vector {
    Vector::basis(1 << n, 0)
}

/// A computational basis state from its bits (qubit 0 first / most
/// significant).
///
/// # Panics
///
/// Panics if `bits` is empty.
///
/// # Example
///
/// ```
/// use zz_quantum::states::basis_state;
/// let s = basis_state(&[1, 0]); // |10⟩
/// assert_eq!(s.as_slice()[2].re, 1.0);
/// ```
pub fn basis_state(bits: &[u8]) -> Vector {
    assert!(!bits.is_empty(), "basis_state requires at least one bit");
    let n = bits.len();
    let mut index = 0usize;
    for (q, &b) in bits.iter().enumerate() {
        if b != 0 {
            index |= 1 << (n - 1 - q);
        }
    }
    Vector::basis(1 << n, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_minus_are_orthogonal() {
        assert!(plus().dot(&minus()).abs() < 1e-15);
    }

    #[test]
    fn zero_state_is_first_basis_vector() {
        let s = zero_state(3);
        assert_eq!(s.as_slice()[0], c64::ONE);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn basis_state_bit_order() {
        // |q0 q1⟩ with q0 most significant.
        let s01 = basis_state(&[0, 1]);
        assert_eq!(s01.as_slice()[1], c64::ONE);
        let s10 = basis_state(&[1, 0]);
        assert_eq!(s10.as_slice()[2], c64::ONE);
    }

    #[test]
    fn kron_matches_basis_state() {
        let manual = ket1().kron(&ket0()).kron(&ket1());
        let direct = basis_state(&[1, 0, 1]);
        assert_eq!(manual.as_slice(), direct.as_slice());
    }
}
