//! Fidelity measures between gates and states.

use zz_linalg::{Matrix, Vector};

/// Average gate fidelity between two unitaries (Nielsen's formula):
///
/// `F̄(U, V) = (|Tr(U†V)|² + d) / (d² + d)`
///
/// where `d` is the Hilbert-space dimension. This is the similarity measure
/// `F` used by the paper's OptCtrl objective (Sec 7.1.1).
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
///
/// # Example
///
/// ```
/// use zz_quantum::{gates, fidelity::average_gate_fidelity};
///
/// let f = average_gate_fidelity(&gates::x(), &gates::z());
/// // X and Z are orthogonal under the trace inner product: F = d/(d²+d) = 1/3.
/// assert!((f - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn average_gate_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    assert!(
        u.is_square() && v.is_square(),
        "fidelity requires square matrices"
    );
    assert_eq!(u.rows(), v.rows(), "fidelity dimension mismatch");
    let d = u.rows() as f64;
    let overlap = u.dagger().matmul(v).trace().abs_sq();
    (overlap + d) / (d * d + d)
}

/// Average gate *infidelity* `1 − F̄(U, V)`; the quantity plotted by the
/// paper's Figures 16–19.
pub fn average_gate_infidelity(u: &Matrix, v: &Matrix) -> f64 {
    1.0 - average_gate_fidelity(u, v)
}

/// Process (entanglement) fidelity `|Tr(U†V)|² / d²`.
pub fn process_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    assert!(
        u.is_square() && v.is_square(),
        "fidelity requires square matrices"
    );
    assert_eq!(u.rows(), v.rows(), "fidelity dimension mismatch");
    let d = u.rows() as f64;
    u.dagger().matmul(v).trace().abs_sq() / (d * d)
}

/// State fidelity `|⟨ψ|φ⟩|²` between normalized pure states.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn state_fidelity(psi: &Vector, phi: &Vector) -> f64 {
    psi.fidelity(phi)
}

/// Fidelity `⟨ψ|ρ|ψ⟩` of a density matrix against a pure target state.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn state_fidelity_dm(rho: &Matrix, psi: &Vector) -> f64 {
    assert_eq!(rho.rows(), psi.len(), "density-matrix dimension mismatch");
    let rho_psi = rho.mul_vec(psi);
    psi.dot(&rho_psi).re
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use zz_linalg::c64;

    #[test]
    fn identical_gates_have_unit_fidelity() {
        let u = gates::u3(0.3, -0.7, 1.9);
        assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn global_phase_is_ignored() {
        let u = gates::h();
        let v = u.scale(c64::cis(0.42));
        assert!((average_gate_fidelity(&u, &v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn infidelity_is_complement() {
        let u = gates::x();
        let v = gates::rx(3.0);
        let f = average_gate_fidelity(&u, &v);
        assert!((average_gate_infidelity(&u, &v) - (1.0 - f)).abs() < 1e-15);
    }

    #[test]
    fn process_vs_average_fidelity_relation() {
        // F̄ = (d·Fp + 1)/(d + 1)
        let u = gates::cnot();
        let v = gates::cz();
        let d = 4.0;
        let fp = process_fidelity(&u, &v);
        let fa = average_gate_fidelity(&u, &v);
        assert!((fa - (d * fp + 1.0) / (d + 1.0)).abs() < 1e-13);
    }

    #[test]
    fn dm_fidelity_of_pure_state_matches_vector_fidelity() {
        let psi = Vector::from_vec(vec![c64::real(0.6), c64::new(0.0, 0.8)]);
        let phi = Vector::basis(2, 0);
        // ρ = |ψ⟩⟨ψ|
        let mut rho = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                rho[(i, j)] = psi[i] * psi[j].conj();
            }
        }
        let f1 = state_fidelity(&phi, &psi);
        let f2 = state_fidelity_dm(&rho, &phi);
        assert!((f1 - f2).abs() < 1e-14);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let u = gates::rx(0.9);
        let v = gates::ry(1.4);
        assert!((average_gate_fidelity(&u, &v) - average_gate_fidelity(&v, &u)).abs() < 1e-14);
    }
}
