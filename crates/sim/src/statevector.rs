//! A dense n-qubit statevector simulator (n ≤ ~20).

use zz_linalg::{c64, Matrix, Vector};

/// An n-qubit pure state with in-place gate application.
///
/// Follows the workspace bit convention: qubit 0 is the most significant
/// bit of the amplitude index.
///
/// # Example
///
/// ```
/// use zz_sim::StateVector;
/// use zz_quantum::gates;
///
/// let mut sv = StateVector::zero(2);
/// sv.apply_single(&gates::h(), 0);
/// sv.apply_two(&gates::cnot(), 0, 1);
/// // Bell state: |00⟩ and |11⟩ with amplitude 1/√2.
/// assert!((sv.probability(0) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(3) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<c64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` on `n` qubits.
    pub fn zero(n: usize) -> Self {
        let mut amps = vec![c64::ZERO; 1 << n];
        amps[0] = c64::ONE;
        StateVector { n, amps }
    }

    /// Wraps an existing normalized amplitude vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_vector(v: Vector) -> Self {
        let len = v.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            n: len.trailing_zeros() as usize,
            amps: v.into_vec(),
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Borrow the amplitudes.
    pub fn amplitudes(&self) -> &[c64] {
        &self.amps
    }

    /// The state as a [`Vector`].
    pub fn to_vector(&self) -> Vector {
        Vector::from_vec(self.amps.clone())
    }

    /// Probability of basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].abs_sq()
    }

    /// `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "fidelity qubit-count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum::<c64>()
            .abs_sq()
    }

    /// Euclidean norm of the state.
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.abs_sq()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is numerically zero.
    pub fn normalize(&mut self) {
        let norm = self.norm();
        assert!(norm > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amps {
            *a = *a / norm;
        }
    }

    #[inline]
    pub(crate) fn bit(&self, q: usize) -> usize {
        self.n - 1 - q
    }

    /// The amplitude-index bit mask of qubit `q` under the workspace bit
    /// convention (qubit 0 is the most significant bit).
    #[inline]
    pub(crate) fn qubit_mask(&self, q: usize) -> usize {
        1usize << self.bit(q)
    }

    /// Applies a single-qubit gate to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 2×2 or `q` is out of range.
    pub fn apply_single(&mut self, m: &Matrix, q: usize) {
        assert_eq!(m.rows(), 2, "apply_single expects a 2x2 matrix");
        assert!(q < self.n, "qubit {q} out of range");
        let mk = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        self.kernel_single(&mk, self.qubit_mask(q));
    }

    /// Branch-free single-qubit kernel: strides over exactly the
    /// `2^(n-1)` amplitude pairs split by `mask` (row-major 2×2 `m`).
    pub(crate) fn kernel_single(&mut self, m: &[c64; 4], mask: usize) {
        let block = mask << 1;
        let mut base = 0;
        while base < self.amps.len() {
            for i in base..base + mask {
                let j = i | mask;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0] * a0 + m[1] * a1;
                self.amps[j] = m[2] * a0 + m[3] * a1;
            }
            base += block;
        }
    }

    /// Applies a two-qubit gate; `qa` is the gate's most significant factor.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 4×4, a qubit is out of range, or
    /// `qa == qb`.
    pub fn apply_two(&mut self, m: &Matrix, qa: usize, qb: usize) {
        assert_eq!(m.rows(), 4, "apply_two expects a 4x4 matrix");
        assert!(qa < self.n && qb < self.n, "qubit out of range");
        assert_ne!(qa, qb, "two-qubit gate requires distinct qubits");
        let mut mk = [c64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                mk[4 * r + c] = m[(r, c)];
            }
        }
        self.kernel_two(&mk, self.qubit_mask(qa), self.qubit_mask(qb));
    }

    /// Branch-free two-qubit kernel over the `2^(n-2)` four-amplitude
    /// groups split by the masks `ba` (most significant gate factor) and
    /// `bb` (row-major 4×4 `m`).
    ///
    /// The group bases are enumerated with three nested strided loops —
    /// the bit-expansion arithmetic (inserting zero bits at the two mask
    /// positions) is hoisted into the loop bounds, so the innermost loop
    /// walks a contiguous cache-resident run of `min(ba, bb)` bases with
    /// no per-group index shuffling. Bases are visited in the same
    /// ascending order as the old expand-per-group form, so results are
    /// bit-identical to it.
    pub(crate) fn kernel_two(&mut self, m: &[c64; 16], ba: usize, bb: usize) {
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let len = self.amps.len();
        let mut outer = 0;
        while outer < len {
            let mut mid = outer;
            while mid < outer + hi {
                for base in mid..mid + lo {
                    let (i1, i2, i3) = (base | bb, base | ba, base | ba | bb);
                    let (a0, a1, a2, a3) =
                        (self.amps[base], self.amps[i1], self.amps[i2], self.amps[i3]);
                    self.amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
                    self.amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
                    self.amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
                    self.amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
                }
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// One Rz phase term `(mask, θ/2)` applied as a strided branch-free
    /// pass: amplitudes whose `mask` bit is clear get `e^{−iθ/2}`, set
    /// bits get `e^{+iθ/2}` — two `cis` evaluations total, no per-entry
    /// trigonometry. The per-term building block of the large-register
    /// fused-diagonal fallback in [`crate::program`].
    pub(crate) fn apply_rz_term(&mut self, mask: usize, half: f64) {
        let (lo, hi) = (c64::cis(-half), c64::cis(half));
        let block = mask << 1;
        let mut base = 0;
        while base < self.amps.len() {
            for a in &mut self.amps[base..base + mask] {
                *a *= lo;
            }
            for a in &mut self.amps[base + mask..base + block] {
                *a *= hi;
            }
            base += block;
        }
    }

    /// One ZZ phase term `(mask_u, mask_v, φ)` applied branchlessly:
    /// amplitudes where the two bits agree get `e^{−iφ}`, others
    /// `e^{+iφ}` — again two `cis` evaluations for the whole sweep.
    pub(crate) fn apply_zz_term(&mut self, mu: usize, mv: usize, phi: f64) {
        let factors = [c64::cis(-phi), c64::cis(phi)];
        for (i, a) in self.amps.iter_mut().enumerate() {
            let differ = ((i & mu != 0) != (i & mv != 0)) as usize;
            *a *= factors[differ];
        }
    }

    /// Multiplies the state pointwise by a precomputed diagonal operator —
    /// the fused-phase fast path of [`crate::program`], which collapses a
    /// layer's worth of commuting ZZ/Rz phases into one `O(2^n)` sweep.
    ///
    /// # Panics
    ///
    /// Panics if `diag` does not have exactly `2^n` entries.
    pub fn apply_diagonal(&mut self, diag: &[c64]) {
        assert_eq!(
            diag.len(),
            self.amps.len(),
            "diagonal length must match the amplitude count"
        );
        for (a, d) in self.amps.iter_mut().zip(diag) {
            *a *= *d;
        }
    }

    /// Applies the diagonal ZZ phase `exp(−i φ Z_u Z_v)`: basis states where
    /// the two qubits agree get `e^{−iφ}`, others `e^{+iφ}`.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `u == v`.
    pub fn apply_zz_phase(&mut self, phi: f64, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "qubit out of range");
        assert_ne!(u, v, "ZZ phase requires distinct qubits");
        if phi == 0.0 {
            return;
        }
        let (bu, bv) = (1usize << self.bit(u), 1usize << self.bit(v));
        let minus = c64::cis(-phi);
        let plus = c64::cis(phi);
        for (i, a) in self.amps.iter_mut().enumerate() {
            let same = ((i & bu == 0) == (i & bv == 0)) as usize;
            *a *= if same == 1 { minus } else { plus };
        }
    }

    /// Applies `diag(e^{−iθ/2}, e^{iθ/2})` (Rz) on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_rz(&mut self, theta: f64, q: usize) {
        assert!(q < self.n, "qubit {q} out of range");
        let mask = 1usize << self.bit(q);
        let (lo, hi) = (c64::cis(-theta / 2.0), c64::cis(theta / 2.0));
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= if i & mask == 0 { lo } else { hi };
        }
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    ///
    /// Returns `(basis index, count)` pairs sorted by descending count —
    /// what an actual device run would report.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use zz_sim::StateVector;
    /// use zz_quantum::gates;
    ///
    /// let mut sv = StateVector::zero(1);
    /// sv.apply_single(&gates::h(), 0);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let counts = sv.sample_counts(1000, &mut rng);
    /// // Both outcomes appear with roughly half the shots.
    /// assert_eq!(counts.len(), 2);
    /// assert!(counts[0].1 < 600);
    /// ```
    pub fn sample_counts(&self, shots: usize, rng: &mut impl rand::Rng) -> Vec<(usize, usize)> {
        // Cumulative distribution over basis states.
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.abs_sq();
            cdf.push(acc);
        }
        let total = acc.max(1e-300);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let r: f64 = rng.gen_range(0.0..total);
            let idx = cdf.partition_point(|&c| c < r).min(self.amps.len() - 1);
            *counts.entry(idx).or_insert(0usize) += 1;
        }
        let mut out: Vec<(usize, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Probability that qubit `q` is `|1⟩`.
    pub fn excited_population(&self, q: usize) -> f64 {
        let mask = self.qubit_mask(q);
        let block = mask << 1;
        let mut total = 0.0;
        let mut base = mask;
        while base < self.amps.len() {
            for i in base..base + mask {
                total += self.amps[i].abs_sq();
            }
            base += block;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::{embed, gates};

    #[test]
    fn single_gate_matches_embedding() {
        let mut sv = StateVector::zero(3);
        sv.apply_single(&gates::h(), 1);
        sv.apply_single(&gates::t(), 1);
        let direct = embed(&gates::t().matmul(&gates::h()), &[1], 3)
            .mul_vec(&zz_quantum::states::zero_state(3));
        assert!(sv.to_vector().fidelity(&direct.normalized()) > 1.0 - 1e-12);
    }

    #[test]
    fn two_qubit_gate_matches_embedding() {
        let mut sv = StateVector::zero(3);
        sv.apply_single(&gates::h(), 2);
        sv.apply_two(&gates::cnot(), 2, 0);
        let u = embed(&gates::cnot(), &[2, 0], 3).matmul(&embed(&gates::h(), &[2], 3));
        let direct = u.mul_vec(&zz_quantum::states::zero_state(3));
        let f = sv.to_vector().fidelity(&direct.normalized());
        assert!(f > 1.0 - 1e-12, "fidelity {f}");
    }

    #[test]
    fn zz_phase_matches_rzz_gate() {
        let phi = 0.37;
        let mut a = StateVector::zero(2);
        a.apply_single(&gates::h(), 0);
        a.apply_single(&gates::h(), 1);
        let mut b = a.clone();
        a.apply_zz_phase(phi, 0, 1);
        b.apply_two(&gates::rzz(2.0 * phi), 0, 1);
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn rz_matches_gate_matrix() {
        let mut a = StateVector::zero(1);
        a.apply_single(&gates::h(), 0);
        let mut b = a.clone();
        a.apply_rz(1.1, 0);
        b.apply_single(&gates::rz(1.1), 0);
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn excited_population_counts_the_right_bit() {
        let mut sv = StateVector::zero(2);
        sv.apply_single(&gates::x(), 1);
        assert!((sv.excited_population(1) - 1.0).abs() < 1e-12);
        assert!(sv.excited_population(0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matches_sequential_phases() {
        // One fused diagonal must equal the per-operator phase passes.
        let n = 3;
        let mut reference = StateVector::zero(n);
        for q in 0..n {
            reference.apply_single(&gates::h(), q);
        }
        let mut fused = reference.clone();
        reference.apply_rz(0.7, 1);
        reference.apply_zz_phase(0.31, 0, 2);
        let diag: Vec<c64> = (0..1usize << n)
            .map(|i| {
                let rz = if i & reference.qubit_mask(1) != 0 {
                    0.7 / 2.0
                } else {
                    -0.7 / 2.0
                };
                let same = (i & reference.qubit_mask(0) == 0) == (i & reference.qubit_mask(2) == 0);
                let zz = if same { -0.31 } else { 0.31 };
                c64::cis(rz + zz)
            })
            .collect();
        fused.apply_diagonal(&diag);
        assert!(fused.fidelity(&reference) > 1.0 - 1e-12);
    }

    #[test]
    fn two_qubit_kernel_handles_adjacent_and_distant_masks() {
        for (qa, qb) in [(0, 1), (1, 0), (0, 3), (3, 1)] {
            let mut sv = StateVector::zero(4);
            for q in 0..4 {
                sv.apply_single(&gates::h(), q);
                sv.apply_single(&gates::t(), q);
            }
            let direct = embed(&gates::zx90(), &[qa, qb], 4).mul_vec(&sv.to_vector());
            sv.apply_two(&gates::zx90(), qa, qb);
            let f = sv.to_vector().fidelity(&direct.normalized());
            assert!(f > 1.0 - 1e-12, "({qa},{qb}): fidelity {f}");
        }
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut sv = StateVector::zero(4);
        sv.apply_single(&gates::h(), 0);
        sv.apply_two(&gates::zx90(), 0, 3);
        sv.apply_zz_phase(0.3, 1, 2);
        sv.apply_rz(0.9, 2);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }
}
