//! Precompiled execution programs for schedule plans.
//!
//! The straight-line executor recomputes a lot of invariant work on every
//! run: which couplings a layer drives, which residual factor each
//! suppressed coupling picks up (an `O(ops)` scan per coupling), the gate
//! matrices (allocated per application), the per-layer durations, and —
//! worst of all — one full `O(2^n)` amplitude sweep *per coupling per
//! layer* for the ZZ phases. A [`PlanProgram`] resolves all of that once
//! per `(SchedulePlan, Topology, ZzErrorModel, GateDurations)` tuple:
//!
//! * every layer's undriven-coupling ZZ phases and the adjacent virtual
//!   rotations are **fused into a single diagonal** — one `O(2^n)` pass
//!   per layer (tabulated as `2^n` phases for registers up to
//!   [`DIAG_TABLE_MAX_QUBITS`] qubits, evaluated on the fly above that),
//! * gate matrices are resolved to branch-free statevector kernels with
//!   precomputed bit masks,
//! * the [`TrajectoryProgram`] variant additionally precomputes per-layer
//!   decoherence probabilities and samples Kraus jumps with analytic
//!   renormalization (no separate norm pass), and fans trajectories out
//!   over a scoped-thread pool with **deterministic per-trajectory
//!   seeds**, so Monte-Carlo results are bit-identical regardless of the
//!   thread count.
//!
//! The legacy entry points in [`crate::executor`] are thin wrappers over
//! these programs; compile a program directly whenever one plan is run
//! more than once (disorder averages, trajectory fans, parameter sweeps).
//!
//! # Example
//!
//! ```
//! use zz_circuit::{bench, native::compile_to_native, route};
//! use zz_sched::{par_schedule, GateDurations};
//! use zz_sim::executor::ZzErrorModel;
//! use zz_sim::program::PlanProgram;
//! use zz_topology::Topology;
//!
//! let topo = Topology::grid(2, 2);
//! let circuit = bench::generate(bench::BenchmarkKind::Qft, 4, 1);
//! let native = compile_to_native(&route(&circuit, &topo));
//! let plan = par_schedule(&topo, &native);
//!
//! let ideal = PlanProgram::ideal(&plan).run();
//! let model = ZzErrorModel::uniform(&topo, zz_sim::khz(200.0));
//! let noisy = PlanProgram::compile(&plan, &topo, &model, &GateDurations::standard());
//! // The program is reusable: every `run()` replays the precompiled steps.
//! let f = ideal.fidelity(&noisy.run());
//! assert!(f > 0.0 && f <= 1.0 + 1e-9);
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zz_circuit::native::NativeOp;
use zz_linalg::{c64, Matrix, Vector};
use zz_sched::{GateDurations, Layer, SchedulePlan};
use zz_topology::Topology;

use crate::batch::BatchedState;
use crate::density::Decoherence;
use crate::executor::{coupling_residual, driven_couplings, ZzErrorModel};
use crate::{metrics, StateVector};
use zz_pool::parallel_map;

/// Largest register whose fused layer diagonals are tabulated as dense
/// `2^n` complex tables (16 qubits = 1 MiB per layer). Larger registers
/// evaluate the fused phase terms on the fly — still one pass per layer,
/// but with an `O(terms)` phase sum per amplitude instead of a lookup.
pub const DIAG_TABLE_MAX_QUBITS: usize = 16;

/// Default trajectory-batch width for [`TrajectoryProgram::mean_fidelity`]:
/// sixteen lanes is two cache lines of `f64` per amplitude plane — wide
/// enough to keep 4-lane AVX2 FMA pipes saturated with independent
/// vectors across the strided chunk boundaries, small enough that a
/// 9-qubit batch (2 × 16 × 512 doubles = 128 KiB) still fits in L2
/// alongside its diagonal tables. Measured on the 9-qubit QAOA
/// Monte-Carlo workload, throughput improves steadily up to 16 lanes
/// and is flat beyond.
pub const DEFAULT_BATCH_LANES: usize = 16;

/// One resolved gate application: matrix entries unpacked into a fixed
/// array and qubit indices pre-translated to amplitude bit masks.
/// Virtual rotations never appear here — [`resolve_gates`] returns them
/// as diagonal phase terms, fused into the layer's pre-gate diagonal.
#[derive(Clone, Debug)]
enum GateApp {
    /// A single-qubit pulse.
    Single { mask: usize, m: [c64; 4] },
    /// A two-qubit pulse; `ba` is the gate's most significant factor.
    Two { ba: usize, bb: usize, m: [c64; 16] },
}

impl GateApp {
    #[inline]
    fn apply(&self, sv: &mut StateVector) {
        match self {
            GateApp::Single { mask, m } => sv.kernel_single(m, *mask),
            GateApp::Two { ba, bb, m } => sv.kernel_two(m, *ba, *bb),
        }
    }

    #[inline]
    fn apply_batched(&self, batch: &mut BatchedState) {
        match self {
            GateApp::Single { mask, m } => batch.kernel_single(m, *mask),
            GateApp::Two { ba, bb, m } => batch.kernel_two(m, *ba, *bb),
        }
    }
}

/// A fused diagonal: the sum of a set of commuting Rz and ZZ phases,
/// applied in one amplitude sweep.
#[derive(Clone, Debug)]
struct Diag {
    /// `(mask, θ/2)` — adds `+θ/2` where the bit is set, `−θ/2` where
    /// it is clear (the `diag(e^{−iθ/2}, e^{iθ/2})` convention of
    /// [`StateVector::apply_rz`]).
    rz: Vec<(usize, f64)>,
    /// `(mask_u, mask_v, φ)` — adds `−φ` where the two bits agree, `+φ`
    /// where they differ ([`StateVector::apply_zz_phase`]).
    zz: Vec<(usize, usize, f64)>,
    /// Dense `e^{i·phase}` table for small registers.
    table: Option<Vec<c64>>,
}

impl Diag {
    /// Builds a fused diagonal, or `None` when there is nothing to apply.
    fn build(n: usize, rz: Vec<(usize, f64)>, zz: Vec<(usize, usize, f64)>) -> Option<Diag> {
        if rz.is_empty() && zz.is_empty() {
            return None;
        }
        let mut diag = Diag {
            rz,
            zz,
            table: None,
        };
        if n <= DIAG_TABLE_MAX_QUBITS {
            diag.table = Some(diag.build_table(1usize << n));
        }
        Some(diag)
    }

    /// Tabulates the fused diagonal multiplicatively: each term contributes
    /// a two-valued `e^{±iφ}` pattern, folded in with strided branch-free
    /// passes (only 2 `cis` evaluations per term — no per-entry sin/cos).
    /// The first term initializes the table outright, so an `m`-term
    /// diagonal costs `m − 1` multiply passes plus one fill.
    fn build_table(&self, size: usize) -> Vec<c64> {
        let mut table = vec![c64::ONE; size];
        let mut started = false;
        for &(mask, half) in &self.rz {
            let (lo, hi) = (c64::cis(-half), c64::cis(half));
            let block = mask << 1;
            let mut base = 0;
            while base < size {
                if started {
                    for t in &mut table[base..base + mask] {
                        *t *= lo;
                    }
                    for t in &mut table[base + mask..base + block] {
                        *t *= hi;
                    }
                } else {
                    table[base..base + mask].fill(lo);
                    table[base + mask..base + block].fill(hi);
                }
                base += block;
            }
            started = true;
        }
        for &(mu, mv, phi) in &self.zz {
            let factors = [c64::cis(-phi), c64::cis(phi)];
            if started {
                for (i, t) in table.iter_mut().enumerate() {
                    let differ = ((i & mu != 0) != (i & mv != 0)) as usize;
                    *t *= factors[differ];
                }
            } else {
                for (i, t) in table.iter_mut().enumerate() {
                    let differ = ((i & mu != 0) != (i & mv != 0)) as usize;
                    *t = factors[differ];
                }
                started = true;
            }
        }
        table
    }

    /// Total phase accumulated by basis state `i` — the reference
    /// semantics both apply paths are pinned against in tests.
    #[cfg(test)]
    fn phase_at(&self, i: usize) -> f64 {
        let mut phase = 0.0;
        for &(mask, half) in &self.rz {
            phase += if i & mask != 0 { half } else { -half };
        }
        for &(mu, mv, phi) in &self.zz {
            let same = (i & mu == 0) == (i & mv == 0);
            phase += if same { -phi } else { phi };
        }
        phase
    }

    /// Applies the diagonal. Tabulated registers take one lookup sweep;
    /// above [`DIAG_TABLE_MAX_QUBITS`] each term runs as its own strided
    /// branch-free pass with only two `cis` evaluations per term — no
    /// per-amplitude sin/cos.
    fn apply(&self, sv: &mut StateVector) {
        match &self.table {
            Some(table) => sv.apply_diagonal(table),
            None => {
                for &(mask, half) in &self.rz {
                    sv.apply_rz_term(mask, half);
                }
                for &(mu, mv, phi) in &self.zz {
                    sv.apply_zz_term(mu, mv, phi);
                }
            }
        }
    }

    /// Batched twin of [`apply`](Self::apply); returns the number of
    /// full-statevector sweeps it executed (for the engine counters).
    fn apply_batched(&self, batch: &mut BatchedState) -> u64 {
        match &self.table {
            Some(table) => {
                batch.apply_diagonal(table);
                1
            }
            None => {
                for &(mask, half) in &self.rz {
                    batch.apply_rz_term(mask, half);
                }
                for &(mu, mv, phi) in &self.zz {
                    batch.apply_zz_term(mu, mv, phi);
                }
                (self.rz.len() + self.zz.len()) as u64
            }
        }
    }
}

#[inline]
fn mask_of(n: usize, q: usize) -> usize {
    1usize << (n - 1 - q)
}

fn mat4(m: &Matrix) -> [c64; 4] {
    let s = m.as_slice();
    [s[0], s[1], s[2], s[3]]
}

fn mat16(m: &Matrix) -> [c64; 16] {
    let mut out = [c64::ZERO; 16];
    out.copy_from_slice(m.as_slice());
    out
}

/// Resolves a layer's physical ops to kernels (identity pulses vanish —
/// they only matter for suppression bookkeeping, already folded into the
/// layer's metrics). Virtual rotations come back as `(mask, θ/2)` phase
/// terms: a layer's ops act on disjoint qubits, so an inline Rz commutes
/// with every pulse of its own layer and fuses exactly into the layer's
/// pre-gate diagonal instead of costing a sweep of its own.
fn resolve_gates(
    n: usize,
    layer: &Layer,
    x90: &[c64; 4],
    zx90: &[c64; 16],
) -> (Vec<GateApp>, Vec<(usize, f64)>) {
    let mut gates = Vec::with_capacity(layer.ops.len());
    let mut rz = Vec::new();
    for op in &layer.ops {
        match *op {
            NativeOp::Rz { qubit, theta } => {
                if theta != 0.0 {
                    rz.push((mask_of(n, qubit), theta / 2.0));
                }
            }
            NativeOp::X90 { qubit } => gates.push(GateApp::Single {
                mask: mask_of(n, qubit),
                m: *x90,
            }),
            NativeOp::Zx90 { control, target } => gates.push(GateApp::Two {
                ba: mask_of(n, control),
                bb: mask_of(n, target),
                m: *zx90,
            }),
            NativeOp::Id { .. } => {}
        }
    }
    (gates, rz)
}

/// Converts `(qubit, θ)` rotations to `(mask, θ/2)` phase terms, dropping
/// exact zeros (which the executor's `apply_rz` applies as exactly 1).
fn rz_terms(n: usize, rz: &[(usize, f64)]) -> Vec<(usize, f64)> {
    rz.iter()
        .filter(|&&(_, theta)| theta != 0.0)
        .map(|&(q, theta)| (mask_of(n, q), theta / 2.0))
        .collect()
}

/// The layer's undriven-coupling ZZ phase terms: residual factors are
/// resolved here, once per program, instead of once per coupling per run.
fn zz_terms(
    n: usize,
    layer: &Layer,
    topo: &Topology,
    model: &ZzErrorModel,
    duration: f64,
) -> Vec<(usize, usize, f64)> {
    let driven = driven_couplings(layer, topo);
    let mut terms = Vec::new();
    for (e, &(u, v)) in topo.couplings().iter().enumerate() {
        if driven[e] {
            continue;
        }
        let factor = if layer.metrics.suppressed[e] {
            coupling_residual(layer, u, v, &model.residuals)
        } else {
            1.0
        };
        let phi = model.lambdas[e] * factor * duration;
        if phi != 0.0 {
            terms.push((mask_of(n, u), mask_of(n, v), phi));
        }
    }
    terms
}

/// One precompiled layer of a [`PlanProgram`]: the fused pre-gate diagonal
/// (this layer's virtual rotations plus the *previous* layer's ZZ phases,
/// which are adjacent commuting diagonals in the deterministic run) and
/// the layer's resolved gate kernels.
#[derive(Clone, Debug)]
pub struct LayerProgram {
    pre: Option<Diag>,
    gates: Vec<GateApp>,
}

/// A deterministic execution program: the whole plan resolved to a flat
/// sequence of fused diagonals and gate kernels. Compile once, [`run`]
/// many times.
///
/// [`run`]: PlanProgram::run
#[derive(Clone, Debug)]
pub struct PlanProgram {
    n: usize,
    layers: Vec<LayerProgram>,
    /// Trailing diagonal: the last layer's ZZ phases plus the plan's
    /// final virtual rotations.
    tail: Option<Diag>,
}

impl PlanProgram {
    /// Precompiles the error-free reference program (no ZZ phases at all).
    pub fn ideal(plan: &SchedulePlan) -> Self {
        Self::build(plan, None)
    }

    /// Precompiles the plan under the given ZZ-crosstalk model: driven
    /// couplings, residual factors, layer durations and fused phase
    /// diagonals are all resolved here, never during [`run`](Self::run).
    pub fn compile(
        plan: &SchedulePlan,
        topo: &Topology,
        model: &ZzErrorModel,
        durations: &GateDurations,
    ) -> Self {
        Self::build(plan, Some((topo, model, durations)))
    }

    fn build(
        plan: &SchedulePlan,
        noise: Option<(&Topology, &ZzErrorModel, &GateDurations)>,
    ) -> Self {
        let n = plan.qubit_count();
        let x90 = mat4(&zz_quantum::gates::x90());
        let zx90 = mat16(&zz_quantum::gates::zx90());
        let mut layers = Vec::with_capacity(plan.layers.len());
        // Diagonal terms carried forward into the next emitted layer's
        // pre-gate diagonal: the previous layers' ZZ phases, inline Rz
        // ops, and everything from fully-diagonal (gateless) layers —
        // all commuting diagonals, so fusing across layer boundaries is
        // exact. In the deterministic program nothing ever forces a
        // diagonal to run at its original position; only a gate kernel
        // cuts the carry.
        let mut carry_rz: Vec<(usize, f64)> = Vec::new();
        let mut carry_zz: Vec<(usize, usize, f64)> = Vec::new();
        // Diagonal sweeps a fusion-free compilation would have emitted,
        // vs the number actually emitted — the difference feeds the
        // `engine.diag.fused` counter.
        let mut naive = 0u64;
        let mut emitted = 0u64;
        for layer in &plan.layers {
            let (gates, inline_rz) = resolve_gates(n, layer, &x90, &zx90);
            let before = rz_terms(n, &layer.rz_before);
            naive += !before.is_empty() as u64 + !inline_rz.is_empty() as u64;
            carry_rz.extend(before);
            carry_rz.extend(inline_rz);
            let zz = if let Some((topo, model, durations)) = noise {
                zz_terms(n, layer, topo, model, layer.duration(durations))
            } else {
                Vec::new()
            };
            naive += !zz.is_empty() as u64;
            if gates.is_empty() {
                // Fully-diagonal layer: collapses into the carry.
                carry_zz.extend(zz);
                continue;
            }
            let pre = Diag::build(
                n,
                std::mem::take(&mut carry_rz),
                std::mem::take(&mut carry_zz),
            );
            emitted += pre.is_some() as u64;
            carry_zz = zz;
            layers.push(LayerProgram { pre, gates });
        }
        let final_rz = rz_terms(n, &plan.final_rz);
        naive += !final_rz.is_empty() as u64;
        carry_rz.extend(final_rz);
        let tail = Diag::build(n, carry_rz, carry_zz);
        emitted += tail.is_some() as u64;
        metrics::record_fused(naive.saturating_sub(emitted));
        PlanProgram { n, layers, tail }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// The precompiled layers.
    pub fn layers(&self) -> &[LayerProgram] {
        &self.layers
    }

    /// Executes the program from `|0…0⟩`.
    pub fn run(&self) -> StateVector {
        let mut sv = StateVector::zero(self.n);
        for layer in &self.layers {
            if let Some(diag) = &layer.pre {
                diag.apply(&mut sv);
            }
            for gate in &layer.gates {
                gate.apply(&mut sv);
            }
        }
        if let Some(diag) = &self.tail {
            diag.apply(&mut sv);
        }
        sv
    }
}

/// One precompiled Monte-Carlo layer. Unlike the deterministic layout,
/// an amplitude-damping **jump** is a fusion barrier: the jump moves
/// amplitude between basis states, so a diagonal deferred past it would
/// apply the wrong per-state phase. Whether a jump fires is only known
/// at run time, so compilation treats any layer with `gamma > 0` as a
/// barrier and keeps its ZZ diagonal in place (`zz`). When `gamma == 0`
/// no jump can occur — dephasing draws never read amplitudes, and `Z`
/// commutes with every diagonal — so the layer's ZZ phases slide across
/// the noise pass into the next layer's `pre` instead.
#[derive(Clone, Debug)]
struct TrajLayer {
    /// Fused pre-gate diagonal: this layer's virtual rotations (both
    /// `rz_before` and inline ops) plus any ZZ phases carried over from
    /// preceding jump-free layers.
    pre: Option<Diag>,
    gates: Vec<GateApp>,
    /// This layer's ZZ phases, present only when `gamma > 0` pins them
    /// before the noise pass.
    zz: Option<Diag>,
    /// Amplitude-damping probability over this layer's duration.
    gamma: f64,
    /// `√(1−γ)` — the no-jump Kraus factor on excited amplitudes.
    sqrt_keep: f64,
    /// Phase-flip probability over this layer's duration.
    p_flip: f64,
}

/// A Monte-Carlo trajectory program: the plan resolved as in
/// [`PlanProgram`], plus per-layer decoherence probabilities. One compiled
/// program serves every trajectory — and is `Sync`, so trajectories fan
/// out over threads against shared precompiled state.
#[derive(Clone, Debug)]
pub struct TrajectoryProgram {
    n: usize,
    layers: Vec<TrajLayer>,
    /// The plan's final virtual rotations.
    tail: Option<Diag>,
}

impl TrajectoryProgram {
    /// Precompiles the plan under ZZ crosstalk and decoherence.
    pub fn compile(
        plan: &SchedulePlan,
        topo: &Topology,
        model: &ZzErrorModel,
        deco: &Decoherence,
        durations: &GateDurations,
    ) -> Self {
        let n = plan.qubit_count();
        let x90 = mat4(&zz_quantum::gates::x90());
        let zx90 = mat16(&zz_quantum::gates::zx90());
        let mut layers: Vec<TrajLayer> = Vec::with_capacity(plan.layers.len());
        let mut carry_rz: Vec<(usize, f64)> = Vec::new();
        let mut carry_zz: Vec<(usize, usize, f64)> = Vec::new();
        let mut naive = 0u64;
        let mut emitted = 0u64;
        for layer in &plan.layers {
            let dt = layer.duration(durations);
            let gamma = deco.gamma(dt);
            let p_flip = deco.phase_flip(dt);
            let (gates, inline_rz) = resolve_gates(n, layer, &x90, &zx90);
            let before = rz_terms(n, &layer.rz_before);
            naive += !before.is_empty() as u64 + !inline_rz.is_empty() as u64;
            carry_rz.extend(before);
            carry_rz.extend(inline_rz);
            let zz = zz_terms(n, layer, topo, model, dt);
            naive += !zz.is_empty() as u64;
            if gates.is_empty() && gamma == 0.0 && p_flip == 0.0 {
                // No kernels, no noise draws: the layer is pure commuting
                // diagonal and collapses into the carry.
                carry_zz.extend(zz);
                continue;
            }
            let pre = Diag::build(
                n,
                std::mem::take(&mut carry_rz),
                std::mem::take(&mut carry_zz),
            );
            emitted += pre.is_some() as u64;
            let zz_diag = if gamma == 0.0 {
                // Jump-free layer: ZZ phases slide past the noise pass.
                carry_zz = zz;
                None
            } else {
                let d = Diag::build(n, Vec::new(), zz);
                emitted += d.is_some() as u64;
                d
            };
            layers.push(TrajLayer {
                pre,
                gates,
                zz: zz_diag,
                gamma,
                sqrt_keep: (1.0 - gamma).sqrt(),
                p_flip,
            });
        }
        let final_rz = rz_terms(n, &plan.final_rz);
        naive += !final_rz.is_empty() as u64;
        carry_rz.extend(final_rz);
        let tail = Diag::build(n, carry_rz, carry_zz);
        emitted += tail.is_some() as u64;
        metrics::record_fused(naive.saturating_sub(emitted));
        TrajectoryProgram { n, layers, tail }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Runs one trajectory: ZZ phases exactly, decoherence by sampling
    /// Kraus operators per qubit per layer. Delegates to the batched
    /// engine with a single lane, so the scalar and batched paths share
    /// one semantics by construction.
    pub fn run(&self, rng: &mut StdRng) -> StateVector {
        let mut batch = BatchedState::zero(self.n, 1);
        self.evolve(&mut batch, std::slice::from_mut(rng));
        StateVector::from_vector(Vector::from_vec(batch.lane_amplitudes(0)))
    }

    /// The shared evolution core: applies every layer's diagonals, gates
    /// and fused noise pass to `batch`, lane `t` drawing from `rngs[t]`.
    /// Returns the number of kernel sweeps performed.
    ///
    /// Per noisy layer the decoherence channel costs **three** sweeps
    /// regardless of the qubit count: one read pass collects every
    /// qubit's excited population, the per-qubit Kraus draws happen in
    /// coefficient space, and one factored pass applies all damping
    /// normalizations, dephasing signs and jump permutations at once
    /// (see [`BatchedState::apply_factored_noise`]). Jump probabilities
    /// and normalizations both read the layer-entry populations, so the
    /// probability of each sampled Kraus branch still cancels its
    /// normalization exactly — the fidelity estimator stays unbiased.
    ///
    /// Every per-lane arithmetic sequence — draws, coefficients, factor
    /// products, amplitude updates — depends only on that lane's own
    /// stream and is independent of the batch width, which is what makes
    /// [`mean_fidelity_batched`] bit-identical across widths.
    ///
    /// [`mean_fidelity_batched`]: Self::mean_fidelity_batched
    fn evolve(&self, batch: &mut BatchedState, rngs: &mut [StdRng]) -> u64 {
        let n = self.n;
        let width = batch.lanes();
        debug_assert_eq!(rngs.len(), width);
        let mut sweeps = 0u64;
        let mut pops = vec![0.0; n * width];
        let mut row = vec![0.0; width];
        let mut coeffs = vec![1.0; n * 2 * width];
        let mut jumps = vec![0usize; width];
        let (mut factors, mut tmp) = (Vec::new(), Vec::new());
        let (mut scratch_re, mut scratch_im) = (Vec::new(), Vec::new());
        for layer in &self.layers {
            if let Some(diag) = &layer.pre {
                sweeps += diag.apply_batched(batch);
            }
            for gate in &layer.gates {
                gate.apply_batched(batch);
                sweeps += 1;
            }
            if let Some(diag) = &layer.zz {
                sweeps += diag.apply_batched(batch);
            }
            if layer.gamma == 0.0 && layer.p_flip == 0.0 {
                continue;
            }
            if layer.gamma > 0.0 {
                batch.excited_populations(&mut pops, &mut row);
                sweeps += 1;
            }
            jumps.fill(0);
            for q in 0..n {
                let mask = mask_of(n, q);
                let pair = &mut coeffs[q * 2 * width..(q + 1) * 2 * width];
                let (c_lo, c_hi) = pair.split_at_mut(width);
                if layer.gamma > 0.0 {
                    let p_row = &pops[q * width..(q + 1) * width];
                    for t in 0..width {
                        let p_exc = p_row[t];
                        if rngs[t].gen_range(0.0..1.0) < layer.gamma * p_exc {
                            jumps[t] |= mask;
                            c_lo[t] = 1.0 / p_exc.sqrt();
                            c_hi[t] = 0.0;
                        } else {
                            let inv_norm = 1.0 / (1.0 - layer.gamma * p_exc).sqrt();
                            c_lo[t] = inv_norm;
                            c_hi[t] = layer.sqrt_keep * inv_norm;
                        }
                    }
                } else {
                    c_lo.fill(1.0);
                    c_hi.fill(1.0);
                }
                if layer.p_flip > 0.0 {
                    for t in 0..width {
                        if rngs[t].gen_range(0.0..1.0) < layer.p_flip {
                            c_hi[t] = -c_hi[t];
                        }
                    }
                }
            }
            BatchedState::expand_factors(n, width, &coeffs, &mut factors, &mut tmp);
            batch.apply_factored_noise(&factors, &jumps, &mut scratch_re, &mut scratch_im);
            sweeps += 1;
        }
        if let Some(diag) = &self.tail {
            sweeps += diag.apply_batched(batch);
        }
        sweeps
    }

    /// Runs trajectories `first..first + width` in one batched sweep and
    /// returns their fidelities against `ideal`, in trajectory order.
    ///
    /// Lane `t` draws from its own generator seeded by
    /// [`trajectory_seed`]`(seed, first + t)`, exactly as the scalar fan
    /// does.
    fn run_batch(&self, ideal: &[c64], seed: u64, first: usize, width: usize) -> Vec<f64> {
        let started = Instant::now();
        let mut batch = BatchedState::zero(self.n, width);
        let mut rngs: Vec<StdRng> = (0..width)
            .map(|t| StdRng::seed_from_u64(trajectory_seed(seed, first + t)))
            .collect();
        let sweeps = self.evolve(&mut batch, &mut rngs) + 1;
        let mut fidelities = vec![0.0; width];
        batch.fidelity_against(ideal, &mut fidelities);
        metrics::record_batch(width as u64, sweeps, started.elapsed());
        fidelities
    }

    /// Mean fidelity against `ideal` over `trajectories` Monte-Carlo runs,
    /// batched [`DEFAULT_BATCH_LANES`] trajectories per kernel sweep and
    /// fanned out over up to `threads` OS threads.
    ///
    /// Trajectory `i` draws from its own generator seeded by
    /// [`trajectory_seed`]`(seed, i)`, and per-trajectory fidelities are
    /// reduced in trajectory order — the result is **bit-identical for any
    /// thread count and any batch width**.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories` is zero.
    pub fn mean_fidelity(
        &self,
        ideal: &StateVector,
        trajectories: usize,
        seed: u64,
        threads: usize,
    ) -> f64 {
        self.mean_fidelity_batched(ideal, trajectories, seed, threads, DEFAULT_BATCH_LANES)
    }

    /// [`mean_fidelity`](Self::mean_fidelity) with an explicit batch
    /// width: trajectories run in batches of `lanes`, whole batches fan
    /// out over the thread pool, and the ordered per-trajectory reduction
    /// is unchanged — so the result is bit-identical for any `threads`
    /// *and* any `lanes` (each lane's arithmetic never mixes with its
    /// neighbours; see [`crate::batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `trajectories` or `lanes` is zero.
    pub fn mean_fidelity_batched(
        &self,
        ideal: &StateVector,
        trajectories: usize,
        seed: u64,
        threads: usize,
        lanes: usize,
    ) -> f64 {
        assert!(trajectories > 0, "at least one trajectory is required");
        assert!(lanes > 0, "at least one batch lane is required");
        let ideal_amps = ideal.amplitudes();
        let batches = trajectories.div_ceil(lanes);
        let per_batch = parallel_map(batches, threads, |b| {
            let first = b * lanes;
            let width = lanes.min(trajectories - first);
            self.run_batch(ideal_amps, seed, first, width)
        });
        let mut sum = 0.0;
        for batch in &per_batch {
            for f in batch {
                sum += f;
            }
        }
        sum / trajectories as f64
    }
}

/// Derives the RNG seed of trajectory `index` from the fan's base seed —
/// a SplitMix64-style mix, so per-trajectory streams are decorrelated and
/// independent of how trajectories are distributed over threads.
pub fn trajectory_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::native::compile_to_native;
    use zz_circuit::{bench, route};
    use zz_sched::{zzx::ZzxConfig, zzx_schedule};

    fn qaoa_plan(topo: &Topology) -> SchedulePlan {
        let c = bench::generate(bench::BenchmarkKind::Qaoa, topo.qubit_count(), 9);
        let native = compile_to_native(&route(&c, topo));
        zzx_schedule(topo, &native, &ZzxConfig::paper_default(topo))
    }

    #[test]
    fn diag_table_and_terms_paths_agree() {
        let n = 4;
        let rz = vec![(mask_of(n, 1), 0.35), (mask_of(n, 3), -0.8)];
        let zz = vec![(mask_of(n, 0), mask_of(n, 2), 0.21)];
        let tabulated = Diag::build(n, rz.clone(), zz.clone()).unwrap();
        assert!(tabulated.table.is_some());
        let mut on_the_fly = tabulated.clone();
        on_the_fly.table = None;

        let mut a = StateVector::zero(n);
        for q in 0..n {
            a.apply_single(&zz_quantum::gates::h(), q);
        }
        let mut b = a.clone();
        tabulated.apply(&mut a);
        on_the_fly.apply(&mut b);
        let diff: f64 = a
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-15, "table vs terms diverged by {diff}");
    }

    #[test]
    fn empty_diag_is_elided() {
        assert!(Diag::build(3, Vec::new(), Vec::new()).is_none());
        assert!(Diag::build(3, vec![(1, 0.1)], Vec::new()).is_some());
    }

    #[test]
    fn ideal_program_matches_plan_unitary() {
        let topo = Topology::grid(2, 2);
        let plan = qaoa_plan(&topo);
        let sv = PlanProgram::ideal(&plan).run();
        let direct = plan
            .unitary()
            .mul_vec(&zz_quantum::states::zero_state(plan.qubit_count()));
        let f = sv.to_vector().fidelity(&direct.normalized());
        assert!(f > 1.0 - 1e-10, "fidelity {f}");
    }

    #[test]
    fn trajectory_with_no_decoherence_matches_deterministic_run() {
        let topo = Topology::grid(2, 3);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0)).with_residual(0.05);
        let d = GateDurations::standard();
        // Huge T1/T2 ⇒ γ and p are numerically 0 ⇒ no random draws at all.
        let deco = Decoherence::new(f64::INFINITY, f64::INFINITY);
        let det = PlanProgram::compile(&plan, &topo, &model, &d).run();
        let mut rng = StdRng::seed_from_u64(3);
        let traj = TrajectoryProgram::compile(&plan, &topo, &model, &deco, &d).run(&mut rng);
        assert!(det.fidelity(&traj) > 1.0 - 1e-12);
    }

    #[test]
    fn mean_fidelity_is_thread_count_invariant() {
        let topo = Topology::grid(2, 2);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let deco = Decoherence::equal_us(50.0);
        let program =
            TrajectoryProgram::compile(&plan, &topo, &model, &deco, &GateDurations::standard());
        let ideal = PlanProgram::ideal(&plan).run();
        let f1 = program.mean_fidelity(&ideal, 16, 7, 1);
        let f2 = program.mean_fidelity(&ideal, 16, 7, 2);
        let f8 = program.mean_fidelity(&ideal, 16, 7, 8);
        assert_eq!(f1.to_bits(), f2.to_bits());
        assert_eq!(f1.to_bits(), f8.to_bits());
    }

    /// Satellite: above [`DIAG_TABLE_MAX_QUBITS`] the per-term fallback
    /// must agree with the `phase_at` reference semantics — crossing the
    /// boundary at 17 qubits.
    #[test]
    fn diag_fallback_matches_phase_at_above_table_limit() {
        let n = DIAG_TABLE_MAX_QUBITS + 1;
        let rz = vec![(mask_of(n, 2), 0.4), (mask_of(n, 16), -0.15)];
        let zz = vec![
            (mask_of(n, 0), mask_of(n, 9), 0.27),
            (mask_of(n, 5), mask_of(n, 16), -0.08),
        ];
        let diag = Diag::build(n, rz, zz).unwrap();
        assert!(diag.table.is_none(), "17 qubits must use the term fallback");

        let mut sv = StateVector::zero(n);
        for q in [0, 5, 9, 16] {
            sv.apply_single(&zz_quantum::gates::h(), q);
        }
        let expected: Vec<c64> = sv
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(i, &a)| a * c64::cis(diag.phase_at(i)))
            .collect();
        diag.apply(&mut sv);
        let diff = sv
            .amplitudes()
            .iter()
            .zip(&expected)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-12, "fallback vs phase_at diverged by {diff}");
    }

    #[test]
    fn mean_fidelity_is_batch_width_and_thread_invariant() {
        let topo = Topology::grid(2, 2);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0)).with_residual(0.05);
        let deco = Decoherence::equal_us(50.0);
        let program =
            TrajectoryProgram::compile(&plan, &topo, &model, &deco, &GateDurations::standard());
        let ideal = PlanProgram::ideal(&plan).run();
        let reference = program.mean_fidelity_batched(&ideal, 16, 7, 1, 8);
        for lanes in [1, 3, 8, 16] {
            for threads in [1, 2, 8] {
                let f = program.mean_fidelity_batched(&ideal, 16, 7, threads, lanes);
                assert_eq!(
                    reference.to_bits(),
                    f.to_bits(),
                    "lanes={lanes} threads={threads}"
                );
            }
        }
        // The default entry point is the same computation at width 8.
        let default = program.mean_fidelity(&ideal, 16, 7, 2);
        assert_eq!(reference.to_bits(), default.to_bits());
    }

    /// The batched fan replays exactly the scalar per-trajectory draws, so
    /// its mean matches a hand-rolled scalar fan to fp accumulation noise.
    #[test]
    fn batched_fan_matches_scalar_trajectory_fan() {
        let topo = Topology::grid(2, 3);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0)).with_residual(0.05);
        let deco = Decoherence::equal_us(100.0);
        let program =
            TrajectoryProgram::compile(&plan, &topo, &model, &deco, &GateDurations::standard());
        let ideal = PlanProgram::ideal(&plan).run();
        let trajectories = 5;
        let batched = program.mean_fidelity_batched(&ideal, trajectories, 11, 1, 3);
        let mut scalar_sum = 0.0;
        for i in 0..trajectories {
            let mut rng = StdRng::seed_from_u64(trajectory_seed(11, i));
            scalar_sum += ideal.fidelity(&program.run(&mut rng));
        }
        let scalar = scalar_sum / trajectories as f64;
        assert!(
            (batched - scalar).abs() < 1e-12,
            "batched {batched} vs scalar {scalar}"
        );
    }

    #[test]
    fn trajectory_seeds_are_decorrelated() {
        let a = trajectory_seed(7, 0);
        let b = trajectory_seed(7, 1);
        let c = trajectory_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trajectory_seed(7, 0));
    }
}
