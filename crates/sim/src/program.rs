//! Precompiled execution programs for schedule plans.
//!
//! The straight-line executor recomputes a lot of invariant work on every
//! run: which couplings a layer drives, which residual factor each
//! suppressed coupling picks up (an `O(ops)` scan per coupling), the gate
//! matrices (allocated per application), the per-layer durations, and —
//! worst of all — one full `O(2^n)` amplitude sweep *per coupling per
//! layer* for the ZZ phases. A [`PlanProgram`] resolves all of that once
//! per `(SchedulePlan, Topology, ZzErrorModel, GateDurations)` tuple:
//!
//! * every layer's undriven-coupling ZZ phases and the adjacent virtual
//!   rotations are **fused into a single diagonal** — one `O(2^n)` pass
//!   per layer (tabulated as `2^n` phases for registers up to
//!   [`DIAG_TABLE_MAX_QUBITS`] qubits, evaluated on the fly above that),
//! * gate matrices are resolved to branch-free statevector kernels with
//!   precomputed bit masks,
//! * the [`TrajectoryProgram`] variant additionally precomputes per-layer
//!   decoherence probabilities and samples Kraus jumps with analytic
//!   renormalization (no separate norm pass), and fans trajectories out
//!   over a scoped-thread pool with **deterministic per-trajectory
//!   seeds**, so Monte-Carlo results are bit-identical regardless of the
//!   thread count.
//!
//! The legacy entry points in [`crate::executor`] are thin wrappers over
//! these programs; compile a program directly whenever one plan is run
//! more than once (disorder averages, trajectory fans, parameter sweeps).
//!
//! # Example
//!
//! ```
//! use zz_circuit::{bench, native::compile_to_native, route};
//! use zz_sched::{par_schedule, GateDurations};
//! use zz_sim::executor::ZzErrorModel;
//! use zz_sim::program::PlanProgram;
//! use zz_topology::Topology;
//!
//! let topo = Topology::grid(2, 2);
//! let circuit = bench::generate(bench::BenchmarkKind::Qft, 4, 1);
//! let native = compile_to_native(&route(&circuit, &topo));
//! let plan = par_schedule(&topo, &native);
//!
//! let ideal = PlanProgram::ideal(&plan).run();
//! let model = ZzErrorModel::uniform(&topo, zz_sim::khz(200.0));
//! let noisy = PlanProgram::compile(&plan, &topo, &model, &GateDurations::standard());
//! // The program is reusable: every `run()` replays the precompiled steps.
//! let f = ideal.fidelity(&noisy.run());
//! assert!(f > 0.0 && f <= 1.0 + 1e-9);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zz_circuit::native::NativeOp;
use zz_linalg::{c64, Matrix};
use zz_sched::{GateDurations, Layer, SchedulePlan};
use zz_topology::Topology;

use crate::density::Decoherence;
use crate::executor::{coupling_residual, driven_couplings, ZzErrorModel};
use crate::StateVector;
use zz_pool::parallel_map;

/// Largest register whose fused layer diagonals are tabulated as dense
/// `2^n` complex tables (16 qubits = 1 MiB per layer). Larger registers
/// evaluate the fused phase terms on the fly — still one pass per layer,
/// but with an `O(terms)` phase sum per amplitude instead of a lookup.
pub const DIAG_TABLE_MAX_QUBITS: usize = 16;

/// One resolved gate application: matrix entries unpacked into a fixed
/// array and qubit indices pre-translated to amplitude bit masks.
#[derive(Clone, Debug)]
enum GateApp {
    /// A virtual rotation that survived among the layer's ops.
    Rz { q: usize, theta: f64 },
    /// A single-qubit pulse.
    Single { mask: usize, m: [c64; 4] },
    /// A two-qubit pulse; `ba` is the gate's most significant factor.
    Two { ba: usize, bb: usize, m: [c64; 16] },
}

impl GateApp {
    #[inline]
    fn apply(&self, sv: &mut StateVector) {
        match self {
            GateApp::Rz { q, theta } => sv.apply_rz(*theta, *q),
            GateApp::Single { mask, m } => sv.kernel_single(m, *mask),
            GateApp::Two { ba, bb, m } => sv.kernel_two(m, *ba, *bb),
        }
    }
}

/// A fused diagonal: the sum of a set of commuting Rz and ZZ phases,
/// applied in one amplitude sweep.
#[derive(Clone, Debug)]
struct Diag {
    /// `(mask, θ/2)` — adds `+θ/2` where the bit is set, `−θ/2` where
    /// it is clear (the `diag(e^{−iθ/2}, e^{iθ/2})` convention of
    /// [`StateVector::apply_rz`]).
    rz: Vec<(usize, f64)>,
    /// `(mask_u, mask_v, φ)` — adds `−φ` where the two bits agree, `+φ`
    /// where they differ ([`StateVector::apply_zz_phase`]).
    zz: Vec<(usize, usize, f64)>,
    /// Dense `e^{i·phase}` table for small registers.
    table: Option<Vec<c64>>,
}

impl Diag {
    /// Builds a fused diagonal, or `None` when there is nothing to apply.
    fn build(n: usize, rz: Vec<(usize, f64)>, zz: Vec<(usize, usize, f64)>) -> Option<Diag> {
        if rz.is_empty() && zz.is_empty() {
            return None;
        }
        let mut diag = Diag {
            rz,
            zz,
            table: None,
        };
        if n <= DIAG_TABLE_MAX_QUBITS {
            diag.table = Some(diag.build_table(1usize << n));
        }
        Some(diag)
    }

    /// Tabulates the fused diagonal multiplicatively: each term contributes
    /// a two-valued `e^{±iφ}` pattern, folded in with strided branch-free
    /// passes (only 2 `cis` evaluations per term — no per-entry sin/cos).
    /// The first term initializes the table outright, so an `m`-term
    /// diagonal costs `m − 1` multiply passes plus one fill.
    fn build_table(&self, size: usize) -> Vec<c64> {
        let mut table = vec![c64::ONE; size];
        let mut started = false;
        for &(mask, half) in &self.rz {
            let (lo, hi) = (c64::cis(-half), c64::cis(half));
            let block = mask << 1;
            let mut base = 0;
            while base < size {
                if started {
                    for t in &mut table[base..base + mask] {
                        *t *= lo;
                    }
                    for t in &mut table[base + mask..base + block] {
                        *t *= hi;
                    }
                } else {
                    table[base..base + mask].fill(lo);
                    table[base + mask..base + block].fill(hi);
                }
                base += block;
            }
            started = true;
        }
        for &(mu, mv, phi) in &self.zz {
            let factors = [c64::cis(-phi), c64::cis(phi)];
            if started {
                for (i, t) in table.iter_mut().enumerate() {
                    let differ = ((i & mu != 0) != (i & mv != 0)) as usize;
                    *t *= factors[differ];
                }
            } else {
                for (i, t) in table.iter_mut().enumerate() {
                    let differ = ((i & mu != 0) != (i & mv != 0)) as usize;
                    *t = factors[differ];
                }
                started = true;
            }
        }
        table
    }

    /// Total phase accumulated by basis state `i`.
    fn phase_at(&self, i: usize) -> f64 {
        let mut phase = 0.0;
        for &(mask, half) in &self.rz {
            phase += if i & mask != 0 { half } else { -half };
        }
        for &(mu, mv, phi) in &self.zz {
            let same = (i & mu == 0) == (i & mv == 0);
            phase += if same { -phi } else { phi };
        }
        phase
    }

    /// Applies the diagonal in a single sweep.
    fn apply(&self, sv: &mut StateVector) {
        match &self.table {
            Some(table) => sv.apply_diagonal(table),
            None => {
                for (i, a) in sv.amps_mut().iter_mut().enumerate() {
                    *a *= c64::cis(self.phase_at(i));
                }
            }
        }
    }
}

#[inline]
fn mask_of(n: usize, q: usize) -> usize {
    1usize << (n - 1 - q)
}

fn mat4(m: &Matrix) -> [c64; 4] {
    let s = m.as_slice();
    [s[0], s[1], s[2], s[3]]
}

fn mat16(m: &Matrix) -> [c64; 16] {
    let mut out = [c64::ZERO; 16];
    out.copy_from_slice(m.as_slice());
    out
}

/// Resolves a layer's physical ops to kernels (identity pulses vanish —
/// they only matter for suppression bookkeeping, already folded into the
/// layer's metrics).
fn resolve_gates(n: usize, layer: &Layer, x90: &[c64; 4], zx90: &[c64; 16]) -> Vec<GateApp> {
    let mut gates = Vec::with_capacity(layer.ops.len());
    for op in &layer.ops {
        match *op {
            NativeOp::Rz { qubit, theta } => gates.push(GateApp::Rz { q: qubit, theta }),
            NativeOp::X90 { qubit } => gates.push(GateApp::Single {
                mask: mask_of(n, qubit),
                m: *x90,
            }),
            NativeOp::Zx90 { control, target } => gates.push(GateApp::Two {
                ba: mask_of(n, control),
                bb: mask_of(n, target),
                m: *zx90,
            }),
            NativeOp::Id { .. } => {}
        }
    }
    gates
}

/// Converts `(qubit, θ)` rotations to `(mask, θ/2)` phase terms, dropping
/// exact zeros (which the executor's `apply_rz` applies as exactly 1).
fn rz_terms(n: usize, rz: &[(usize, f64)]) -> Vec<(usize, f64)> {
    rz.iter()
        .filter(|&&(_, theta)| theta != 0.0)
        .map(|&(q, theta)| (mask_of(n, q), theta / 2.0))
        .collect()
}

/// The layer's undriven-coupling ZZ phase terms: residual factors are
/// resolved here, once per program, instead of once per coupling per run.
fn zz_terms(
    n: usize,
    layer: &Layer,
    topo: &Topology,
    model: &ZzErrorModel,
    duration: f64,
) -> Vec<(usize, usize, f64)> {
    let driven = driven_couplings(layer, topo);
    let mut terms = Vec::new();
    for (e, &(u, v)) in topo.couplings().iter().enumerate() {
        if driven[e] {
            continue;
        }
        let factor = if layer.metrics.suppressed[e] {
            coupling_residual(layer, u, v, &model.residuals)
        } else {
            1.0
        };
        let phi = model.lambdas[e] * factor * duration;
        if phi != 0.0 {
            terms.push((mask_of(n, u), mask_of(n, v), phi));
        }
    }
    terms
}

/// One precompiled layer of a [`PlanProgram`]: the fused pre-gate diagonal
/// (this layer's virtual rotations plus the *previous* layer's ZZ phases,
/// which are adjacent commuting diagonals in the deterministic run) and
/// the layer's resolved gate kernels.
#[derive(Clone, Debug)]
pub struct LayerProgram {
    pre: Option<Diag>,
    gates: Vec<GateApp>,
}

/// A deterministic execution program: the whole plan resolved to a flat
/// sequence of fused diagonals and gate kernels. Compile once, [`run`]
/// many times.
///
/// [`run`]: PlanProgram::run
#[derive(Clone, Debug)]
pub struct PlanProgram {
    n: usize,
    layers: Vec<LayerProgram>,
    /// Trailing diagonal: the last layer's ZZ phases plus the plan's
    /// final virtual rotations.
    tail: Option<Diag>,
}

impl PlanProgram {
    /// Precompiles the error-free reference program (no ZZ phases at all).
    pub fn ideal(plan: &SchedulePlan) -> Self {
        Self::build(plan, None)
    }

    /// Precompiles the plan under the given ZZ-crosstalk model: driven
    /// couplings, residual factors, layer durations and fused phase
    /// diagonals are all resolved here, never during [`run`](Self::run).
    pub fn compile(
        plan: &SchedulePlan,
        topo: &Topology,
        model: &ZzErrorModel,
        durations: &GateDurations,
    ) -> Self {
        Self::build(plan, Some((topo, model, durations)))
    }

    fn build(
        plan: &SchedulePlan,
        noise: Option<(&Topology, &ZzErrorModel, &GateDurations)>,
    ) -> Self {
        let n = plan.qubit_count();
        let x90 = mat4(&zz_quantum::gates::x90());
        let zx90 = mat16(&zz_quantum::gates::zx90());
        let mut layers = Vec::with_capacity(plan.layers.len());
        // ZZ phases of the previous layer, carried forward into the next
        // layer's pre-gate diagonal (diagonals commute, so fusing across
        // the layer boundary is exact).
        let mut carry: Vec<(usize, usize, f64)> = Vec::new();
        for layer in &plan.layers {
            let pre = Diag::build(n, rz_terms(n, &layer.rz_before), std::mem::take(&mut carry));
            let gates = resolve_gates(n, layer, &x90, &zx90);
            if let Some((topo, model, durations)) = noise {
                carry = zz_terms(n, layer, topo, model, layer.duration(durations));
            }
            layers.push(LayerProgram { pre, gates });
        }
        let tail = Diag::build(n, rz_terms(n, &plan.final_rz), carry);
        PlanProgram { n, layers, tail }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// The precompiled layers.
    pub fn layers(&self) -> &[LayerProgram] {
        &self.layers
    }

    /// Executes the program from `|0…0⟩`.
    pub fn run(&self) -> StateVector {
        let mut sv = StateVector::zero(self.n);
        for layer in &self.layers {
            if let Some(diag) = &layer.pre {
                diag.apply(&mut sv);
            }
            for gate in &layer.gates {
                gate.apply(&mut sv);
            }
        }
        if let Some(diag) = &self.tail {
            diag.apply(&mut sv);
        }
        sv
    }
}

/// One precompiled Monte-Carlo layer: unlike the deterministic layout, the
/// ZZ diagonal must stay inside its own layer (amplitude-damping jumps do
/// not commute with diagonals), and the decoherence probabilities are
/// resolved per layer.
#[derive(Clone, Debug)]
struct TrajLayer {
    rz: Option<Diag>,
    gates: Vec<GateApp>,
    zz: Option<Diag>,
    /// Amplitude-damping probability over this layer's duration.
    gamma: f64,
    /// `√(1−γ)` — the no-jump Kraus factor on excited amplitudes.
    sqrt_keep: f64,
    /// Phase-flip probability over this layer's duration.
    p_flip: f64,
}

/// A Monte-Carlo trajectory program: the plan resolved as in
/// [`PlanProgram`], plus per-layer decoherence probabilities. One compiled
/// program serves every trajectory — and is `Sync`, so trajectories fan
/// out over threads against shared precompiled state.
#[derive(Clone, Debug)]
pub struct TrajectoryProgram {
    n: usize,
    layers: Vec<TrajLayer>,
    /// The plan's final virtual rotations.
    tail: Option<Diag>,
}

impl TrajectoryProgram {
    /// Precompiles the plan under ZZ crosstalk and decoherence.
    pub fn compile(
        plan: &SchedulePlan,
        topo: &Topology,
        model: &ZzErrorModel,
        deco: &Decoherence,
        durations: &GateDurations,
    ) -> Self {
        let n = plan.qubit_count();
        let x90 = mat4(&zz_quantum::gates::x90());
        let zx90 = mat16(&zz_quantum::gates::zx90());
        let layers = plan
            .layers
            .iter()
            .map(|layer| {
                let dt = layer.duration(durations);
                let gamma = deco.gamma(dt);
                TrajLayer {
                    rz: Diag::build(n, rz_terms(n, &layer.rz_before), Vec::new()),
                    gates: resolve_gates(n, layer, &x90, &zx90),
                    zz: Diag::build(n, Vec::new(), zz_terms(n, layer, topo, model, dt)),
                    gamma,
                    sqrt_keep: (1.0 - gamma).sqrt(),
                    p_flip: deco.phase_flip(dt),
                }
            })
            .collect();
        let tail = Diag::build(n, rz_terms(n, &plan.final_rz), Vec::new());
        TrajectoryProgram { n, layers, tail }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Runs one trajectory: ZZ phases exactly, decoherence by sampling
    /// Kraus operators per qubit per layer (an exact unraveling of the
    /// amplitude-damping + dephasing channel).
    pub fn run(&self, rng: &mut StdRng) -> StateVector {
        let mut sv = StateVector::zero(self.n);
        for layer in &self.layers {
            if let Some(diag) = &layer.rz {
                diag.apply(&mut sv);
            }
            for gate in &layer.gates {
                gate.apply(&mut sv);
            }
            if let Some(diag) = &layer.zz {
                diag.apply(&mut sv);
            }
            for q in 0..self.n {
                sample_amplitude_damping(&mut sv, q, layer.gamma, layer.sqrt_keep, rng);
                sample_dephasing(&mut sv, q, layer.p_flip, rng);
            }
        }
        if let Some(diag) = &self.tail {
            diag.apply(&mut sv);
        }
        sv
    }

    /// Mean fidelity against `ideal` over `trajectories` Monte-Carlo runs,
    /// fanned out over up to `threads` OS threads.
    ///
    /// Trajectory `i` draws from its own generator seeded by
    /// [`trajectory_seed`]`(seed, i)`, and per-trajectory fidelities are
    /// reduced in trajectory order — the result is **bit-identical for any
    /// thread count**.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories` is zero.
    pub fn mean_fidelity(
        &self,
        ideal: &StateVector,
        trajectories: usize,
        seed: u64,
        threads: usize,
    ) -> f64 {
        assert!(trajectories > 0, "at least one trajectory is required");
        let fidelities = parallel_map(trajectories, threads, |i| {
            let mut rng = StdRng::seed_from_u64(trajectory_seed(seed, i));
            ideal.fidelity(&self.run(&mut rng))
        });
        fidelities.iter().sum::<f64>() / trajectories as f64
    }
}

/// Derives the RNG seed of trajectory `index` from the fan's base seed —
/// a SplitMix64-style mix, so per-trajectory streams are decorrelated and
/// independent of how trajectories are distributed over threads.
pub fn trajectory_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples the amplitude-damping channel on qubit `q` and renormalizes
/// analytically: the post-Kraus norm is known in closed form
/// (`1 − γ·p_exc` for the no-jump branch, `γ·p_exc` for the jump), so no
/// norm sweep is needed.
fn sample_amplitude_damping(
    sv: &mut StateVector,
    q: usize,
    gamma: f64,
    sqrt_keep: f64,
    rng: &mut StdRng,
) {
    if gamma == 0.0 {
        return;
    }
    let p_excited = sv.excited_population(q);
    let mask = sv.qubit_mask(q);
    let block = mask << 1;
    let amps = sv.amps_mut();
    if rng.gen_range(0.0..1.0) < gamma * p_excited {
        // Jump: K₁ maps |1⟩ → |0⟩; normalized by √(γ·p_exc), the γ cancels.
        let scale = 1.0 / p_excited.sqrt();
        let mut base = 0;
        while base < amps.len() {
            for i in base..base + mask {
                let j = i | mask;
                amps[i] = amps[j] * scale;
                amps[j] = c64::ZERO;
            }
            base += block;
        }
    } else {
        // No jump: K₀ = diag(1, √(1−γ)), normalized by √(1 − γ·p_exc).
        let inv_norm = 1.0 / (1.0 - gamma * p_excited).sqrt();
        let keep = sqrt_keep * inv_norm;
        let mut base = 0;
        while base < amps.len() {
            for i in base..base + mask {
                let j = i | mask;
                amps[i] = amps[i] * inv_norm;
                amps[j] = amps[j] * keep;
            }
            base += block;
        }
    }
}

/// Samples the dephasing channel on qubit `q`: with probability `p` apply
/// `Z` (both branches are proportional to unitaries — no renormalization).
fn sample_dephasing(sv: &mut StateVector, q: usize, p: f64, rng: &mut StdRng) {
    if p == 0.0 {
        return;
    }
    if rng.gen_range(0.0..1.0) < p {
        let mask = sv.qubit_mask(q);
        let block = mask << 1;
        let amps = sv.amps_mut();
        let mut base = mask;
        while base < amps.len() {
            for a in &mut amps[base..base + mask] {
                *a = -*a;
            }
            base += block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::native::compile_to_native;
    use zz_circuit::{bench, route};
    use zz_sched::{zzx::ZzxConfig, zzx_schedule};

    fn qaoa_plan(topo: &Topology) -> SchedulePlan {
        let c = bench::generate(bench::BenchmarkKind::Qaoa, topo.qubit_count(), 9);
        let native = compile_to_native(&route(&c, topo));
        zzx_schedule(topo, &native, &ZzxConfig::paper_default(topo))
    }

    #[test]
    fn diag_table_and_terms_paths_agree() {
        let n = 4;
        let rz = vec![(mask_of(n, 1), 0.35), (mask_of(n, 3), -0.8)];
        let zz = vec![(mask_of(n, 0), mask_of(n, 2), 0.21)];
        let tabulated = Diag::build(n, rz.clone(), zz.clone()).unwrap();
        assert!(tabulated.table.is_some());
        let mut on_the_fly = tabulated.clone();
        on_the_fly.table = None;

        let mut a = StateVector::zero(n);
        for q in 0..n {
            a.apply_single(&zz_quantum::gates::h(), q);
        }
        let mut b = a.clone();
        tabulated.apply(&mut a);
        on_the_fly.apply(&mut b);
        let diff: f64 = a
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-15, "table vs terms diverged by {diff}");
    }

    #[test]
    fn empty_diag_is_elided() {
        assert!(Diag::build(3, Vec::new(), Vec::new()).is_none());
        assert!(Diag::build(3, vec![(1, 0.1)], Vec::new()).is_some());
    }

    #[test]
    fn ideal_program_matches_plan_unitary() {
        let topo = Topology::grid(2, 2);
        let plan = qaoa_plan(&topo);
        let sv = PlanProgram::ideal(&plan).run();
        let direct = plan
            .unitary()
            .mul_vec(&zz_quantum::states::zero_state(plan.qubit_count()));
        let f = sv.to_vector().fidelity(&direct.normalized());
        assert!(f > 1.0 - 1e-10, "fidelity {f}");
    }

    #[test]
    fn trajectory_with_no_decoherence_matches_deterministic_run() {
        let topo = Topology::grid(2, 3);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0)).with_residual(0.05);
        let d = GateDurations::standard();
        // Huge T1/T2 ⇒ γ and p are numerically 0 ⇒ no random draws at all.
        let deco = Decoherence::new(f64::INFINITY, f64::INFINITY);
        let det = PlanProgram::compile(&plan, &topo, &model, &d).run();
        let mut rng = StdRng::seed_from_u64(3);
        let traj = TrajectoryProgram::compile(&plan, &topo, &model, &deco, &d).run(&mut rng);
        assert!(det.fidelity(&traj) > 1.0 - 1e-12);
    }

    #[test]
    fn mean_fidelity_is_thread_count_invariant() {
        let topo = Topology::grid(2, 2);
        let plan = qaoa_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let deco = Decoherence::equal_us(50.0);
        let program =
            TrajectoryProgram::compile(&plan, &topo, &model, &deco, &GateDurations::standard());
        let ideal = PlanProgram::ideal(&plan).run();
        let f1 = program.mean_fidelity(&ideal, 16, 7, 1);
        let f2 = program.mean_fidelity(&ideal, 16, 7, 2);
        let f8 = program.mean_fidelity(&ideal, 16, 7, 8);
        assert_eq!(f1.to_bits(), f2.to_bits());
        assert_eq!(f1.to_bits(), f8.to_bits());
    }

    #[test]
    fn trajectory_seeds_are_decorrelated() {
        let a = trajectory_seed(7, 0);
        let b = trajectory_seed(7, 1);
        let c = trajectory_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trajectory_seed(7, 0));
    }
}
