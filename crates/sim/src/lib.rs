//! Statevector and density-matrix simulation with ZZ crosstalk and
//! decoherence.
//!
//! This crate executes [`zz_sched::SchedulePlan`]s under the paper's error
//! model:
//!
//! * **ZZ crosstalk** — during every layer, each coupling `(u,v)` applies
//!   the commuting phase `exp(−i λ_eff T_layer Z_u Z_v)`. Couplings whose
//!   crosstalk the layer's pulses suppress (cross-region) use
//!   `λ_eff = r·λ` with the method's calibrated residual factor `r`;
//!   unsuppressed (intra-region) couplings use the full `λ`. This is the
//!   circuit-level factorization of the paper's Hamiltonian-level model
//!   (see `DESIGN.md`, substitution 2).
//! * **Decoherence** — amplitude damping (`T1`) and pure dephasing (from
//!   `T2`) per qubit per layer, simulated exactly on density matrices
//!   ([`density`], up to [`density::EXACT_MAX_QUBITS`] qubits) and by
//!   Monte-Carlo trajectory unraveling on state vectors ([`executor`])
//!   for larger registers.
//!
//! Execution goes through precompiled programs ([`program`]): a plan is
//! resolved once into fused phase diagonals and branch-free gate kernels,
//! then replayed — deterministically ([`program::PlanProgram`]) or as
//! parallel Monte-Carlo trajectories with thread-count-independent
//! results ([`program::TrajectoryProgram`]). Trajectory fans run through
//! the structure-of-arrays [`batch`] store, which sweeps a whole batch of
//! trajectories per amplitude visit; [`metrics`] exposes engine counters
//! without depending on the observability stack. The [`executor`]
//! functions are one-shot wrappers over those programs.
//!
//! # Example
//!
//! ```
//! use zz_circuit::{bench, native::compile_to_native, route};
//! use zz_sched::{par_schedule, GateDurations};
//! use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};
//! use zz_topology::Topology;
//!
//! let topo = Topology::grid(2, 2);
//! let circuit = bench::generate(bench::BenchmarkKind::Qft, 4, 1);
//! let native = compile_to_native(&route(&circuit, &topo));
//! let plan = par_schedule(&topo, &native);
//! let model = ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 7);
//! let f = fidelity_under_zz(&plan, &topo, &model, &GateDurations::standard());
//! assert!(f > 0.0 && f <= 1.0 + 1e-9);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod density;
pub mod executor;
pub mod metrics;
pub mod program;
pub mod statevector;

pub use statevector::StateVector;

/// Converts MHz to rad/ns (re-exported convention helper).
pub fn mhz(f: f64) -> f64 {
    2.0 * std::f64::consts::PI * f * 1e-3
}

/// Converts kHz to rad/ns.
pub fn khz(f: f64) -> f64 {
    mhz(f * 1e-3)
}
