//! A small order-preserving scoped-thread pool for Monte-Carlo fan-out.
//!
//! This is the worker-pool idiom of `zz_core::batch::parallel_map`,
//! duplicated here because `zz_core` depends on this crate (the dependency
//! arrow cannot be reversed). Trajectory results are written back into
//! their input slots, so the output order — and therefore any sequential
//! reduction over it — is independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..count)` on up to `threads` OS threads, preserving input
/// order in the output. With `threads <= 1` (or a single item) the work
/// runs inline on the calling thread — same results, no spawn overhead.
pub(crate) fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(
    count: usize,
    threads: usize,
    f: F,
) -> Vec<T> {
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<T>>> = results.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                **slots[i].lock().expect("no poisoned slots") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index computed"))
        .collect()
}

/// The pool width used when callers don't pick one: every available core.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_width() {
        for threads in [1, 2, 8] {
            let out = parallel_map(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }
}
