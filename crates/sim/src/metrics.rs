//! Engine-side instrumentation hooks.
//!
//! `zz_sim` sits *below* `zz_obs` in the crate graph (`zz_obs` depends
//! on `zz_persist`, which depends on this crate), so the engine cannot
//! register metrics into an observability registry directly. Instead it
//! exposes two things:
//!
//! * **process-wide totals** — std-only atomic counters, readable via
//!   [`engine_totals`] without any upstream dependency, and
//! * an [`EngineSink`] trait — upstream layers (the service session)
//!   install sinks via [`register_sink`], and the engine forwards one
//!   event per trajectory batch plus one per compilation. A sink
//!   returns `false` once its backing registry is gone and is pruned on
//!   the next flush.
//!
//! Recording is deliberately coarse: one sink flush per *batch* (tens
//! of milliseconds of kernel work), never per sweep, so instrumentation
//! stays invisible in profiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Receiver for engine events. Implementations must be cheap and
/// lock-light; they are called from worker threads mid-simulation.
///
/// Each method returns whether the sink is still alive — a `false`
/// drops it from the registered set.
pub trait EngineSink: Send + Sync {
    /// One trajectory batch finished: `trajectories` lanes were run,
    /// `kernel_sweeps` full-statevector passes executed, in `elapsed`.
    fn batch(&self, trajectories: u64, kernel_sweeps: u64, elapsed: Duration) -> bool;

    /// A program compilation fused `merges` diagonal sweeps away.
    fn fused_diags(&self, merges: u64) -> bool;
}

/// Running totals since process start (see [`engine_totals`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Monte-Carlo trajectories simulated through the batched engine.
    pub trajectories: u64,
    /// Full-statevector kernel sweeps (single, two-qubit, diagonal,
    /// noise and fidelity passes all count one each).
    pub kernel_sweeps: u64,
    /// Diagonal sweeps eliminated by cross-layer fusion at compile time.
    pub fused_diagonals: u64,
    /// Trajectory batches executed.
    pub batches: u64,
}

static TRAJECTORIES: AtomicU64 = AtomicU64::new(0);
static KERNEL_SWEEPS: AtomicU64 = AtomicU64::new(0);
static FUSED_DIAGONALS: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);

fn sinks() -> &'static Mutex<Vec<Arc<dyn EngineSink>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<dyn EngineSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs a sink that will receive engine events until it reports
/// itself dead (see [`EngineSink`]).
pub fn register_sink(sink: Arc<dyn EngineSink>) {
    sinks()
        .lock()
        .expect("engine sink registry poisoned")
        .push(sink);
}

/// Process-wide engine totals. Always available — no observability
/// stack required — which keeps engine tests dependency-free.
pub fn engine_totals() -> EngineTotals {
    EngineTotals {
        trajectories: TRAJECTORIES.load(Ordering::Relaxed),
        kernel_sweeps: KERNEL_SWEEPS.load(Ordering::Relaxed),
        fused_diagonals: FUSED_DIAGONALS.load(Ordering::Relaxed),
        batches: BATCHES.load(Ordering::Relaxed),
    }
}

/// Records one completed trajectory batch and flushes it to the sinks.
pub(crate) fn record_batch(trajectories: u64, kernel_sweeps: u64, elapsed: Duration) {
    TRAJECTORIES.fetch_add(trajectories, Ordering::Relaxed);
    KERNEL_SWEEPS.fetch_add(kernel_sweeps, Ordering::Relaxed);
    BATCHES.fetch_add(1, Ordering::Relaxed);
    let mut sinks = sinks().lock().expect("engine sink registry poisoned");
    sinks.retain(|s| s.batch(trajectories, kernel_sweeps, elapsed));
}

/// Records diagonal sweeps eliminated during compilation.
pub(crate) fn record_fused(merges: u64) {
    if merges == 0 {
        return;
    }
    FUSED_DIAGONALS.fetch_add(merges, Ordering::Relaxed);
    let mut sinks = sinks().lock().expect("engine sink registry poisoned");
    sinks.retain(|s| s.fused_diags(merges));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        batches: AtomicU64,
        fused: AtomicU64,
        alive: std::sync::atomic::AtomicBool,
    }

    impl EngineSink for Probe {
        fn batch(&self, trajectories: u64, _sweeps: u64, _elapsed: Duration) -> bool {
            self.batches.fetch_add(trajectories, Ordering::Relaxed);
            self.alive.load(Ordering::Relaxed)
        }
        fn fused_diags(&self, merges: u64) -> bool {
            self.fused.fetch_add(merges, Ordering::Relaxed);
            self.alive.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn sinks_receive_events_and_dead_sinks_are_pruned() {
        let probe = Arc::new(Probe {
            batches: AtomicU64::new(0),
            fused: AtomicU64::new(0),
            alive: std::sync::atomic::AtomicBool::new(true),
        });
        register_sink(probe.clone());

        let before = engine_totals();
        record_batch(4, 10, Duration::from_micros(5));
        record_fused(3);
        let after = engine_totals();

        assert!(probe.batches.load(Ordering::Relaxed) >= 4);
        assert!(probe.fused.load(Ordering::Relaxed) >= 3);
        assert!(after.trajectories >= before.trajectories + 4);
        assert!(after.kernel_sweeps >= before.kernel_sweeps + 10);
        assert!(after.fused_diagonals >= before.fused_diagonals + 3);
        assert!(after.batches > before.batches);

        // Kill the probe: the next flush must prune it.
        probe.alive.store(false, Ordering::Relaxed);
        record_batch(1, 1, Duration::ZERO);
        let count = probe.batches.load(Ordering::Relaxed);
        record_batch(1, 1, Duration::ZERO);
        assert_eq!(probe.batches.load(Ordering::Relaxed), count);
    }
}
