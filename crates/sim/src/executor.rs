//! Executes schedule plans under the ZZ-crosstalk and decoherence model.
//!
//! These entry points are thin wrappers over the precompiled programs of
//! [`crate::program`]: each call compiles a [`PlanProgram`] or
//! [`TrajectoryProgram`] and runs it once. When one plan is executed many
//! times (disorder averages, trajectory fans, sweeps), compile the program
//! yourself and reuse it — that is where the engine's speed comes from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zz_circuit::native::NativeOp;
use zz_linalg::Matrix;
use zz_sched::{GateDurations, Layer, SchedulePlan};
use zz_topology::Topology;

use crate::density::{amplitude_damping, dephasing, Decoherence, DensityMatrix, EXACT_MAX_QUBITS};
use crate::program::{PlanProgram, TrajectoryProgram};
use crate::StateVector;

/// Cross-region residual factors per pulse kind: the fraction of `λ` that
/// survives on a suppressed coupling when the pulsed qubit carries the
/// given pulse. Measured by the pulse-level calibration in `zz-core`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResidualTable {
    /// Residual next to an `X90` pulse.
    pub x90: f64,
    /// Residual next to an identity pulse.
    pub id: f64,
    /// Residual next to the control qubit of a `ZX90`.
    pub zx90_control: f64,
    /// Residual next to the target qubit of a `ZX90`.
    pub zx90_target: f64,
}

impl ResidualTable {
    /// The same factor for every pulse kind.
    pub fn uniform(r: f64) -> Self {
        ResidualTable {
            x90: r,
            id: r,
            zx90_control: r,
            zx90_target: r,
        }
    }

    /// No suppression at all (factor 1 everywhere).
    pub fn none() -> Self {
        ResidualTable::uniform(1.0)
    }
}

/// The per-device ZZ-crosstalk model: a strength per coupling plus the
/// pulse method's cross-region residual factors.
#[derive(Clone, Debug)]
pub struct ZzErrorModel {
    /// Crosstalk strength per coupling edge id (rad/ns).
    pub lambdas: Vec<f64>,
    /// Residual factors of the calibrated pulses.
    pub residuals: ResidualTable,
}

impl ZzErrorModel {
    /// Samples per-coupling strengths from `N(mean, std²)` (clamped at 0),
    /// matching the paper's setup (`μ = 2π·200 kHz`, `σ = 2π·50 kHz`).
    pub fn sampled(topo: &Topology, mean: f64, std: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lambdas = (0..topo.coupling_count())
            .map(|_| {
                // Box–Muller from two uniforms.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + std * z).max(0.0)
            })
            .collect();
        ZzErrorModel {
            lambdas,
            residuals: ResidualTable::none(),
        }
    }

    /// Uniform strengths on every coupling.
    pub fn uniform(topo: &Topology, lambda: f64) -> Self {
        ZzErrorModel {
            lambdas: vec![lambda; topo.coupling_count()],
            residuals: ResidualTable::none(),
        }
    }

    /// Sets a uniform cross-region residual factor (builder style).
    pub fn with_residual(mut self, r: f64) -> Self {
        self.residuals = ResidualTable::uniform(r);
        self
    }

    /// Sets the full residual table (builder style).
    pub fn with_residuals(mut self, table: ResidualTable) -> Self {
        self.residuals = table;
        self
    }
}

/// The residual factor of the pulse on qubit `q` in this layer (1.0 when
/// the qubit carries no pulse).
pub(crate) fn qubit_residual(layer: &Layer, q: usize, table: &ResidualTable) -> f64 {
    for op in &layer.ops {
        match *op {
            NativeOp::X90 { qubit } if qubit == q => return table.x90,
            NativeOp::Id { qubit } if qubit == q => return table.id,
            NativeOp::Zx90 { control, .. } if control == q => return table.zx90_control,
            NativeOp::Zx90 { target, .. } if target == q => return table.zx90_target,
            _ => {}
        }
    }
    1.0
}

/// Effective residual on a suppressed (cross-region) coupling: the factor
/// of whichever endpoint carries the pulse.
pub(crate) fn coupling_residual(layer: &Layer, u: usize, v: usize, table: &ResidualTable) -> f64 {
    if layer.pulsed[u] {
        qubit_residual(layer, u, table)
    } else {
        qubit_residual(layer, v, table)
    }
}

/// Couplings that host a two-qubit gate in this layer. Their static ZZ is
/// part of the Hamiltonian the gate pulse is calibrated against — the paper
/// dresses it into the target `Ũ₂` (Sec 4.2) — so it is not charged as an
/// error during the gate.
pub(crate) fn driven_couplings(layer: &Layer, topo: &Topology) -> Vec<bool> {
    let mut driven = vec![false; topo.coupling_count()];
    for op in &layer.ops {
        if let NativeOp::Zx90 { control, target } = *op {
            if let Some(e) = topo.coupling_between(control, target) {
                driven[e] = true;
            }
        }
    }
    driven
}

/// Runs the plan with no errors at all — the ideal reference state.
///
/// Wrapper over [`PlanProgram::ideal`]; compile the program yourself to
/// reuse the ideal state across many noisy comparisons.
pub fn run_ideal(plan: &SchedulePlan) -> StateVector {
    PlanProgram::ideal(plan).run()
}

/// Runs the plan under ZZ crosstalk only (deterministic).
///
/// Wrapper over [`PlanProgram::compile`] + [`PlanProgram::run`].
pub fn run_with_zz(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    durations: &GateDurations,
) -> StateVector {
    PlanProgram::compile(plan, topo, model, durations).run()
}

/// Fidelity of the ZZ-noisy output against the ideal output — the metric of
/// the paper's Figures 20–22.
pub fn fidelity_under_zz(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    durations: &GateDurations,
) -> f64 {
    run_ideal(plan).fidelity(&run_with_zz(plan, topo, model, durations))
}

/// One Monte-Carlo trajectory: ZZ phases exactly, decoherence by sampling
/// Kraus operators per qubit per layer (an exact unraveling of the
/// amplitude-damping + dephasing channel).
///
/// Wrapper over [`TrajectoryProgram::compile`] + [`TrajectoryProgram::run`];
/// compile the program yourself when running more than one trajectory.
pub fn run_trajectory(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
    rng: &mut StdRng,
) -> StateVector {
    TrajectoryProgram::compile(plan, topo, model, deco, durations).run(rng)
}

/// Mean fidelity against the ideal output over `trajectories` Monte-Carlo
/// runs — the metric of the paper's Figure 23.
///
/// Trajectories fan out over all available cores; results are
/// bit-identical for any thread count (deterministic per-trajectory seed
/// derivation, ordered reduction). Use
/// [`fidelity_with_decoherence_threads`] to pick the pool width.
pub fn fidelity_with_decoherence(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
    trajectories: usize,
    seed: u64,
) -> f64 {
    fidelity_with_decoherence_threads(
        plan,
        topo,
        model,
        deco,
        durations,
        trajectories,
        seed,
        zz_pool::default_threads(),
    )
}

/// [`fidelity_with_decoherence`] with an explicit thread count.
///
/// The plan is precompiled once ([`TrajectoryProgram`]) and shared by all
/// trajectories; the ideal reference state is computed once.
#[allow(clippy::too_many_arguments)] // mirrors fidelity_with_decoherence + threads
pub fn fidelity_with_decoherence_threads(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
    trajectories: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    let ideal = PlanProgram::ideal(plan).run();
    TrajectoryProgram::compile(plan, topo, model, deco, durations).mean_fidelity(
        &ideal,
        trajectories,
        seed,
        threads,
    )
}

/// Exact density-matrix execution (small registers): ZZ phases plus the
/// full amplitude-damping and dephasing channels each layer.
pub fn run_density(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
) -> DensityMatrix {
    let n = plan.qubit_count();
    assert!(
        n <= EXACT_MAX_QUBITS,
        "density-matrix execution is limited to {EXACT_MAX_QUBITS} qubits (got {n})"
    );
    let mut dm = DensityMatrix::zero(n);
    for layer in &plan.layers {
        for &(q, theta) in &layer.rz_before {
            dm.apply_unitary(&zz_quantum::gates::rz(theta), &[q]);
        }
        for op in &layer.ops {
            match *op {
                NativeOp::Rz { qubit, theta } => {
                    dm.apply_unitary(&zz_quantum::gates::rz(theta), &[qubit])
                }
                NativeOp::X90 { qubit } => dm.apply_unitary(&zz_quantum::gates::x90(), &[qubit]),
                NativeOp::Zx90 { control, target } => {
                    dm.apply_unitary(&zz_quantum::gates::zx90(), &[control, target])
                }
                NativeOp::Id { .. } => {}
            }
        }
        let dt = layer.duration(durations);
        let driven = driven_couplings(layer, topo);
        for (e, &(u, v)) in topo.couplings().iter().enumerate() {
            if driven[e] {
                continue;
            }
            let factor = if layer.metrics.suppressed[e] {
                coupling_residual(layer, u, v, &model.residuals)
            } else {
                1.0
            };
            let phi = model.lambdas[e] * factor * dt;
            dm.apply_unitary(&rzz_phase(phi), &[u, v]);
        }
        let gamma = deco.gamma(dt);
        let p = deco.phase_flip(dt);
        for q in 0..n {
            dm.apply_kraus(&amplitude_damping(gamma), q);
            dm.apply_kraus(&dephasing(p), q);
        }
    }
    for &(q, theta) in &plan.final_rz {
        dm.apply_unitary(&zz_quantum::gates::rz(theta), &[q]);
    }
    dm
}

fn rzz_phase(phi: f64) -> Matrix {
    zz_quantum::gates::rzz(2.0 * phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::native::compile_to_native;
    use zz_circuit::{bench, route};
    use zz_sched::{par_schedule, zzx::ZzxConfig, zzx_schedule};

    fn qft_plan(topo: &Topology) -> SchedulePlan {
        let c = bench::generate(bench::BenchmarkKind::Qft, topo.qubit_count().min(4), 5);
        let native = compile_to_native(&route(&c, topo));
        par_schedule(topo, &native)
    }

    #[test]
    fn zero_crosstalk_means_perfect_fidelity() {
        let topo = Topology::grid(2, 2);
        let plan = qft_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, 0.0);
        let f = fidelity_under_zz(&plan, &topo, &model, &GateDurations::standard());
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn crosstalk_reduces_fidelity() {
        let topo = Topology::grid(2, 2);
        let plan = qft_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let f = fidelity_under_zz(&plan, &topo, &model, &GateDurations::standard());
        assert!(f < 1.0 - 1e-4, "fidelity {f} should visibly drop");
        assert!(f > 0.1, "but not collapse entirely: {f}");
    }

    #[test]
    fn suppression_with_small_residual_raises_fidelity() {
        let topo = Topology::grid(2, 3);
        let c = bench::generate(bench::BenchmarkKind::Qaoa, 6, 9);
        let native = compile_to_native(&route(&c, &topo));
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        let base = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let d = GateDurations::standard();
        let f_nosupp = fidelity_under_zz(&zzx, &topo, &base.clone().with_residual(1.0), &d);
        let f_supp = fidelity_under_zz(&zzx, &topo, &base.with_residual(0.01), &d);
        assert!(
            f_supp > f_nosupp,
            "suppressed {f_supp} must beat unsuppressed {f_nosupp}"
        );
    }

    #[test]
    fn trajectory_mean_matches_density_matrix() {
        let topo = Topology::line(3);
        let c = bench::generate(bench::BenchmarkKind::Ising, 3, 2);
        let native = compile_to_native(&route(&c, &topo));
        let plan = par_schedule(&topo, &native);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let deco = Decoherence::equal_us(20.0); // strong decoherence
        let d = GateDurations::standard();

        let dm = run_density(&plan, &topo, &model, &deco, &d);
        let ideal = run_ideal(&plan);
        let f_exact = dm.fidelity_to_pure(&ideal.to_vector());
        let f_mc = fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, 600, 11);
        assert!(
            (f_exact - f_mc).abs() < 0.03,
            "MC {f_mc} vs exact {f_exact}"
        );
    }

    #[test]
    fn decoherence_only_hurts() {
        let topo = Topology::grid(2, 2);
        let plan = qft_plan(&topo);
        let model = ZzErrorModel::uniform(&topo, crate::khz(200.0));
        let d = GateDurations::standard();
        let f_zz = fidelity_under_zz(&plan, &topo, &model, &d);
        let f_deco = fidelity_with_decoherence(
            &plan,
            &topo,
            &model,
            &Decoherence::equal_us(100.0),
            &d,
            200,
            3,
        );
        assert!(
            f_deco <= f_zz + 0.02,
            "decoherence {f_deco} vs zz-only {f_zz}"
        );
    }

    #[test]
    fn gate_coupling_is_dressed_not_charged() {
        // A circuit that is a single ZX90 on a 2-qubit device: the only
        // coupling hosts the gate, so no ZZ error applies at all and the
        // output is exactly ideal — the paper's Ũ₂ dressing (Sec 4.2).
        let topo = Topology::line(2);
        let mut c = zz_circuit::native::NativeCircuit::new(2);
        c.push(zz_circuit::native::NativeOp::Zx90 {
            control: 0,
            target: 1,
        });
        let plan = par_schedule(&topo, &c);
        let model = ZzErrorModel::uniform(&topo, crate::khz(400.0));
        let f = fidelity_under_zz(&plan, &topo, &model, &GateDurations::standard());
        assert!(
            (f - 1.0).abs() < 1e-12,
            "driven coupling must not be charged: {f}"
        );
    }

    #[test]
    fn undriven_coupling_is_still_charged_during_gates() {
        // Same gate, but on a 3-qubit line: the second coupling (1-2) has no
        // gate and must accrue crosstalk.
        let topo = Topology::line(3);
        let mut c = zz_circuit::native::NativeCircuit::new(3);
        // Put qubit 2 in superposition first so the 1-2 coupling matters.
        c.push(zz_circuit::native::NativeOp::X90 { qubit: 2 });
        c.push(zz_circuit::native::NativeOp::Zx90 {
            control: 0,
            target: 1,
        });
        let plan = par_schedule(&topo, &c);
        let model = ZzErrorModel::uniform(&topo, crate::khz(400.0));
        let f = fidelity_under_zz(&plan, &topo, &model, &GateDurations::standard());
        assert!(f < 1.0 - 1e-6, "undriven coupling must hurt: {f}");
    }

    #[test]
    fn per_op_residuals_are_looked_up_by_pulse_kind() {
        // One X90 next to an idle qubit: with a perfect x90 residual the
        // fidelity is 1 even at huge λ; with only a perfect id residual the
        // coupling stays unsuppressed (the pulsed side is the X90).
        let topo = Topology::line(2);
        let mut c = zz_circuit::native::NativeCircuit::new(2);
        c.push(zz_circuit::native::NativeOp::X90 { qubit: 0 });
        c.push(zz_circuit::native::NativeOp::X90 { qubit: 0 });
        let plan = par_schedule(&topo, &c);
        let d = GateDurations::standard();
        let lambda = crate::khz(2000.0);
        let x90_perfect = ZzErrorModel::uniform(&topo, lambda).with_residuals(ResidualTable {
            x90: 0.0,
            id: 1.0,
            zx90_control: 1.0,
            zx90_target: 1.0,
        });
        let id_perfect = ZzErrorModel::uniform(&topo, lambda).with_residuals(ResidualTable {
            x90: 1.0,
            id: 0.0,
            zx90_control: 1.0,
            zx90_target: 1.0,
        });
        let f_x = fidelity_under_zz(&plan, &topo, &x90_perfect, &d);
        let f_i = fidelity_under_zz(&plan, &topo, &id_perfect, &d);
        assert!((f_x - 1.0).abs() < 1e-12, "x90 residual must apply: {f_x}");
        assert!(
            f_i < 1.0 - 1e-6,
            "id residual must not apply to an X90: {f_i}"
        );
    }

    #[test]
    fn sample_counts_are_deterministic_per_seed() {
        let mut sv = crate::StateVector::zero(2);
        sv.apply_single(&zz_quantum::gates::h(), 0);
        let a = sv.sample_counts(100, &mut StdRng::seed_from_u64(5));
        let b = sv.sample_counts(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let total: usize = a.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sampled_lambdas_are_reproducible_and_positive() {
        let topo = Topology::grid(3, 4);
        let a = ZzErrorModel::sampled(&topo, crate::khz(200.0), crate::khz(50.0), 42);
        let b = ZzErrorModel::sampled(&topo, crate::khz(200.0), crate::khz(50.0), 42);
        assert_eq!(a.lambdas, b.lambdas);
        assert!(a.lambdas.iter().all(|&l| l >= 0.0));
        let mean = a.lambdas.iter().sum::<f64>() / a.lambdas.len() as f64;
        assert!((mean - crate::khz(200.0)).abs() < crate::khz(60.0));
    }
}
