//! Trajectory-batched amplitude storage: the SIMD-width hot path of the
//! Monte-Carlo engine.
//!
//! A [`BatchedState`] holds the amplitudes of `lanes` independent
//! trajectories in **structure-of-arrays** form: two `f64` planes (real
//! and imaginary), each laid out amplitude-major —
//!
//! ```text
//! re[i * lanes + t]   = Re(amplitude i of trajectory t)
//! im[i * lanes + t]   = Im(amplitude i of trajectory t)
//! ```
//!
//! Every kernel sweep visits each amplitude index **once** and applies
//! the operation to all `lanes` trajectories in a fixed-width contiguous
//! inner loop over plain `f64`s:
//!
//! * gate matrices and diagonal tables are loaded once per amplitude
//!   visit instead of once per trajectory, and
//! * the innermost loop is a branch-free auto-vectorizable form (no
//!   complex struct shuffling, no per-lane control flow).
//!
//! Per-lane arithmetic is completely independent — amplitudes of lane
//! `t` only ever combine with other amplitudes of lane `t`, in an order
//! that does not depend on `lanes`. That is the property the engine's
//! **batch-width invariance** rests on: running a trajectory in a batch
//! of 1, 3 or 8 produces bit-identical amplitudes, because the same
//! scalar operations execute in the same order either way.

use zz_linalg::c64;

/// The amplitudes of `lanes` trajectories over one `n`-qubit register,
/// stored as separate real/imaginary `f64` planes (see the
/// [module docs](self) for the layout and invariance argument).
#[derive(Clone, Debug)]
pub struct BatchedState {
    n: usize,
    lanes: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl BatchedState {
    /// `lanes` copies of the all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn zero(n: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a batch needs at least one trajectory lane");
        let dim = 1usize << n;
        let mut state = BatchedState {
            n,
            lanes,
            re: vec![0.0; dim * lanes],
            im: vec![0.0; dim * lanes],
        };
        state.re[..lanes].fill(1.0);
        state
    }

    /// Resets to `lanes` copies of `|0…0⟩` without reallocating — the
    /// per-batch reuse path of the trajectory fan.
    pub fn reset(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[..self.lanes].fill(1.0);
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Number of trajectory lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of amplitudes per lane (`2^n`).
    pub fn dim(&self) -> usize {
        1usize << self.n
    }

    /// The amplitude of basis state `index` in lane `lane`.
    pub fn amplitude(&self, index: usize, lane: usize) -> c64 {
        let k = index * self.lanes + lane;
        c64::new(self.re[k], self.im[k])
    }

    /// One lane extracted as a dense amplitude vector.
    pub fn lane_amplitudes(&self, lane: usize) -> Vec<c64> {
        (0..self.dim()).map(|i| self.amplitude(i, lane)).collect()
    }

    /// Single-qubit kernel: sweeps the `2^(n-1)` amplitude-row pairs
    /// split by `mask`, applying the row-major 2×2 `m` to every lane.
    ///
    /// Rows with the `mask` bit clear form `mask·lanes`-long contiguous
    /// chunks, so each block needs exactly **one** slice split; the
    /// inner loop runs over the whole chunk of plain `f64`s and
    /// vectorizes across amplitudes as well as lanes. The eight matrix
    /// scalars are hoisted out of the sweep.
    pub fn kernel_single(&mut self, m: &[c64; 4], mask: usize) {
        let (m0r, m0i, m1r, m1i) = (m[0].re, m[0].im, m[1].re, m[1].im);
        let (m2r, m2i, m3r, m3i) = (m[2].re, m[2].im, m[3].re, m[3].im);
        let chunk = mask * self.lanes;
        let stride = chunk << 1;
        let mut off = 0;
        while off < self.re.len() {
            let (r_lo, r_hi) = self.re[off..off + stride].split_at_mut(chunk);
            let (q_lo, q_hi) = self.im[off..off + stride].split_at_mut(chunk);
            for k in 0..chunk {
                let (a0r, a0i) = (r_lo[k], q_lo[k]);
                let (a1r, a1i) = (r_hi[k], q_hi[k]);
                r_lo[k] = (m0r * a0r - m0i * a0i) + (m1r * a1r - m1i * a1i);
                q_lo[k] = (m0r * a0i + m0i * a0r) + (m1r * a1i + m1i * a1r);
                r_hi[k] = (m2r * a0r - m2i * a0i) + (m3r * a1r - m3i * a1i);
                q_hi[k] = (m2r * a0i + m2i * a0r) + (m3r * a1i + m3i * a1r);
            }
            off += stride;
        }
    }

    /// Two-qubit kernel: the four-amplitude groups split by the masks
    /// `ba` (most significant gate factor) and `bb`, row-major 4×4 `m`.
    ///
    /// The rows sharing one `(outer, mid)` cell form four contiguous
    /// `lo·lanes`-long chunks: the two with the `hi` bit clear sit at
    /// row offset `mid`, the two with it set at `mid + hi`. One slice
    /// split per region replaces per-group row surgery, and the 4×4
    /// complex matmul runs fully unrolled over whole chunks — the
    /// compiler vectorizes across amplitudes and lanes at once. The 32
    /// matrix scalars load once per sweep.
    ///
    /// Matrices whose off-diagonal 2×2 blocks are exactly zero — every
    /// `Rzx`-family native gate, which acts as `|0⟩⟨0|⊗U₀ + |1⟩⟨1|⊗U₁`
    /// — take a fast path that applies the two diagonal blocks as
    /// independent 2×2 mixes, halving the arithmetic. The skipped terms
    /// are exact zeros, so the fast path only differs in the sign of
    /// zero results, never in a value.
    pub fn kernel_two(&mut self, m: &[c64; 16], ba: usize, bb: usize) {
        let lanes = self.lanes;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let block_diag = [2usize, 3, 6, 7, 8, 9, 12, 13]
            .iter()
            .all(|&k| m[k].re == 0.0 && m[k].im == 0.0);
        let mr: [f64; 16] = std::array::from_fn(|k| m[k].re);
        let mi: [f64; 16] = std::array::from_fn(|k| m[k].im);
        let chunk = lo * lanes;
        let dim = self.dim();
        let mut outer = 0;
        while outer < dim {
            let mut mid = outer;
            while mid < outer + hi {
                let row = mid * lanes;
                let top = (mid + hi) * lanes;
                let (head_r, tail_r) = self.re.split_at_mut(top);
                let (head_q, tail_q) = self.im.split_at_mut(top);
                let (s0r, s1r) = head_r[row..row + 2 * chunk].split_at_mut(chunk);
                let (s0q, s1q) = head_q[row..row + 2 * chunk].split_at_mut(chunk);
                let (s2r, s3r) = tail_r[..2 * chunk].split_at_mut(chunk);
                let (s2q, s3q) = tail_q[..2 * chunk].split_at_mut(chunk);
                // Logical row k sits at offset `k_a·ba + k_b·bb` from
                // the group base, so logical row 1 (`bb` set) is the
                // second `mid` chunk when `bb` is the small mask and
                // the first `top` chunk otherwise.
                let (r1, q1, r2, q2) = if ba > bb {
                    (s1r, s1q, s2r, s2q)
                } else {
                    (s2r, s2q, s1r, s1q)
                };
                if block_diag {
                    // Logical rows (0,1) mix through the top-left block,
                    // (2,3) through the bottom-right — two 2×2 sweeps.
                    for k in 0..chunk {
                        let (a0r, a0i) = (s0r[k], s0q[k]);
                        let (a1r, a1i) = (r1[k], q1[k]);
                        s0r[k] = (mr[0] * a0r - mi[0] * a0i) + (mr[1] * a1r - mi[1] * a1i);
                        s0q[k] = (mr[0] * a0i + mi[0] * a0r) + (mr[1] * a1i + mi[1] * a1r);
                        r1[k] = (mr[4] * a0r - mi[4] * a0i) + (mr[5] * a1r - mi[5] * a1i);
                        q1[k] = (mr[4] * a0i + mi[4] * a0r) + (mr[5] * a1i + mi[5] * a1r);
                    }
                    for k in 0..chunk {
                        let (a2r, a2i) = (r2[k], q2[k]);
                        let (a3r, a3i) = (s3r[k], s3q[k]);
                        r2[k] = (mr[10] * a2r - mi[10] * a2i) + (mr[11] * a3r - mi[11] * a3i);
                        q2[k] = (mr[10] * a2i + mi[10] * a2r) + (mr[11] * a3i + mi[11] * a3r);
                        s3r[k] = (mr[14] * a2r - mi[14] * a2i) + (mr[15] * a3r - mi[15] * a3i);
                        s3q[k] = (mr[14] * a2i + mi[14] * a2r) + (mr[15] * a3i + mi[15] * a3r);
                    }
                    mid += lo << 1;
                    continue;
                }
                for k in 0..chunk {
                    let ar = [s0r[k], r1[k], r2[k], s3r[k]];
                    let ai = [s0q[k], q1[k], q2[k], s3q[k]];
                    let mut out = [(0.0f64, 0.0f64); 4];
                    for (rowk, o) in out.iter_mut().enumerate() {
                        let mut acc_r = 0.0;
                        let mut acc_i = 0.0;
                        for col in 0..4 {
                            let (br, bi) = (mr[4 * rowk + col], mi[4 * rowk + col]);
                            acc_r += br * ar[col] - bi * ai[col];
                            acc_i += br * ai[col] + bi * ar[col];
                        }
                        *o = (acc_r, acc_i);
                    }
                    s0r[k] = out[0].0;
                    s0q[k] = out[0].1;
                    r1[k] = out[1].0;
                    q1[k] = out[1].1;
                    r2[k] = out[2].0;
                    q2[k] = out[2].1;
                    s3r[k] = out[3].0;
                    s3q[k] = out[3].1;
                }
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Multiplies every lane pointwise by the shared diagonal `diag`
    /// (`2^n` entries): each table entry loads once and applies to all
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if `diag` does not have exactly `2^n` entries.
    pub fn apply_diagonal(&mut self, diag: &[c64]) {
        assert_eq!(diag.len(), self.dim(), "diagonal length must be 2^n");
        let lanes = self.lanes;
        let rows = self
            .re
            .chunks_exact_mut(lanes)
            .zip(self.im.chunks_exact_mut(lanes));
        for ((re, im), d) in rows.zip(diag) {
            let (dr, di) = (d.re, d.im);
            for t in 0..lanes {
                let (ar, ai) = (re[t], im[t]);
                re[t] = dr * ar - di * ai;
                im[t] = dr * ai + di * ar;
            }
        }
    }

    /// Multiplies the contiguous chunk `(re, im)` by the scalar `f`.
    #[inline]
    fn scale_chunk(re: &mut [f64], im: &mut [f64], f: c64) {
        let (fr, fi) = (f.re, f.im);
        for (r, q) in re.iter_mut().zip(im.iter_mut()) {
            let (ar, ai) = (*r, *q);
            *r = fr * ar - fi * ai;
            *q = fr * ai + fi * ar;
        }
    }

    /// One Rz phase term `(mask, θ/2)` — the batched twin of
    /// `StateVector::apply_rz_term`: per block, one contiguous chunk of
    /// clear-bit rows gets `cis(-θ/2)` and one chunk of set-bit rows
    /// gets `cis(θ/2)`; two `cis` evaluations for the whole sweep.
    pub fn apply_rz_term(&mut self, mask: usize, half: f64) {
        let (lo, hi) = (c64::cis(-half), c64::cis(half));
        let chunk = mask * self.lanes;
        let stride = chunk << 1;
        let mut off = 0;
        while off < self.re.len() {
            let (r_lo, r_hi) = self.re[off..off + stride].split_at_mut(chunk);
            let (q_lo, q_hi) = self.im[off..off + stride].split_at_mut(chunk);
            Self::scale_chunk(r_lo, q_lo, lo);
            Self::scale_chunk(r_hi, q_hi, hi);
            off += stride;
        }
    }

    /// One ZZ phase term `(mask_u, mask_v, φ)`: the four chunk regions
    /// of each `(outer, mid)` cell (neither bit, low bit, high bit,
    /// both bits) get the equal-parity or differing-parity factor as a
    /// whole — two `cis` evaluations and no per-row parity test.
    pub fn apply_zz_term(&mut self, mu: usize, mv: usize, phi: f64) {
        let (same, diff) = (c64::cis(-phi), c64::cis(phi));
        let lanes = self.lanes;
        let (lo, hi) = if mu < mv { (mu, mv) } else { (mv, mu) };
        let chunk = lo * lanes;
        let dim = self.dim();
        let mut outer = 0;
        while outer < dim {
            let mut mid = outer;
            while mid < outer + hi {
                let row = mid * lanes;
                let top = (mid + hi) * lanes;
                let (r0, r1) = self.re[row..row + 2 * chunk].split_at_mut(chunk);
                let (q0, q1) = self.im[row..row + 2 * chunk].split_at_mut(chunk);
                Self::scale_chunk(r0, q0, same);
                Self::scale_chunk(r1, q1, diff);
                let (r2, r3) = self.re[top..top + 2 * chunk].split_at_mut(chunk);
                let (q2, q3) = self.im[top..top + 2 * chunk].split_at_mut(chunk);
                Self::scale_chunk(r2, q2, diff);
                Self::scale_chunk(r3, q3, same);
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Per-lane probability that the qubit selected by `mask` is `|1⟩`,
    /// written into `out` (one slot per lane). Accumulation visits the
    /// excited amplitude rows in ascending index order, so each lane's
    /// sum is independent of the batch width.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `lanes` long.
    pub fn excited_population(&self, mask: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.lanes, "one accumulator per lane");
        out.fill(0.0);
        let lanes = self.lanes;
        let chunk = mask * lanes;
        let stride = chunk << 1;
        let mut off = chunk;
        while off < self.re.len() {
            let re = &self.re[off..off + chunk];
            let im = &self.im[off..off + chunk];
            for (row_r, row_q) in re.chunks_exact(lanes).zip(im.chunks_exact(lanes)) {
                for t in 0..lanes {
                    out[t] += row_r[t] * row_r[t] + row_q[t] * row_q[t];
                }
            }
            off += stride;
        }
    }

    /// Per-lane excited populations of **every** qubit in one read
    /// sweep: `out[q · lanes + t]` receives `P(qubit q = |1⟩)` for lane
    /// `t` (qubit 0 = most significant bit). Each amplitude's
    /// probability is computed once (into the `row` scratch) and added
    /// to the accumulators of the qubits whose bit is set — one pass
    /// over the planes instead of one per qubit. Accumulation visits
    /// amplitudes in ascending index order per lane, so every sum is
    /// batch-width independent.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `n·lanes` long or `row` is not `lanes`
    /// long.
    pub fn excited_populations(&self, out: &mut [f64], row: &mut [f64]) {
        let lanes = self.lanes;
        assert_eq!(out.len(), self.n * lanes, "n accumulators per lane");
        assert_eq!(row.len(), lanes, "one probability slot per lane");
        out.fill(0.0);
        let rows = self.re.chunks_exact(lanes).zip(self.im.chunks_exact(lanes));
        for (i, (re, im)) in rows.enumerate() {
            for t in 0..lanes {
                row[t] = re[t] * re[t] + im[t] * im[t];
            }
            for q in 0..self.n {
                if i & (1 << (self.n - 1 - q)) != 0 {
                    let acc = &mut out[q * lanes..(q + 1) * lanes];
                    for t in 0..lanes {
                        acc[t] += row[t];
                    }
                }
            }
        }
    }

    /// Expands per-qubit noise coefficients into a full per-amplitude
    /// factor table by tensor-product doubling: `coeffs[(q·2 + b) ·
    /// lanes + t]` is qubit `q`'s real factor for bit value `b` in lane
    /// `t`, and on return `out[i · lanes + t] = Π_q coeffs[q, bit_q(i),
    /// t]`. Qubit 0 (the most significant bit) multiplies first, and
    /// the doubling order is fixed, so each lane's products are
    /// batch-width independent. Costs `≈2·2^n` multiplications per lane
    /// — versus one read-modify-write plane sweep per qubit.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is not `n·2·lanes` long.
    pub fn expand_factors(
        n: usize,
        lanes: usize,
        coeffs: &[f64],
        out: &mut Vec<f64>,
        tmp: &mut Vec<f64>,
    ) {
        assert_eq!(
            coeffs.len(),
            n * 2 * lanes,
            "two factors per qubit per lane"
        );
        out.clear();
        out.resize(lanes, 1.0);
        for q in 0..n {
            let rows = out.len() / lanes;
            tmp.clear();
            tmp.reserve(rows * 2 * lanes);
            for r in 0..rows {
                let src = &out[r * lanes..(r + 1) * lanes];
                for b in 0..2 {
                    let c = &coeffs[(q * 2 + b) * lanes..(q * 2 + b + 1) * lanes];
                    tmp.extend(src.iter().zip(c).map(|(&s, &f)| s * f));
                }
            }
            std::mem::swap(out, tmp);
        }
    }

    /// Applies one whole layer's damping + dephasing in a single pass:
    ///
    /// ```text
    /// amp'[i, t] = factors[i·lanes + t] · amp[i ^ jump_masks[t], t]
    /// ```
    ///
    /// `factors` is the [`Self::expand_factors`] table (damping
    /// normalizations with dephasing signs folded in) and
    /// `jump_masks[t]` is the XOR of the qubit masks that drew an
    /// amplitude-damping jump in lane `t` (a jump moves `|1⟩` weight to
    /// `|0⟩`, i.e. gathers through the bit flip; its set-bit factor is
    /// zero).
    ///
    /// When no lane jumped, this degenerates to an in-place real
    /// scaling of both planes; otherwise amplitudes gather through the
    /// per-lane permutation into the scratch planes, which are swapped
    /// in. Both paths compute the identical product for a lane whose
    /// mask is zero, so which path runs never shows up in the
    /// amplitudes — batch-width invariance survives the cross-lane
    /// branch.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is not `2^n·lanes` long or `jump_masks` is
    /// not `lanes` long.
    pub fn apply_factored_noise(
        &mut self,
        factors: &[f64],
        jump_masks: &[usize],
        scratch_re: &mut Vec<f64>,
        scratch_im: &mut Vec<f64>,
    ) {
        let lanes = self.lanes;
        assert_eq!(
            factors.len(),
            self.re.len(),
            "one factor per amplitude-lane"
        );
        assert_eq!(jump_masks.len(), lanes, "one jump mask per lane");
        if jump_masks.iter().all(|&m| m == 0) {
            for (a, &f) in self.re.iter_mut().zip(factors) {
                *a *= f;
            }
            for (a, &f) in self.im.iter_mut().zip(factors) {
                *a *= f;
            }
            return;
        }
        scratch_re.clear();
        scratch_re.resize(self.re.len(), 0.0);
        scratch_im.clear();
        scratch_im.resize(self.im.len(), 0.0);
        for i in 0..self.dim() {
            let row = i * lanes;
            for t in 0..lanes {
                let src = (i ^ jump_masks[t]) * lanes + t;
                scratch_re[row + t] = factors[row + t] * self.re[src];
                scratch_im[row + t] = factors[row + t] * self.im[src];
            }
        }
        std::mem::swap(&mut self.re, scratch_re);
        std::mem::swap(&mut self.im, scratch_im);
    }

    /// Per-lane fidelity `|⟨ideal|lane⟩|²` against a shared reference
    /// state, written into `out`. The inner products accumulate in
    /// amplitude-index order per lane — batch-width independent.
    ///
    /// # Panics
    ///
    /// Panics if `ideal` is not `2^n` long or `out` is not `lanes` long.
    pub fn fidelity_against(&self, ideal: &[c64], out: &mut [f64]) {
        assert_eq!(ideal.len(), self.dim(), "reference length must be 2^n");
        assert_eq!(out.len(), self.lanes, "one slot per lane");
        let lanes = self.lanes;
        let mut acc_r = vec![0.0f64; lanes];
        let mut acc_i = vec![0.0f64; lanes];
        let rows = self.re.chunks_exact(lanes).zip(self.im.chunks_exact(lanes));
        for ((re, im), b) in rows.zip(ideal) {
            // conj(ideal_i) * amp_i, accumulated per lane.
            let (br, bi) = (b.re, -b.im);
            for t in 0..lanes {
                acc_r[t] += br * re[t] - bi * im[t];
                acc_i[t] += br * im[t] + bi * re[t];
            }
        }
        for t in 0..lanes {
            out[t] = acc_r[t] * acc_r[t] + acc_i[t] * acc_i[t];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;
    use zz_quantum::gates;

    fn mat4(m: &zz_linalg::Matrix) -> [c64; 4] {
        let s = m.as_slice();
        [s[0], s[1], s[2], s[3]]
    }

    fn mat16(m: &zz_linalg::Matrix) -> [c64; 16] {
        let mut out = [c64::ZERO; 16];
        out.copy_from_slice(m.as_slice());
        out
    }

    fn max_lane_diff(batch: &BatchedState, lane: usize, sv: &StateVector) -> f64 {
        batch
            .lane_amplitudes(lane)
            .iter()
            .zip(sv.amplitudes())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Kernels over a 3-lane batch must agree with three scalar runs.
    #[test]
    fn batched_kernels_match_scalar_statevector() {
        let n = 4;
        let lanes = 3;
        let mut batch = BatchedState::zero(n, lanes);
        let mut scalars: Vec<StateVector> = (0..lanes).map(|_| StateVector::zero(n)).collect();

        let h = mat4(&gates::h());
        let t_gate = mat4(&gates::t());
        let zx = mat16(&gates::zx90());
        let mask = |q: usize| 1usize << (n - 1 - q);

        for q in 0..n {
            batch.kernel_single(&h, mask(q));
            batch.kernel_single(&t_gate, mask(q));
        }
        batch.kernel_two(&zx, mask(0), mask(2));
        batch.kernel_two(&zx, mask(3), mask(1));
        batch.apply_rz_term(mask(1), 0.37);
        batch.apply_zz_term(mask(0), mask(3), 0.21);
        let diag: Vec<c64> = (0..1usize << n)
            .map(|i| c64::cis(0.01 * i as f64))
            .collect();
        batch.apply_diagonal(&diag);

        for sv in &mut scalars {
            for q in 0..n {
                sv.kernel_single(&h, 1 << (n - 1 - q));
                sv.kernel_single(&t_gate, 1 << (n - 1 - q));
            }
            sv.kernel_two(&zx, mask(0), mask(2));
            sv.kernel_two(&zx, mask(3), mask(1));
            sv.apply_rz_term(mask(1), 0.37);
            sv.apply_zz_term(mask(0), mask(3), 0.21);
            sv.apply_diagonal(&diag);
        }

        for (lane, sv) in scalars.iter().enumerate() {
            let d = max_lane_diff(&batch, lane, sv);
            assert!(d < 1e-12, "lane {lane} diverged by {d}");
        }
    }

    /// The per-lane excited populations and fidelities must match the
    /// scalar implementations.
    #[test]
    fn populations_and_fidelities_match_scalar() {
        let n = 3;
        let mut batch = BatchedState::zero(n, 2);
        let mut sv = StateVector::zero(n);
        let h = mat4(&gates::h());
        for q in 0..n {
            batch.kernel_single(&h, 1 << (n - 1 - q));
            sv.kernel_single(&h, 1 << (n - 1 - q));
        }
        batch.apply_rz_term(1, 0.4);
        sv.apply_rz_term(1, 0.4);

        let mut pops = vec![0.0; 2];
        let mut all = vec![0.0; n * 2];
        let mut row = vec![0.0; 2];
        batch.excited_populations(&mut all, &mut row);
        for q in 0..n {
            let mask = 1usize << (n - 1 - q);
            batch.excited_population(mask, &mut pops);
            let scalar = sv.excited_population(q);
            for (lane, &p) in pops.iter().enumerate() {
                assert!((p - scalar).abs() < 1e-14, "q={q} lane={lane}");
                // The all-qubits sweep accumulates the same terms in the
                // same order as the per-qubit sweep — bit-identical.
                assert_eq!(
                    all[q * 2 + lane].to_bits(),
                    p.to_bits(),
                    "q={q} lane={lane}"
                );
            }
        }

        let ideal = StateVector::zero(n);
        let mut fids = vec![0.0; 2];
        batch.fidelity_against(ideal.amplitudes(), &mut fids);
        let scalar_f = ideal.fidelity(&sv);
        for &f in &fids {
            assert!((f - scalar_f).abs() < 1e-14);
        }
    }

    /// The factored noise pass reproduces identity, jump and dephasing
    /// lanes in one sweep, and the gather path is bit-identical to the
    /// in-place path for lanes that did not jump.
    #[test]
    fn factored_noise_selects_per_lane_branches() {
        let n = 2;
        let lanes = 3;
        let mut batch = BatchedState::zero(n, lanes);
        let h = mat4(&gates::h());
        batch.kernel_single(&h, 0b10);
        batch.kernel_single(&h, 0b01);
        // |++⟩ in every lane: both qubits have P(|1⟩) = 1/2.
        let mut pops = vec![0.0; n * lanes];
        let mut row = vec![0.0; lanes];
        batch.excited_populations(&mut pops, &mut row);
        for p in &pops {
            assert!((p - 0.5).abs() < 1e-15);
        }

        // coeffs[q][bit][lane]: lane 0 identity, lane 1 jumps on qubit 0
        // (clear-bit factor 1/√p = √2, set-bit factor 0), lane 2 flips
        // the dephasing sign of qubit 1.
        let mut coeffs = vec![1.0; n * 2 * lanes];
        coeffs[1] = std::f64::consts::SQRT_2; // q0, bit 0, lane 1
        coeffs[lanes + 1] = 0.0; // q0, bit 1, lane 1
        coeffs[3 * lanes + 2] = -1.0; // q1, bit 1, lane 2
        let (mut factors, mut tmp) = (Vec::new(), Vec::new());
        BatchedState::expand_factors(n, lanes, &coeffs, &mut factors, &mut tmp);

        let mut gathered = batch.clone();
        let (mut sr, mut si) = (Vec::new(), Vec::new());
        gathered.apply_factored_noise(&factors, &[0, 0b10, 0], &mut sr, &mut si);
        batch.apply_factored_noise(&factors, &[0, 0, 0], &mut sr, &mut si);

        let sq2 = std::f64::consts::SQRT_2;
        for i in 0..4 {
            // Lane 0 is untouched; lanes that did not jump must agree
            // bit-for-bit between the gather and in-place paths.
            assert_eq!(gathered.amplitude(i, 0), batch.amplitude(i, 0));
            assert_eq!(gathered.amplitude(i, 2), batch.amplitude(i, 2));
            assert!((gathered.amplitude(i, 0).re - 0.5).abs() < 1e-15, "i={i}");
            // Lane 1: |1x⟩ weight moved onto |0x⟩ with scale √2.
            let expect = if i & 0b10 == 0 { 0.5 * sq2 } else { 0.0 };
            assert!(
                (gathered.amplitude(i, 1).re - expect).abs() < 1e-15,
                "i={i}"
            );
            // Lane 2: qubit-1 sign flip.
            let expect = if i & 0b01 == 0 { 0.5 } else { -0.5 };
            assert!(
                (gathered.amplitude(i, 2).re - expect).abs() < 1e-15,
                "i={i}"
            );
        }
    }

    #[test]
    fn reset_restores_the_zero_state() {
        let mut batch = BatchedState::zero(2, 2);
        batch.kernel_single(&mat4(&gates::h()), 2);
        batch.reset();
        for lane in 0..2 {
            assert_eq!(batch.amplitude(0, lane), c64::ONE);
            for i in 1..4 {
                assert_eq!(batch.amplitude(i, lane), c64::ZERO);
            }
        }
    }
}
