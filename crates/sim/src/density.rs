//! A density-matrix simulator with exact Kraus noise channels.
//!
//! Usable up to [`EXACT_MAX_QUBITS`] qubits (the matrix has `4^n`
//! entries); serves as the exact reference against which the trajectory
//! unraveling in [`crate::executor`] is validated, and runs the
//! decoherence experiments on small registers.

use zz_linalg::{c64, Matrix, Vector};
use zz_quantum::embed;

use crate::StateVector;

/// Largest register the exact density-matrix path simulates — **the**
/// exact/Monte-Carlo cutoff of the workspace. `run_density` rejects larger
/// registers, and `zz_core::evaluate` routes registers of up to this many
/// qubits to the exact path and larger ones to trajectory sampling.
///
/// 8 qubits means a `256 × 256` density matrix (65 536 complex entries),
/// which the dense [`Matrix`] arithmetic below still handles in well under
/// a second per layer.
pub const EXACT_MAX_QUBITS: usize = 8;

/// An n-qubit density matrix.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: usize,
    rho: Matrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero(n: usize) -> Self {
        let dim = 1usize << n;
        let mut rho = Matrix::zeros(dim, dim);
        rho[(0, 0)] = c64::ONE;
        DensityMatrix { n, rho }
    }

    /// The pure state `|ψ⟩⟨ψ|` of a statevector.
    pub fn from_state(sv: &StateVector) -> Self {
        let amps = sv.amplitudes();
        let dim = amps.len();
        let rho = Matrix::from_fn(dim, dim, |i, j| amps[i] * amps[j].conj());
        DensityMatrix {
            n: sv.qubit_count(),
            rho,
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// The raw matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.rho
    }

    /// Trace (should stay 1 under trace-preserving channels).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        self.rho.matmul(&self.rho).trace().re
    }

    /// Applies a unitary on the given qubits: `ρ ← UρU†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension/indices mismatch (see [`embed`]).
    pub fn apply_unitary(&mut self, u: &Matrix, qubits: &[usize]) {
        let full = embed(u, qubits, self.n);
        self.rho = full.matmul(&self.rho).matmul(&full.dagger());
    }

    /// Applies a single-qubit Kraus channel `ρ ← Σ KᵢρKᵢ†` on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if any Kraus operator is not 2×2 or `q` is out of range.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], q: usize) {
        assert!(q < self.n, "qubit {q} out of range");
        let dim = self.rho.rows();
        let mut out = Matrix::zeros(dim, dim);
        for k in kraus {
            assert_eq!(k.rows(), 2, "single-qubit Kraus operators expected");
            let full = embed(k, &[q], self.n);
            let term = full.matmul(&self.rho).matmul(&full.dagger());
            out.add_scaled(&term, c64::ONE);
        }
        self.rho = out;
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` against a pure target.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn fidelity_to_pure(&self, psi: &Vector) -> f64 {
        zz_quantum::fidelity::state_fidelity_dm(&self.rho, psi)
    }
}

/// Kraus operators of the amplitude-damping channel with decay probability
/// `gamma = 1 − e^{−t/T1}`.
pub fn amplitude_damping(gamma: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let k0 = Matrix::from_rows(&[
        &[c64::ONE, c64::ZERO],
        &[c64::ZERO, c64::real((1.0 - gamma).sqrt())],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64::ZERO, c64::real(gamma.sqrt())],
        &[c64::ZERO, c64::ZERO],
    ]);
    vec![k0, k1]
}

/// Kraus operators of the phase-damping (pure dephasing) channel that
/// shrinks coherences by `e^{−t/Tφ}`; `p` is the equivalent phase-flip
/// probability `p = (1 − e^{−t/Tφ})/2`.
pub fn dephasing(p: f64) -> Vec<Matrix> {
    assert!(
        (0.0..=0.5).contains(&p),
        "dephasing probability must be in [0, 1/2]"
    );
    let k0 = Matrix::identity(2).scale(c64::real((1.0 - p).sqrt()));
    let k1 = zz_quantum::pauli::Pauli::Z
        .matrix()
        .scale(c64::real(p.sqrt()));
    vec![k0, k1]
}

/// Decoherence times (ns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decoherence {
    /// Relaxation time `T1` (ns).
    pub t1: f64,
    /// Total dephasing time `T2` (ns); must satisfy `T2 ≤ 2·T1`.
    pub t2: f64,
}

impl Decoherence {
    /// Creates a decoherence model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < T2 ≤ 2·T1`.
    pub fn new(t1: f64, t2: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "decoherence times must be positive");
        assert!(t2 <= 2.0 * t1 + 1e-9, "T2 cannot exceed 2·T1");
        Decoherence { t1, t2 }
    }

    /// Equal times (the paper's Figure 23 sweeps `T1 = T2`), given in µs.
    pub fn equal_us(t: f64) -> Self {
        Decoherence::new(t * 1000.0, t * 1000.0)
    }

    /// Amplitude-damping probability over `dt` ns, clamped to `[0, 1]`.
    pub fn gamma(&self, dt: f64) -> f64 {
        (1.0 - (-dt / self.t1).exp()).clamp(0.0, 1.0)
    }

    /// Pure-dephasing phase-flip probability over `dt` ns
    /// (from `1/Tφ = 1/T2 − 1/(2T1)`), clamped to `[0, 1/2]`.
    ///
    /// The clamp matters: [`Decoherence::new`] accepts `T2` up to
    /// `2·T1 + 1e-9`, and inside that tolerance the dephasing rate goes
    /// slightly negative — an unclamped probability would be below zero
    /// and [`dephasing`] would panic mid-simulation.
    pub fn phase_flip(&self, dt: f64) -> f64 {
        let rate = 1.0 / self.t2 - 1.0 / (2.0 * self.t1);
        ((1.0 - (-dt * rate).exp()) / 2.0).clamp(0.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::gates;

    #[test]
    fn channels_are_trace_preserving() {
        for kraus in [amplitude_damping(0.3), dephasing(0.2)] {
            let mut sum = Matrix::zeros(2, 2);
            for k in &kraus {
                sum.add_scaled(&k.dagger().matmul(k), c64::ONE);
            }
            assert!(sum.approx_eq(&Matrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_unitary(&gates::x(), &[0]);
        dm.apply_kraus(&amplitude_damping(0.25), 0);
        assert!((dm.matrix()[(1, 1)].re - 0.75).abs() < 1e-12);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherence_not_population() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_unitary(&gates::h(), &[0]);
        let before = dm.matrix()[(0, 1)].re;
        dm.apply_kraus(&dephasing(0.5), 0);
        assert!(
            dm.matrix()[(0, 1)].abs() < 1e-12,
            "full dephasing kills coherence"
        );
        assert!((dm.matrix()[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!(before > 0.4);
    }

    #[test]
    fn unitary_preserves_purity() {
        let mut dm = DensityMatrix::zero(2);
        dm.apply_unitary(&gates::h(), &[0]);
        dm.apply_unitary(&gates::cnot(), &[0, 1]);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        let bell = {
            let mut sv = StateVector::zero(2);
            sv.apply_single(&gates::h(), 0);
            sv.apply_two(&gates::cnot(), 0, 1);
            sv
        };
        assert!((dm.fidelity_to_pure(&bell.to_vector()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decoherence_probabilities() {
        let d = Decoherence::equal_us(100.0);
        assert!((d.gamma(100_000.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // T1 = T2 ⇒ Tφ = 2·T1.
        let p = d.phase_flip(100_000.0);
        assert!((p - (1.0 - (-0.5f64).exp()) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "T2 cannot exceed")]
    fn rejects_unphysical_t2() {
        let _ = Decoherence::new(100.0, 300.0);
    }

    #[test]
    fn phase_flip_is_clamped_inside_the_t2_tolerance() {
        // T2 marginally above 2·T1 passes `new`'s 1e-9 tolerance but makes
        // the raw dephasing rate negative; the probability must clamp to 0
        // so `dephasing(p)` stays constructible mid-simulation.
        let d = Decoherence::new(100.0, 200.0 + 1e-10);
        for dt in [1.0, 20.0, 1e6] {
            let p = d.phase_flip(dt);
            assert!((0.0..=0.5).contains(&p), "dt={dt}: p={p}");
            let _ = dephasing(p); // must not panic
            let g = d.gamma(dt);
            assert!((0.0..=1.0).contains(&g), "dt={dt}: gamma={g}");
            let _ = amplitude_damping(g);
        }
        assert_eq!(d.phase_flip(20.0), 0.0);
    }
}
