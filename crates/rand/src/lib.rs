//! Workspace-internal pseudo-random number generation.
//!
//! This crate is a deliberate, dependency-free stand-in for the small slice
//! of the `rand` crate API that this repository uses: a seedable generator
//! ([`rngs::StdRng`]), the [`Rng`] extension methods `gen_range`/`gen_bool`,
//! and the [`SeedableRng::seed_from_u64`] constructor. The workspace builds
//! hermetically (no crates.io access), so the real `rand` is replaced by
//! this path dependency.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the exact
//! stream differs from upstream `rand`'s `StdRng`, but every use in this
//! workspace only relies on *determinism for a fixed seed*, not on a
//! particular stream.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let again: f64 = StdRng::seed_from_u64(7).gen_range(0.0..1.0);
//! assert_eq!(x, again);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling typed values.
///
/// Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a uniform value of type `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a raw word to a uniform `f64` in `[0, 1)` (53 mantissa bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // The scale-and-shift can round up to exactly `end` for maximal
        // draws; keep the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128) % span;
                (self.start as i128 + pick as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let pick = (rng.next_u64() as u128) % span;
                (start as i128 + pick as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a fixed seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k: usize = r.gen_range(0..5);
            assert!(k < 5);
            let j: usize = r.gen_range(0..=4);
            assert!(j <= 4);
            let s: i32 = r.gen_range(-3..3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
