//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md: how the α weight, the top-k path budget and the suppression
//! requirement affect scheduler cost. (Quality-side ablations are printed
//! by `cargo run -p zz-bench --bin ablation`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_sched::zzx::{Requirement, ZzxConfig};
use zz_sched::zzx_schedule;
use zz_topology::Topology;

fn bench_k_sweep(c: &mut Criterion) {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Qaoa, 9, 7), &topo));
    let mut group = c.benchmark_group("zzxsched_k");
    group.sample_size(10);
    for k in [1usize, 2, 3, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let config = ZzxConfig {
                k,
                ..ZzxConfig::paper_default(&topo)
            };
            b.iter(|| zzx_schedule(&topo, &native, &config))
        });
    }
    group.finish();
}

fn bench_alpha_sweep(c: &mut Criterion) {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Grc, 12, 7), &topo));
    let mut group = c.benchmark_group("zzxsched_alpha");
    group.sample_size(10);
    for alpha in [0.0, 0.5, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let config = ZzxConfig {
                alpha,
                ..ZzxConfig::paper_default(&topo)
            };
            b.iter(|| zzx_schedule(&topo, &native, &config))
        });
    }
    group.finish();
}

fn bench_requirement(c: &mut Criterion) {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Qv, 12, 7), &topo));
    let mut group = c.benchmark_group("zzxsched_requirement");
    group.sample_size(10);
    for (name, req) in [
        ("strict", Requirement { nq_limit: 3, nc_limit: 4 }),
        ("paper", Requirement::paper_default(&topo)),
        ("loose", Requirement { nq_limit: 99, nc_limit: 99 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &req, |b, &req| {
            let config = ZzxConfig {
                requirement: req,
                ..ZzxConfig::paper_default(&topo)
            };
            b.iter(|| zzx_schedule(&topo, &native, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k_sweep, bench_alpha_sweep, bench_requirement);
criterion_main!(benches);
