//! Wall-clock benches for the design-choice ablations called out in
//! DESIGN.md: how the α weight, the top-k path budget and the suppression
//! requirement affect scheduler cost. (Quality-side ablations are printed
//! by `cargo run -p zz-bench --bin ablation`.)

use zz_bench::timing::BenchGroup;
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_sched::zzx::{Requirement, ZzxConfig};
use zz_sched::zzx_schedule;
use zz_topology::Topology;

fn bench_k_sweep() {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Qaoa, 9, 7), &topo));
    let group = BenchGroup::new("zzxsched_k").sample_size(10);
    for k in [1usize, 2, 3, 5, 8] {
        let config = ZzxConfig {
            k,
            ..ZzxConfig::paper_default(&topo)
        };
        group.bench(&k.to_string(), || zzx_schedule(&topo, &native, &config));
    }
}

fn bench_alpha_sweep() {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Grc, 12, 7), &topo));
    let group = BenchGroup::new("zzxsched_alpha").sample_size(10);
    for alpha in [0.0, 0.5, 2.0] {
        let config = ZzxConfig {
            alpha,
            ..ZzxConfig::paper_default(&topo)
        };
        group.bench(&alpha.to_string(), || zzx_schedule(&topo, &native, &config));
    }
}

fn bench_requirement() {
    let topo = Topology::grid(3, 4);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Qv, 12, 7), &topo));
    let group = BenchGroup::new("zzxsched_requirement").sample_size(10);
    for (name, req) in [
        (
            "strict",
            Requirement {
                nq_limit: 3,
                nc_limit: 4,
            },
        ),
        ("paper", Requirement::paper_default(&topo)),
        (
            "loose",
            Requirement {
                nq_limit: 99,
                nc_limit: 99,
            },
        ),
    ] {
        let config = ZzxConfig {
            requirement: req,
            ..ZzxConfig::paper_default(&topo)
        };
        group.bench(name, || zzx_schedule(&topo, &native, &config));
    }
}

fn main() {
    bench_k_sweep();
    bench_alpha_sweep();
    bench_requirement();
}
