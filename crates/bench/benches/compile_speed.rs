//! Wall-clock benches for compilation speed.
//!
//! The paper claims every benchmark compiles in < 0.25 s on a 2.3 GHz CPU
//! (Sec 7.3); these benches measure our route → native → schedule pipeline
//! per benchmark family at the largest paper size.

use zz_bench::timing::BenchGroup;
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_sched::zzx::ZzxConfig;
use zz_sched::{par_schedule, zzx_schedule};
use zz_topology::Topology;

fn bench_full_pipeline() {
    let topo = Topology::grid(3, 4);
    let group = BenchGroup::new("compile_pipeline").sample_size(10);
    for kind in BenchmarkKind::CORE {
        let n = *kind.paper_sizes().last().expect("sizes non-empty");
        let circuit = generate(kind, n, 7);
        group.bench(&format!("zzxsched/{kind}-{n}"), || {
            let native = compile_to_native(&route(&circuit, &topo));
            zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo))
        });
        group.bench(&format!("parsched/{kind}-{n}"), || {
            let native = compile_to_native(&route(&circuit, &topo));
            par_schedule(&topo, &native)
        });
    }
}

fn bench_suppression_solver() {
    let topo = Topology::grid(3, 4);
    let group = BenchGroup::new("alpha_optimal_suppression");
    for (name, qubits) in [
        ("no_gates", vec![]),
        ("one_2q_gate", vec![5usize, 6]),
        ("two_2q_gates", vec![0, 1, 10, 11]),
    ] {
        group.bench(name, || {
            zz_sched::alpha_optimal_suppression(&topo, &qubits, 0.5, 3)
        });
    }
}

fn main() {
    bench_full_pipeline();
    bench_suppression_solver();
}
