//! Criterion benches for compilation speed.
//!
//! The paper claims every benchmark compiles in < 0.25 s on a 2.3 GHz CPU
//! (Sec 7.3); these benches measure our route → native → schedule pipeline
//! per benchmark family at the largest paper size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_sched::zzx::ZzxConfig;
use zz_sched::{par_schedule, zzx_schedule};
use zz_topology::Topology;

fn bench_full_pipeline(c: &mut Criterion) {
    let topo = Topology::grid(3, 4);
    let mut group = c.benchmark_group("compile_pipeline");
    group.sample_size(10);
    for kind in BenchmarkKind::CORE {
        let n = *kind.paper_sizes().last().expect("sizes non-empty");
        let circuit = generate(kind, n, 7);
        group.bench_with_input(
            BenchmarkId::new("zzxsched", format!("{kind}-{n}")),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let native = compile_to_native(&route(circuit, &topo));
                    zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parsched", format!("{kind}-{n}")),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let native = compile_to_native(&route(circuit, &topo));
                    par_schedule(&topo, &native)
                })
            },
        );
    }
    group.finish();
}

fn bench_suppression_solver(c: &mut Criterion) {
    let topo = Topology::grid(3, 4);
    let mut group = c.benchmark_group("alpha_optimal_suppression");
    for (name, qubits) in [
        ("no_gates", vec![]),
        ("one_2q_gate", vec![5usize, 6]),
        ("two_2q_gates", vec![0, 1, 10, 11]),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &qubits, |b, q| {
            b.iter(|| zz_sched::alpha_optimal_suppression(&topo, q, 0.5, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_suppression_solver);
criterion_main!(benches);
