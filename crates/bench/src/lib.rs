//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in this crate regenerates one figure of the paper's
//! evaluation (`fig16` … `fig28`); run e.g.
//!
//! ```text
//! cargo run -p zz-bench --release --bin fig20
//! ```
//!
//! Output is plain text: one labelled series per line, matching the rows/
//! series of the corresponding paper figure. `EXPERIMENTS.md` at the
//! workspace root records paper-vs-measured values for each figure.

#![warn(missing_docs)]

use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{compile_suite, suite_fidelities, EvalConfig, SuiteCase};
use zz_core::{BatchReport, PulseMethod, SchedulerKind};

pub mod reference;
pub mod timing;

/// Prints a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==================================================================");
    println!("{figure}: {description}");
    println!("==================================================================");
}

/// Formats a number in compact scientific notation for table cells.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    format!("{x:9.2e}")
}

/// Formats a fidelity-like number with fixed precision.
pub fn fixed(x: f64) -> String {
    format!("{x:6.3}")
}

/// Prints one row of a table: a label followed by cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<24}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// The λ/2π sweep (MHz) used by the pulse-level figures (16–19).
pub fn lambda_sweep_mhz() -> Vec<f64> {
    (0..=10).map(|k| k as f64 * 0.2).collect()
}

/// Runs closures in parallel on up to `threads` OS threads, preserving
/// input order in the output (re-export of the batch engine's pool —
/// [`zz_core::batch::parallel_map`]).
pub use zz_core::batch::parallel_map;

/// A small representative suite — three benchmark instances × the four
/// pulse/scheduler configurations, sized for the 3×3 evaluation grid —
/// shared by `examples/warm_cache.rs` and the `bench_pipeline` CI probe
/// so the documented warm-start demo and the recorded perf trajectory
/// measure the *same* workload.
pub fn demo_suite() -> Vec<zz_core::BatchJob> {
    use std::sync::Arc;
    use zz_circuit::bench::generate;
    use zz_core::BatchJob;

    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
        (PulseMethod::Dcg, SchedulerKind::ZzxSched),
    ];
    [
        (BenchmarkKind::Qft, 4),
        (BenchmarkKind::Qaoa, 6),
        (BenchmarkKind::Ising, 9),
    ]
    .iter()
    .flat_map(|&(kind, n)| {
        let circuit = Arc::new(generate(kind, n, 7));
        configs.iter().map(move |&(m, s)| {
            BatchJob::shared(Arc::clone(&circuit), m, s).with_label(format!("{kind}-{n}/{m}+{s}"))
        })
    })
    .collect()
}

/// Every core benchmark at every paper size — the case axis of Figures
/// 20–22 and 24.
pub fn core_cases() -> Vec<(BenchmarkKind, usize)> {
    BenchmarkKind::CORE
        .iter()
        .flat_map(|&kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect()
}

/// Fidelity of every `case × config` cell, compiled through one shared
/// [`zz_core::BatchCompiler`] running the pass pipeline (one calibration
/// pass per pulse method, one routing pass per benchmark instance;
/// persistent across runs when `ZZ_CACHE_DIR` is set) and evaluated in
/// parallel.
///
/// Returns one row per case, one column per config — the table shape the
/// figure binaries print — plus the compile-stage [`BatchReport`], which
/// the binaries show via its `Display` impl (summary line + per-stage
/// timing breakdown aggregated from the jobs' pipeline traces).
///
/// # Panics
///
/// Panics with the failing jobs' labels if any compile job errored
/// (failed jobs used to fold in silently as fidelity 0.0, skewing every
/// figure built from the table).
pub fn fidelity_table(
    cases: &[(BenchmarkKind, usize)],
    configs: &[(PulseMethod, SchedulerKind)],
    cfg: &EvalConfig,
) -> (Vec<Vec<f64>>, BatchReport) {
    let suite: Vec<SuiteCase> = cases
        .iter()
        .flat_map(|&(kind, n)| configs.iter().map(move |&(m, s)| (kind, n, m, s)))
        .collect();
    let report = compile_suite(&suite, cfg);
    let flat = suite_fidelities(&report, cfg);
    let table = flat.chunks(configs.len()).map(<[f64]>::to_vec).collect();
    (table, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_covers_zero_to_two_mhz() {
        let s = lambda_sweep_mhz();
        assert_eq!(s.first(), Some(&0.0));
        assert!((s.last().unwrap() - 2.0).abs() < 1e-12);
    }
}
