//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in this crate regenerates one figure of the paper's
//! evaluation (`fig16` … `fig28`); run e.g.
//!
//! ```text
//! cargo run -p zz-bench --release --bin fig20
//! ```
//!
//! Output is plain text: one labelled series per line, matching the rows/
//! series of the corresponding paper figure. `EXPERIMENTS.md` at the
//! workspace root records paper-vs-measured values for each figure.

/// Prints a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==================================================================");
    println!("{figure}: {description}");
    println!("==================================================================");
}

/// Formats a number in compact scientific notation for table cells.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    format!("{x:9.2e}")
}

/// Formats a fidelity-like number with fixed precision.
pub fn fixed(x: f64) -> String {
    format!("{x:6.3}")
}

/// Prints one row of a table: a label followed by cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<24}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// The λ/2π sweep (MHz) used by the pulse-level figures (16–19).
pub fn lambda_sweep_mhz() -> Vec<f64> {
    (0..=10).map(|k| k as f64 * 0.2).collect()
}

/// Runs closures in parallel on up to `threads` OS threads, preserving
/// input order in the output.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(count: usize, threads: usize, f: F) -> Vec<T> {
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<T>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                **slots[i].lock().expect("no poisoned slots") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_covers_zero_to_two_mhz() {
        let s = lambda_sweep_mhz();
        assert_eq!(s.first(), Some(&0.0));
        assert!((s.last().unwrap() - 2.0).abs() < 1e-12);
    }
}
