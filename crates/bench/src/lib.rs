//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in this crate regenerates one figure of the paper's
//! evaluation (`fig16` … `fig28`); run e.g.
//!
//! ```text
//! cargo run -p zz-bench --release --bin fig20
//! ```
//!
//! Output is plain text: one labelled series per line, matching the rows/
//! series of the corresponding paper figure. `EXPERIMENTS.md` at the
//! workspace root records paper-vs-measured values for each figure.

#![warn(missing_docs)]

use zz_circuit::bench::BenchmarkKind;
use zz_service::{
    CompileOptions, CompileRequest, EvalSpec, PulseMethod, SchedulerKind, ServiceReport, Session,
    Target,
};

pub mod reference;
pub mod timing;

/// The benchmark-circuit generation seed shared by every figure binary
/// (the legacy `EvalConfig::paper_default().circuit_seed`).
pub const CIRCUIT_SEED: u64 = 7;

/// Prints a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==================================================================");
    println!("{figure}: {description}");
    println!("==================================================================");
}

/// Formats a number in compact scientific notation for table cells.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    format!("{x:9.2e}")
}

/// Formats a fidelity-like number with fixed precision.
pub fn fixed(x: f64) -> String {
    format!("{x:6.3}")
}

/// Prints one row of a table: a label followed by cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<24}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// The λ/2π sweep (MHz) used by the pulse-level figures (16–19).
pub fn lambda_sweep_mhz() -> Vec<f64> {
    (0..=10).map(|k| k as f64 * 0.2).collect()
}

/// Runs closures in parallel on up to `threads` OS threads, preserving
/// input order in the output (re-export of the batch engine's pool —
/// [`zz_core::batch::parallel_map`]).
pub use zz_core::batch::parallel_map;

/// A small representative suite — three benchmark instances × the four
/// pulse/scheduler configurations, sized for the 3×3 evaluation grid —
/// shared by `examples/warm_cache.rs` and the `bench_pipeline` CI probe
/// so the documented warm-start demo and the recorded perf trajectory
/// measure the *same* workload.
pub fn demo_requests() -> Vec<CompileRequest> {
    use std::sync::Arc;
    use zz_circuit::bench::generate;

    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
        (PulseMethod::Dcg, SchedulerKind::ZzxSched),
    ];
    [
        (BenchmarkKind::Qft, 4),
        (BenchmarkKind::Qaoa, 6),
        (BenchmarkKind::Ising, 9),
    ]
    .iter()
    .flat_map(|&(kind, n)| {
        let circuit = Arc::new(generate(kind, n, CIRCUIT_SEED));
        configs.iter().map(move |&(m, s)| {
            CompileRequest::shared(Arc::clone(&circuit))
                .with_options(CompileOptions::new(m, s))
                .with_label(format!("{kind}-{n}/{m}+{s}"))
        })
    })
    .collect()
}

/// Every core benchmark at every paper size — the case axis of Figures
/// 20–22 and 24.
pub fn core_cases() -> Vec<(BenchmarkKind, usize)> {
    BenchmarkKind::CORE
        .iter()
        .flat_map(|&kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect()
}

/// A session over the paper's full 3×4 evaluation device, backed by the
/// `ZZ_CACHE_DIR` on-disk store when that variable is set — the service
/// front the figure binaries share. Per-request device overrides
/// ([`CompileRequest::on_device`]) place smaller benchmarks on their
/// paper sub-grids.
pub fn paper_session() -> Session {
    let target = Target::builder()
        .store_from_env()
        .build()
        .expect("the environment-opt-in store never fails the build");
    Session::new(target)
}

/// The smallest paper evaluation sub-grid holding `n` qubits, through
/// the service layer's typed lookup.
///
/// # Panics
///
/// Panics if `n` exceeds the paper's largest device (the harness's
/// benchmark sizes are static).
pub fn eval_device(n: usize) -> zz_topology::Topology {
    Target::for_qubits(n)
        .expect("paper benchmark sizes fit the evaluation devices")
        .topology()
        .clone()
}

/// Fidelity of every `case × config` cell, compiled *and evaluated*
/// through one shared [`Session`] queue (one calibration pass per pulse
/// method, one routing pass per benchmark instance; persistent across
/// runs when `ZZ_CACHE_DIR` is set).
///
/// Returns one row per case, one column per config — the table shape the
/// figure binaries print — plus the [`ServiceReport`], which the
/// binaries show via its `Display` impl (summary line + per-stage
/// timing breakdown aggregated from the responses' pipeline traces).
///
/// # Panics
///
/// Panics with the failing jobs' labels if any request errored
/// (failed jobs used to fold in silently as fidelity 0.0, skewing every
/// figure built from the table).
pub fn fidelity_table(
    cases: &[(BenchmarkKind, usize)],
    configs: &[(PulseMethod, SchedulerKind)],
    eval: &EvalSpec,
) -> (Vec<Vec<f64>>, ServiceReport) {
    let session = paper_session();
    let report = session.run(suite_requests(cases, configs, Some(eval)));
    let flat = report
        .fidelities()
        .unwrap_or_else(|e| panic!("suite evaluation aborted: {e}"));
    let table = flat.chunks(configs.len()).map(<[f64]>::to_vec).collect();
    (table, report)
}

/// The request list of a `cases × configs` suite: each benchmark
/// instance is generated once and shared, every request targets its
/// paper sub-grid, labels follow the `kind-n/method+scheduler` figure
/// convention.
pub fn suite_requests(
    cases: &[(BenchmarkKind, usize)],
    configs: &[(PulseMethod, SchedulerKind)],
    eval: Option<&EvalSpec>,
) -> Vec<CompileRequest> {
    use std::sync::Arc;
    use zz_circuit::bench::generate;

    let mut instances: std::collections::HashMap<(BenchmarkKind, usize), Arc<zz_circuit::Circuit>> =
        std::collections::HashMap::new();
    cases
        .iter()
        .flat_map(|&(kind, n)| {
            let circuit = Arc::clone(
                instances
                    .entry((kind, n))
                    .or_insert_with(|| Arc::new(generate(kind, n, CIRCUIT_SEED))),
            );
            let device = eval_device(n);
            configs.iter().map(move |&(m, s)| {
                let mut request = CompileRequest::shared(Arc::clone(&circuit))
                    .with_options(CompileOptions::new(m, s))
                    .on_device(device.clone())
                    .with_label(format!("{kind}-{n}/{m}+{s}"));
                if let Some(eval) = eval {
                    request = request.with_eval(eval.clone());
                }
                request
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_covers_zero_to_two_mhz() {
        let s = lambda_sweep_mhz();
        assert_eq!(s.first(), Some(&0.0));
        assert!((s.last().unwrap() - 2.0).abs() < 1e-12);
    }
}
