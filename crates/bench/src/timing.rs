//! A tiny wall-clock benchmarking harness for the `benches/` targets.
//!
//! The workspace builds hermetically (no crates.io access), so instead of
//! Criterion the bench binaries use this module: warm-up followed by a
//! fixed number of timed samples, reporting min / median / mean per case.
//! Use `cargo bench -p zz-bench` to run them.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and prints timings for one named group of related cases.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Starts a group with the default 20 samples per case.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        BenchGroup {
            name: name.to_string(),
            samples: 20,
        }
    }

    /// Overrides the number of timed samples per case.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(3);
        self
    }

    /// Times `f` (one sample = one call) and prints a stats row.
    pub fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) {
        // Warm-up: fill caches and let lazy statics initialize.
        for _ in 0..2 {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<40} min {:>10.1?}  median {:>10.1?}  mean {:>10.1?}  ({} samples)",
            format!("{}/{case}", self.name),
            min,
            median,
            mean,
            self.samples,
        );
    }
}
