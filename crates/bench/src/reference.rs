//! The straight-line reference executor — the pre-engine semantics,
//! pinned in one place.
//!
//! This is the executor as it existed before the precompiled engine of
//! `zz_sim::program`: one amplitude sweep per undriven coupling per
//! layer, an `O(ops)` residual scan per coupling per run, gate matrices
//! built fresh per application, Kraus sampling with an explicit
//! normalization pass, and strictly sequential trajectories on a single
//! RNG stream.
//!
//! Two consumers share it, so the baseline cannot drift apart:
//!
//! * `tests/sim_engine.rs` pins the engine amplitude-for-amplitude
//!   against it across the `(PulseMethod, SchedulerKind)` matrix;
//! * the `bench_sim` CI probe measures the engine's speedup against it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zz_circuit::native::NativeOp;
use zz_sched::{GateDurations, Layer, SchedulePlan};
use zz_sim::density::{amplitude_damping, Decoherence};
use zz_sim::executor::{ResidualTable, ZzErrorModel};
use zz_sim::StateVector;
use zz_topology::Topology;

fn qubit_residual(layer: &Layer, q: usize, table: &ResidualTable) -> f64 {
    for op in &layer.ops {
        match *op {
            NativeOp::X90 { qubit } if qubit == q => return table.x90,
            NativeOp::Id { qubit } if qubit == q => return table.id,
            NativeOp::Zx90 { control, .. } if control == q => return table.zx90_control,
            NativeOp::Zx90 { target, .. } if target == q => return table.zx90_target,
            _ => {}
        }
    }
    1.0
}

fn apply_layer_gates(sv: &mut StateVector, layer: &Layer) {
    for &(q, theta) in &layer.rz_before {
        sv.apply_rz(theta, q);
    }
    for op in &layer.ops {
        match *op {
            NativeOp::Rz { qubit, theta } => sv.apply_rz(theta, qubit),
            NativeOp::X90 { qubit } => sv.apply_single(&zz_quantum::gates::x90(), qubit),
            NativeOp::Zx90 { control, target } => {
                sv.apply_two(&zz_quantum::gates::zx90(), control, target)
            }
            NativeOp::Id { .. } => {}
        }
    }
}

fn apply_layer_zz(
    sv: &mut StateVector,
    layer: &Layer,
    topo: &Topology,
    model: &ZzErrorModel,
    duration: f64,
) {
    let mut driven = vec![false; topo.coupling_count()];
    for op in &layer.ops {
        if let NativeOp::Zx90 { control, target } = *op {
            if let Some(e) = topo.coupling_between(control, target) {
                driven[e] = true;
            }
        }
    }
    for (e, &(u, v)) in topo.couplings().iter().enumerate() {
        if driven[e] {
            continue;
        }
        let factor = if layer.metrics.suppressed[e] {
            if layer.pulsed[u] {
                qubit_residual(layer, u, &model.residuals)
            } else {
                qubit_residual(layer, v, &model.residuals)
            }
        } else {
            1.0
        };
        sv.apply_zz_phase(model.lambdas[e] * factor * duration, u, v);
    }
}

/// Runs the plan with no errors at all — the ideal reference state,
/// computed with one phase pass per rotation.
pub fn run_ideal(plan: &SchedulePlan) -> StateVector {
    let mut sv = StateVector::zero(plan.qubit_count());
    for layer in &plan.layers {
        apply_layer_gates(&mut sv, layer);
    }
    for &(q, theta) in &plan.final_rz {
        sv.apply_rz(theta, q);
    }
    sv
}

/// Runs the plan under ZZ crosstalk with one amplitude sweep per
/// undriven coupling per layer.
pub fn run_with_zz(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    durations: &GateDurations,
) -> StateVector {
    let mut sv = StateVector::zero(plan.qubit_count());
    for layer in &plan.layers {
        apply_layer_gates(&mut sv, layer);
        apply_layer_zz(&mut sv, layer, topo, model, layer.duration(durations));
    }
    for &(q, theta) in &plan.final_rz {
        sv.apply_rz(theta, q);
    }
    sv
}

fn sample_amplitude_damping(sv: &mut StateVector, q: usize, gamma: f64, rng: &mut StdRng) {
    if gamma == 0.0 {
        return;
    }
    let p_jump = gamma * sv.excited_population(q);
    let kraus = amplitude_damping(gamma);
    let chosen = if rng.gen_range(0.0..1.0) < p_jump {
        &kraus[1]
    } else {
        &kraus[0]
    };
    sv.apply_single(chosen, q);
    sv.normalize();
}

fn sample_dephasing(sv: &mut StateVector, q: usize, p: f64, rng: &mut StdRng) {
    if p == 0.0 {
        return;
    }
    if rng.gen_range(0.0..1.0) < p {
        sv.apply_single(&zz_quantum::pauli::Pauli::Z.matrix(), q);
    }
}

fn run_trajectory(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
    rng: &mut StdRng,
) -> StateVector {
    let n = plan.qubit_count();
    let mut sv = StateVector::zero(n);
    for layer in &plan.layers {
        apply_layer_gates(&mut sv, layer);
        let dt = layer.duration(durations);
        apply_layer_zz(&mut sv, layer, topo, model, dt);
        let gamma = deco.gamma(dt);
        let p_flip = deco.phase_flip(dt);
        for q in 0..n {
            sample_amplitude_damping(&mut sv, q, gamma, rng);
            sample_dephasing(&mut sv, q, p_flip, rng);
        }
    }
    for &(q, theta) in &plan.final_rz {
        sv.apply_rz(theta, q);
    }
    sv
}

/// Mean fidelity over `trajectories` strictly sequential Monte-Carlo
/// runs drawing from one shared RNG stream.
#[allow(clippy::too_many_arguments)] // mirrors the executor signature
pub fn fidelity_with_decoherence(
    plan: &SchedulePlan,
    topo: &Topology,
    model: &ZzErrorModel,
    deco: &Decoherence,
    durations: &GateDurations,
    trajectories: usize,
    seed: u64,
) -> f64 {
    let ideal = run_ideal(plan);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..trajectories {
        let out = run_trajectory(plan, topo, model, deco, durations, &mut rng);
        total += ideal.fidelity(&out);
    }
    total / trajectories as f64
}
