//! Figure 23: 6-qubit benchmarks under ZZ crosstalk *and* decoherence,
//! `T1 = T2 ∈ {100, 200, 500, 1000}` µs.
//!
//! Decoherence is simulated by Monte-Carlo trajectory unraveling (validated
//! against exact density-matrix evolution in `zz-sim`'s tests). The whole
//! benchmark × T1 × configuration grid goes through one [`Session`] queue:
//! workers compile *and* evaluate, and the session caches route each
//! benchmark once and calibrate each pulse method once.

use std::sync::Arc;

use zz_bench::{banner, fixed, row, CIRCUIT_SEED};
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_service::{
    CompileOptions, CompileRequest, EvalSpec, PulseMethod, SchedulerKind, Session, Target,
};

fn main() {
    banner(
        "Figure 23",
        "6-qubit benchmarks under ZZ crosstalk + decoherence",
    );
    let times_us = [100.0, 200.0, 500.0, 1000.0];
    let trajectories = 64;
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];

    let session = Session::new(Target::for_qubits(6).expect("6 qubits fit the paper devices"));
    for kind in BenchmarkKind::CORE {
        let circuit = Arc::new(generate(kind, 6, CIRCUIT_SEED));
        for &t in &times_us {
            for &(m, s) in &configs {
                let eval = EvalSpec::paper_default()
                    .with_seeds(vec![11, 23])
                    .with_decoherence_us(t, trajectories);
                session.submit(
                    CompileRequest::shared(Arc::clone(&circuit))
                        .with_options(CompileOptions::new(m, s))
                        .with_eval(eval)
                        .with_label(format!("{kind}-6/T{t}/{m}+{s}")),
                );
            }
        }
    }
    let report = session.drain();
    eprintln!("[service] {report}");
    let fidelities = report
        .fidelities()
        .unwrap_or_else(|e| panic!("suite evaluation aborted: {e}"));

    for (bi, kind) in BenchmarkKind::CORE.iter().enumerate() {
        println!("\n-- {kind}-6 --");
        row(
            "T1=T2 (us)",
            &times_us
                .iter()
                .map(|t| format!("{t:10.0}"))
                .collect::<Vec<_>>(),
        );
        for (cj, &(m, s)) in configs.iter().enumerate() {
            let series: Vec<String> = times_us
                .iter()
                .enumerate()
                .map(|(ti, _)| fixed(fidelities[bi * times_us.len() * 3 + ti * 3 + cj]))
                .collect();
            row(&format!("{m}+{s}"), &series);
        }
        let improvement: Vec<String> = times_us
            .iter()
            .enumerate()
            .map(|(ti, _)| {
                let base = fidelities[bi * times_us.len() * 3 + ti * 3];
                let ours = fidelities[bi * times_us.len() * 3 + ti * 3 + 2];
                if base > 1e-6 {
                    format!("{:8.1}x", ours / base)
                } else {
                    "inf".into()
                }
            })
            .collect();
        row("improvement", &improvement);
    }
}
