//! Figure 23: 6-qubit benchmarks under ZZ crosstalk *and* decoherence,
//! `T1 = T2 ∈ {100, 200, 500, 1000}` µs.
//!
//! Decoherence is simulated by Monte-Carlo trajectory unraveling (validated
//! against exact density-matrix evolution in `zz-sim`'s tests).

use zz_bench::{banner, fixed, parallel_map, row};
use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{benchmark_fidelity, EvalConfig};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 23",
        "6-qubit benchmarks under ZZ crosstalk + decoherence",
    );
    let times_us = [100.0, 200.0, 500.0, 1000.0];
    let trajectories = 64;
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];

    let mut jobs: Vec<(BenchmarkKind, f64, PulseMethod, SchedulerKind)> = Vec::new();
    for kind in BenchmarkKind::CORE {
        for &t in &times_us {
            for &(m, s) in &configs {
                jobs.push((kind, t, m, s));
            }
        }
    }
    let threads = zz_core::batch::default_threads();
    let fidelities = parallel_map(jobs.len(), threads, |i| {
        let (kind, t, m, s) = jobs[i];
        let cfg = EvalConfig {
            crosstalk_seeds: vec![11, 23],
            ..EvalConfig::paper_default()
        }
        .with_decoherence_us(t, trajectories);
        benchmark_fidelity(kind, 6, m, s, &cfg)
    });

    for (bi, kind) in BenchmarkKind::CORE.iter().enumerate() {
        println!("\n-- {kind}-6 --");
        row(
            "T1=T2 (us)",
            &times_us
                .iter()
                .map(|t| format!("{t:10.0}"))
                .collect::<Vec<_>>(),
        );
        for (cj, &(m, s)) in configs.iter().enumerate() {
            let series: Vec<String> = times_us
                .iter()
                .enumerate()
                .map(|(ti, _)| fixed(fidelities[bi * times_us.len() * 3 + ti * 3 + cj]))
                .collect();
            row(&format!("{m}+{s}"), &series);
        }
        let improvement: Vec<String> = times_us
            .iter()
            .enumerate()
            .map(|(ti, _)| {
                let base = fidelities[bi * times_us.len() * 3 + ti * 3];
                let ours = fidelities[bi * times_us.len() * 3 + ti * 3 + 2];
                if base > 1e-6 {
                    format!("{:8.1}x", ours / base)
                } else {
                    "inf".into()
                }
            })
            .collect();
        row("improvement", &improvement);
    }
}
