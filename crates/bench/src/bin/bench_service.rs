//! Service load harness — the latency/throughput probe run by CI.
//!
//! Starts one in-process `zz_net` server per concurrency level (fresh
//! session, fresh calibration cache, fresh scratch artifact store —
//! nothing carries over between levels) and replays a **mixed workload**
//! against it from N concurrent client connections:
//!
//! * **cold compiles** — the first appearance of each distinct circuit
//!   pays routing, scheduling and (once per method) calibration;
//! * **warm cache hits** — each circuit is replayed several times, so
//!   later appearances serve from the session's routing memo, the disk
//!   store, or coalesce onto an identical in-flight job;
//! * **in-queue evals** — a slice of the requests also asks the server
//!   for a fidelity evaluation over fixed crosstalk seeds.
//!
//! Per-request wall latency is measured client-side around the blocking
//! round-trip. For each concurrency level (1, 4 and 16 clients) the
//! p50/p95/p99 latency percentiles, the throughput, and the server-side
//! coalescing/backpressure counters are written to `BENCH_service.json`
//! (override the path with the `BENCH_SERVICE_OUT` environment
//! variable), next to the `bench_pipeline`/`bench_sim` snapshots CI
//! already records per commit.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::calib::CalibCache;
use zz_net::{Client, ClientError, CompileEnvelope, Server, ServerConfig};
use zz_service::{Session, Target};
use zz_topology::Topology;

/// Client fan-in widths the workload is replayed at.
const CONCURRENCY_LEVELS: [usize; 3] = [1, 4, 16];

/// How many times each distinct circuit appears in the workload: the
/// first appearance is a cold compile, the rest are warm hits (or
/// coalesce, when they race the first one).
const REPLAYS: usize = 8;

/// Crosstalk seeds for the eval slice of the workload.
const EVAL_SEEDS: [u64; 2] = [11, 23];

/// The mixed workload: every distinct circuit `REPLAYS` times, the QAOA
/// instance additionally carrying an in-queue fidelity evaluation.
/// Replays are interleaved (a b c, a b c, …) so warm traffic overlaps
/// cold traffic instead of trailing it.
fn workload() -> Vec<CompileEnvelope> {
    let distinct = [
        (BenchmarkKind::Qaoa, "qaoa"),
        (BenchmarkKind::Ising, "ising"),
        (BenchmarkKind::HiddenShift, "hs"),
        (BenchmarkKind::Qft, "qft"),
    ];
    let mut requests = Vec::new();
    for replay in 0..REPLAYS {
        for (kind, name) in distinct {
            let mut envelope =
                CompileEnvelope::new(generate(kind, 4, 7)).with_label(format!("{name}-r{replay}"));
            if kind == BenchmarkKind::Qaoa {
                envelope = envelope.with_eval_seeds(EVAL_SEEDS.to_vec());
            }
            requests.push(envelope);
        }
    }
    requests
}

/// Latency samples and server counters from one concurrency level.
struct LevelResult {
    concurrency: usize,
    requests: usize,
    wall: Duration,
    /// Sorted per-request wall latencies.
    latencies: Vec<Duration>,
    /// Mean server-side queue wait across successful compiles.
    queue_wait_mean: Duration,
    coalesced: usize,
    busy_retries: usize,
}

/// Nearest-rank percentile over the (sorted) samples.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replays the workload from `concurrency` client connections against a
/// fresh server and returns the measured distribution.
fn run_level(concurrency: usize) -> LevelResult {
    let dir = std::env::temp_dir().join(format!(
        "zz-bench-service-{}-{concurrency}",
        std::process::id()
    ));
    let target = Target::builder()
        .topology(Topology::grid(2, 2))
        .store_dir(&dir)
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("scratch cache directory is writable");
    let session = Arc::new(Session::new(target));
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&session), ServerConfig::default())
        .expect("ephemeral port");
    let addr = server.local_addr().expect("bound socket has an address");
    let control = server.control();
    let serving = std::thread::spawn(move || server.serve());

    let requests = workload();
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    // Each worker owns one connection and pulls the next request off the
    // shared workload until it is exhausted — the same fan-in shape a
    // fleet of remote callers produces.
    let samples: Vec<(Vec<Duration>, Duration, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connects");
                    let mut latencies = Vec::new();
                    let mut queue_wait = Duration::ZERO;
                    let mut busy_retries = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(envelope) = requests.get(i) else {
                            break;
                        };
                        let sent = Instant::now();
                        let compiled = loop {
                            match client.compile(envelope.clone()) {
                                Ok(compiled) => break compiled,
                                Err(ClientError::Busy) => {
                                    busy_retries += 1;
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(e) => panic!("workload request failed: {e}"),
                            }
                        };
                        latencies.push(sent.elapsed());
                        queue_wait += Duration::from_micros(compiled.queue_micros);
                        if envelope.eval_seeds.is_some() {
                            assert!(compiled.fidelity.is_some(), "eval requests carry fidelity");
                        }
                    }
                    (latencies, queue_wait, busy_retries)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker does not panic"))
            .collect()
    });
    let wall = t0.elapsed();

    control.shutdown();
    serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");

    let mut latencies = Vec::new();
    let mut queue_wait = Duration::ZERO;
    let mut busy_retries = 0;
    for (lat, qw, busy) in samples {
        latencies.extend(lat);
        queue_wait += qw;
        busy_retries += busy;
    }
    assert_eq!(latencies.len(), requests.len(), "every request answered");
    latencies.sort();

    let report = session.drain();
    assert_eq!(report.error_count(), 0, "workload must compile cleanly");
    let _ = std::fs::remove_dir_all(&dir);

    LevelResult {
        concurrency,
        requests: requests.len(),
        wall,
        queue_wait_mean: queue_wait / latencies.len() as u32,
        latencies,
        coalesced: session.coalesced_jobs(),
        busy_retries,
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn level_json(level: &LevelResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"concurrency\": {}, \"requests\": {}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.1}, \
         \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"queue_wait_us_mean\": {:.1}, \
         \"coalesced\": {}, \"busy_retries\": {}}}",
        level.concurrency,
        level.requests,
        level.wall.as_secs_f64() * 1e3,
        level.requests as f64 / level.wall.as_secs_f64(),
        us(percentile(&level.latencies, 50.0)),
        us(percentile(&level.latencies, 95.0)),
        us(percentile(&level.latencies, 99.0)),
        us(level.queue_wait_mean),
        level.coalesced,
        level.busy_retries,
    );
    out
}

fn main() {
    let mut levels = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let level = run_level(concurrency);
        println!(
            "[c={:>2}] {} requests in {:.1?}: {:.1} req/s, p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs, \
             {} coalesced, {} busy retries",
            level.concurrency,
            level.requests,
            level.wall,
            level.requests as f64 / level.wall.as_secs_f64(),
            us(percentile(&level.latencies, 50.0)),
            us(percentile(&level.latencies, 95.0)),
            us(percentile(&level.latencies, 99.0)),
            level.coalesced,
            level.busy_retries,
        );
        levels.push(level);
    }

    let mut json =
        String::from("{\n  \"schema\": 1,\n  \"device\": \"grid-2x2\",\n  \"levels\": [\n");
    for (i, level) in levels.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            level_json(level),
            if i + 1 < levels.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
