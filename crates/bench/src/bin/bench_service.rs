//! Service load harness — the latency/throughput probe run by CI.
//!
//! Starts one in-process `zz_net` server per concurrency level (fresh
//! session, fresh calibration cache, fresh scratch artifact store —
//! nothing carries over between levels) and replays a **mixed workload**
//! against it from N concurrent client connections:
//!
//! * **cold compiles** — the first appearance of each distinct circuit
//!   pays routing, scheduling and (once per method) calibration;
//! * **warm cache hits** — each circuit is replayed several times, so
//!   later appearances serve from the session's routing memo, the disk
//!   store, or coalesce onto an identical in-flight job;
//! * **in-queue evals** — a slice of the requests also asks the server
//!   for a fidelity evaluation over fixed crosstalk seeds.
//!
//! Per-request wall latency is measured client-side around the blocking
//! round-trip; everything server-side — queue waits, coalescing splits,
//! busy rejections, per-stage pipeline timings — comes from one
//! `Client::stats()` scrape of the live server at the end of each level,
//! the same snapshot any monitoring agent would pull. For each
//! concurrency level (1, 4 and 16 clients) the p50/p95/p99 latency
//! percentiles, the throughput, and the embedded stats scrape are
//! written to `BENCH_service.json` (override the path with the
//! `BENCH_SERVICE_OUT` environment variable), next to the
//! `bench_pipeline`/`bench_sim` snapshots CI already records per commit.
//! The final level's scrape is also dumped as Prometheus-style text
//! exposition to `METRICS_snapshot.txt` (override with
//! `METRICS_SNAPSHOT_OUT`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::calib::CalibCache;
use zz_net::{Client, ClientError, CompileEnvelope, MetricsSnapshot, Server, ServerConfig};
use zz_service::{Session, Target};
use zz_topology::Topology;

/// Client fan-in widths the workload is replayed at.
const CONCURRENCY_LEVELS: [usize; 3] = [1, 4, 16];

/// How many times each distinct circuit appears in the workload: the
/// first appearance is a cold compile, the rest are warm hits (or
/// coalesce, when they race the first one).
const REPLAYS: usize = 8;

/// Crosstalk seeds for the eval slice of the workload.
const EVAL_SEEDS: [u64; 2] = [11, 23];

/// The mixed workload: every distinct circuit `REPLAYS` times, the QAOA
/// instance additionally carrying an in-queue fidelity evaluation.
/// Replays are interleaved (a b c, a b c, …) so warm traffic overlaps
/// cold traffic instead of trailing it.
fn workload() -> Vec<CompileEnvelope> {
    let distinct = [
        (BenchmarkKind::Qaoa, "qaoa"),
        (BenchmarkKind::Ising, "ising"),
        (BenchmarkKind::HiddenShift, "hs"),
        (BenchmarkKind::Qft, "qft"),
    ];
    let mut requests = Vec::new();
    for replay in 0..REPLAYS {
        for (kind, name) in distinct {
            let mut envelope =
                CompileEnvelope::new(generate(kind, 4, 7)).with_label(format!("{name}-r{replay}"));
            if kind == BenchmarkKind::Qaoa {
                envelope = envelope.with_eval_seeds(EVAL_SEEDS.to_vec());
            }
            requests.push(envelope);
        }
    }
    requests
}

/// Latency samples and the server's own stats scrape from one
/// concurrency level.
struct LevelResult {
    concurrency: usize,
    requests: usize,
    wall: Duration,
    /// Sorted per-request wall latencies.
    latencies: Vec<Duration>,
    /// The server's live metrics registry, scraped over the wire after
    /// the last response and before shutdown.
    stats: MetricsSnapshot,
}

impl LevelResult {
    fn counter(&self, name: &str) -> u64 {
        self.stats.counter(name).unwrap_or(0)
    }
}

/// Nearest-rank percentile over the (sorted) samples.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replays the workload from `concurrency` client connections against a
/// fresh server and returns the measured distribution.
fn run_level(concurrency: usize) -> LevelResult {
    let dir = std::env::temp_dir().join(format!(
        "zz-bench-service-{}-{concurrency}",
        std::process::id()
    ));
    let target = Target::builder()
        .topology(Topology::grid(2, 2))
        .store_dir(&dir)
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("scratch cache directory is writable");
    let session = Arc::new(Session::new(target));
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&session), ServerConfig::default())
        .expect("ephemeral port");
    let addr = server.local_addr().expect("bound socket has an address");
    let control = server.control();
    let serving = std::thread::spawn(move || server.serve());

    let requests = workload();
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    // Each worker owns one connection and pulls the next request off the
    // shared workload until it is exhausted — the same fan-in shape a
    // fleet of remote callers produces.
    let samples: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connects");
                    let mut latencies = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(envelope) = requests.get(i) else {
                            break;
                        };
                        let sent = Instant::now();
                        let compiled = loop {
                            match client.compile(envelope.clone()) {
                                Ok(compiled) => break compiled,
                                Err(ClientError::Busy) => {
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(e) => panic!("workload request failed: {e}"),
                            }
                        };
                        latencies.push(sent.elapsed());
                        assert!(
                            compiled.request_id.as_u64() != 0,
                            "every answer carries its server-side request id"
                        );
                        if envelope.eval_seeds.is_some() {
                            assert!(compiled.fidelity.is_some(), "eval requests carry fidelity");
                        }
                    }
                    latencies
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker does not panic"))
            .collect()
    });
    let wall = t0.elapsed();

    // One live scrape before shutdown: this is where every server-side
    // number in the snapshot JSON comes from.
    let stats = Client::connect(addr)
        .expect("connects")
        .stats()
        .expect("live server answers Stats");

    control.shutdown();
    serving
        .join()
        .expect("acceptor does not panic")
        .expect("serve exits cleanly");

    let mut latencies: Vec<Duration> = samples.into_iter().flatten().collect();
    assert_eq!(latencies.len(), requests.len(), "every request answered");
    latencies.sort();

    let report = session.drain();
    assert_eq!(report.error_count(), 0, "workload must compile cleanly");
    // The scrape and the in-process view agree on the coalescing split.
    assert_eq!(
        stats.counter("session.coalesce.follower").unwrap_or(0),
        session.coalesced_jobs() as u64,
        "scraped follower count matches the session's own"
    );
    let _ = std::fs::remove_dir_all(&dir);

    LevelResult {
        concurrency,
        requests: requests.len(),
        wall,
        latencies,
        stats,
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// The embedded per-level scrape: every counter and gauge verbatim, and
/// a `{count, mean, p50, p95, p99}` summary per histogram.
fn stats_json(stats: &MetricsSnapshot) -> String {
    let mut parts = Vec::new();
    for (name, value) in &stats.counters {
        parts.push(format!("\"{name}\": {value}"));
    }
    for (name, value) in &stats.gauges {
        parts.push(format!("\"{name}\": {value}"));
    }
    for h in &stats.histograms {
        parts.push(format!(
            "\"{}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            h.name,
            h.count,
            h.mean(),
            h.percentile(50.0).unwrap_or(0),
            h.percentile(95.0).unwrap_or(0),
            h.percentile(99.0).unwrap_or(0),
        ));
    }
    format!("{{{}}}", parts.join(", "))
}

fn level_json(level: &LevelResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"concurrency\": {}, \"requests\": {}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.1}, \
         \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"stats\": {}}}",
        level.concurrency,
        level.requests,
        level.wall.as_secs_f64() * 1e3,
        level.requests as f64 / level.wall.as_secs_f64(),
        us(percentile(&level.latencies, 50.0)),
        us(percentile(&level.latencies, 95.0)),
        us(percentile(&level.latencies, 99.0)),
        stats_json(&level.stats),
    );
    out
}

fn main() {
    let mut levels = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let level = run_level(concurrency);
        println!(
            "[c={:>2}] {} requests in {:.1?}: {:.1} req/s, p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs, \
             {} coalesced, {} busy",
            level.concurrency,
            level.requests,
            level.wall,
            level.requests as f64 / level.wall.as_secs_f64(),
            us(percentile(&level.latencies, 50.0)),
            us(percentile(&level.latencies, 95.0)),
            us(percentile(&level.latencies, 99.0)),
            level.counter("session.coalesce.follower"),
            level.counter("net.busy"),
        );
        levels.push(level);
    }

    let mut json =
        String::from("{\n  \"schema\": 2,\n  \"device\": \"grid-2x2\",\n  \"levels\": [\n");
    for (i, level) in levels.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            level_json(level),
            if i + 1 < levels.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");

    // The highest-fan-in level's scrape, as the text exposition any
    // Prometheus-compatible agent would see.
    let exposition = levels
        .last()
        .expect("at least one level ran")
        .stats
        .render_prometheus();
    let metrics_out =
        std::env::var("METRICS_SNAPSHOT_OUT").unwrap_or_else(|_| "METRICS_snapshot.txt".into());
    std::fs::write(&metrics_out, exposition).expect("metrics exposition file writable");
    println!("wrote {metrics_out}");
}
