//! Per-stage pipeline timing snapshot — the perf-trajectory probe run by
//! CI.
//!
//! Compiles a representative benchmark suite twice through the pass-based
//! pipeline against one scratch artifact store:
//!
//! * **cold** — fresh cache directory, fresh calibration: every stage
//!   runs;
//! * **warm** — a new compiler and reset calibration over the same
//!   directory, exactly like a new process: route/lower and the
//!   whole-plan artifacts serve from disk, calibration loads instead of
//!   measuring.
//!
//! The aggregated [`BatchReport::stage_stats`] of both passes is written
//! as `BENCH_pipeline.json` (override the path with the
//! `BENCH_PIPELINE_OUT` environment variable), so the CI workflow can
//! record how per-stage timings evolve across PRs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use zz_bench::demo_suite;
use zz_core::batch::BatchCompiler;
use zz_core::calib::CalibCache;
use zz_core::BatchReport;
use zz_persist::ArtifactStore;
use zz_topology::Topology;

fn run_pass(dir: &std::path::Path) -> BatchReport {
    // A fresh compiler and a fresh calibration cache per pass: nothing
    // carries over in memory, exactly like a new process.
    BatchCompiler::builder()
        .topology(Topology::grid(3, 3))
        .store(ArtifactStore::at(dir))
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .run(demo_suite())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Serializes one pass's report as a JSON object (hand-rolled: the
/// workspace builds without external crates).
fn pass_json(report: &BatchReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"jobs\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \"calibration_runs\": {}, \"disk_hits\": {}, \"stages\": [",
        report.outcomes.len(),
        ms(report.wall_time),
        ms(report.cpu_time()),
        report.calibration_runs,
        report.disk_hits,
    );
    for (i, stats) in report.stage_stats().iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"stage\": \"{}\", \"runs\": {}, \"cache_hits\": {}, \"wall_ms\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            stats.stage,
            stats.executed,
            stats.cache_hits,
            ms(stats.wall),
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let dir = std::env::temp_dir().join(format!("zz-bench-pipeline-{}", std::process::id()));
    let cold = run_pass(&dir);
    println!("[cold] {cold}");
    let warm = run_pass(&dir);
    println!("[warm] {warm}");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(cold.error_count(), 0, "cold pass must compile everything");
    assert_eq!(warm.error_count(), 0, "warm pass must compile everything");
    assert_eq!(warm.calibration_runs, 0, "warm pass must not calibrate");
    assert_eq!(warm.route_misses, 0, "warm pass must not route");

    let json = format!(
        "{{\n  \"schema\": 1,\n  \"cold\": {},\n  \"warm\": {}\n}}\n",
        pass_json(&cold),
        pass_json(&warm),
    );
    let out = std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
