//! Per-stage pipeline timing snapshot — the perf-trajectory probe run by
//! CI.
//!
//! Compiles a representative benchmark suite twice through the service
//! layer against one scratch artifact store:
//!
//! * **cold** — fresh cache directory, fresh calibration: every stage
//!   runs;
//! * **warm** — a new session and reset calibration over the same
//!   directory, exactly like a new process: route/lower and the
//!   whole-plan artifacts serve from disk, calibration loads instead of
//!   measuring.
//!
//! A third probe measures the *cost of the service facade itself*: the
//! same suite, on one worker, submitted through [`Session::submit`] /
//! [`Session::drain`] versus compiled synchronously (a direct
//! `PassManager::run` on the caller thread). The difference is the queue
//! overhead a request pays for non-blocking submission.
//!
//! The aggregated per-stage statistics of the cold/warm passes and the
//! queue-overhead probe are written as `BENCH_pipeline.json` (override
//! the path with the `BENCH_PIPELINE_OUT` environment variable), so the
//! CI workflow can record how both evolve across PRs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use zz_bench::demo_requests;
use zz_core::calib::CalibCache;
use zz_service::{ServiceReport, Session, Target};
use zz_topology::Topology;

fn session_at(dir: &std::path::Path, threads: Option<usize>) -> Session {
    // A fresh session and a fresh calibration cache per pass: nothing
    // carries over in memory, exactly like a new process.
    let target = Target::builder()
        .topology(Topology::grid(3, 3))
        .store_dir(dir)
        .calib_cache(Arc::new(CalibCache::new()))
        .build()
        .expect("scratch cache directory is writable");
    match threads {
        Some(threads) => Session::with_threads(target, threads),
        None => Session::new(target),
    }
}

fn run_pass(dir: &std::path::Path) -> ServiceReport {
    session_at(dir, None).run(demo_requests())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times the facade two ways on one worker: non-blocking submit/drain
/// (queued) vs synchronous compiles (direct `PassManager::run` on the
/// caller thread). Returns `(direct, queued)` wall times.
fn queue_probe(dir: &std::path::Path) -> (Duration, Duration) {
    let direct_session = session_at(&dir.join("direct"), Some(1));
    let t0 = Instant::now();
    for request in demo_requests() {
        direct_session
            .compile(&request)
            .expect("the demo suite compiles");
    }
    let direct = t0.elapsed();

    let queued_session = session_at(&dir.join("queued"), Some(1));
    let t0 = Instant::now();
    let report = queued_session.run(demo_requests());
    let queued = t0.elapsed();
    assert_eq!(report.error_count(), 0, "queued probe must compile");
    (direct, queued)
}

/// Serializes one pass's report as a JSON object (hand-rolled: the
/// workspace builds without external crates).
fn pass_json(report: &ServiceReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"jobs\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \"queue_wait_ms\": {:.3}, \"calibration_runs\": {}, \"disk_hits\": {}, \"stages\": [",
        report.outcomes.len(),
        ms(report.wall_time),
        ms(report.cpu_time()),
        ms(report.queue_wait()),
        report.calibration_runs,
        report.disk_hits,
    );
    for (i, stats) in report.stage_stats().iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"stage\": \"{}\", \"runs\": {}, \"cache_hits\": {}, \"wall_ms\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            stats.stage,
            stats.executed,
            stats.cache_hits,
            ms(stats.wall),
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let dir = std::env::temp_dir().join(format!("zz-bench-pipeline-{}", std::process::id()));
    let cold = run_pass(&dir);
    println!("[cold] {cold}");
    let warm = run_pass(&dir);
    println!("[warm] {warm}");

    assert_eq!(cold.error_count(), 0, "cold pass must compile everything");
    assert_eq!(warm.error_count(), 0, "warm pass must compile everything");
    assert_eq!(warm.calibration_runs, 0, "warm pass must not calibrate");
    assert_eq!(warm.route_misses, 0, "warm pass must not route");

    let (direct, queued) = queue_probe(&dir);
    let jobs = demo_requests().len();
    let overhead = queued.saturating_sub(direct);
    println!(
        "[queue] {jobs} jobs on 1 worker: direct {:.1?}, queued {:.1?}, overhead {:.1?} ({:.1}µs/job)",
        direct,
        queued,
        overhead,
        overhead.as_secs_f64() * 1e6 / jobs as f64,
    );
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"schema\": 2,\n  \"cold\": {},\n  \"warm\": {},\n  \"queue_probe\": {{\"jobs\": {}, \"direct_ms\": {:.3}, \"queued_ms\": {:.3}, \"overhead_ms\": {:.3}}}\n}}\n",
        pass_json(&cold),
        pass_json(&warm),
        jobs,
        ms(direct),
        ms(queued),
        ms(overhead),
    );
    let out = std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
