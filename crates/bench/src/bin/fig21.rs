//! Figure 21: the synergy of co-optimization — pulses alone
//! (`Pert+ParSched`), scheduling alone (`Gau+ZZXSched`), and both
//! (`Pert+ZZXSched`).

use zz_bench::{banner, core_cases, fidelity_table, fixed, row};
use zz_service::{EvalSpec, PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 21",
        "pulses alone vs scheduling alone vs co-optimization",
    );
    let eval = EvalSpec::paper_default();
    let cases = core_cases();
    let configs = [
        (PulseMethod::Pert, SchedulerKind::ParSched),
        (PulseMethod::Gaussian, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];
    let (table, report) = fidelity_table(&cases, &configs, &eval);
    eprintln!("[service] {report}");

    row(
        "benchmark",
        &["Pert+Par".into(), "Gau+ZZX".into(), "Pert+ZZX".into()],
    );
    let mut synergy_wins = 0usize;
    for (&(kind, n), f) in cases.iter().zip(&table) {
        if f[2] >= f[0].max(f[1]) - 1e-9 {
            synergy_wins += 1;
        }
        row(
            &format!("{kind}-{n}"),
            &[fixed(f[0]), fixed(f[1]), fixed(f[2])],
        );
    }
    println!(
        "\nco-optimization is at least as good as either part alone on {synergy_wins}/{} benchmarks",
        cases.len()
    );
}
