//! Figure 21: the synergy of co-optimization — pulses alone
//! (`Pert+ParSched`), scheduling alone (`Gau+ZZXSched`), and both
//! (`Pert+ZZXSched`).

use zz_bench::{banner, fixed, parallel_map, row};
use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{benchmark_fidelity, EvalConfig};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner("Figure 21", "pulses alone vs scheduling alone vs co-optimization");
    let cfg = EvalConfig::paper_default();

    let cases: Vec<(BenchmarkKind, usize)> = BenchmarkKind::CORE
        .iter()
        .flat_map(|&kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect();
    let configs = [
        (PulseMethod::Pert, SchedulerKind::ParSched),
        (PulseMethod::Gaussian, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];

    let jobs: Vec<(BenchmarkKind, usize, PulseMethod, SchedulerKind)> = cases
        .iter()
        .flat_map(|&(k, n)| configs.iter().map(move |&(m, s)| (k, n, m, s)))
        .collect();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let fidelities = parallel_map(jobs.len(), threads, |i| {
        let (k, n, m, s) = jobs[i];
        benchmark_fidelity(k, n, m, s, &cfg)
    });

    row(
        "benchmark",
        &["Pert+Par".into(), "Gau+ZZX".into(), "Pert+ZZX".into()],
    );
    let mut synergy_wins = 0usize;
    for (ci, &(kind, n)) in cases.iter().enumerate() {
        let f: Vec<f64> = (0..3).map(|j| fidelities[ci * 3 + j]).collect();
        if f[2] >= f[0].max(f[1]) - 1e-9 {
            synergy_wins += 1;
        }
        row(&format!("{kind}-{n}"), &[fixed(f[0]), fixed(f[1]), fixed(f[2])]);
    }
    println!(
        "\nco-optimization is at least as good as either part alone on {synergy_wins}/{} benchmarks",
        cases.len()
    );
}
