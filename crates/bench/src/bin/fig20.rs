//! Figure 20: overall fidelity improvements under ZZ crosstalk.
//!
//! For every benchmark×size of the paper: output-state fidelity of
//! `Gau+ParSched` (the baseline), `OptCtrl+ZZXSched` and `Pert+ZZXSched`,
//! plus the improvement factor `Pert+ZZXSched / Gau+ParSched`.

use zz_bench::{banner, core_cases, fidelity_table, fixed, row};
use zz_service::{EvalSpec, PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 20",
        "overall fidelity improvements under ZZ crosstalk",
    );
    let eval = EvalSpec::paper_default();
    let cases = core_cases();
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];
    let (table, report) = fidelity_table(&cases, &configs, &eval);
    eprintln!("[service] {report}");

    row(
        "benchmark",
        &[
            "Gau+Par".into(),
            "Opt+ZZX".into(),
            "Pert+ZZX".into(),
            "improve".into(),
        ],
    );
    let mut improvements = Vec::new();
    for (&(kind, n), f) in cases.iter().zip(&table) {
        let improvement = if f[0] > 1e-6 {
            f[2] / f[0]
        } else {
            f64::INFINITY
        };
        improvements.push(improvement);
        row(
            &format!("{kind}-{n}"),
            &[
                fixed(f[0]),
                fixed(f[1]),
                fixed(f[2]),
                format!("{improvement:8.1}x"),
            ],
        );
    }
    let max = improvements.iter().cloned().fold(0.0f64, f64::max);
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("\nimprovement: up to {max:.1}x, {mean:.1}x on average");
    println!("(paper: up to 81x, 11x on average)");
}
