//! Figure 20: overall fidelity improvements under ZZ crosstalk.
//!
//! For every benchmark×size of the paper: output-state fidelity of
//! `Gau+ParSched` (the baseline), `OptCtrl+ZZXSched` and `Pert+ZZXSched`,
//! plus the improvement factor `Pert+ZZXSched / Gau+ParSched`.

use zz_bench::{banner, fixed, parallel_map, row};
use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{benchmark_fidelity, EvalConfig};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner("Figure 20", "overall fidelity improvements under ZZ crosstalk");
    let cfg = EvalConfig::paper_default();

    let cases: Vec<(BenchmarkKind, usize)> = BenchmarkKind::CORE
        .iter()
        .flat_map(|&kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect();

    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::OptCtrl, SchedulerKind::ZzxSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];

    let jobs: Vec<(BenchmarkKind, usize, PulseMethod, SchedulerKind)> = cases
        .iter()
        .flat_map(|&(k, n)| configs.iter().map(move |&(m, s)| (k, n, m, s)))
        .collect();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let fidelities = parallel_map(jobs.len(), threads, |i| {
        let (k, n, m, s) = jobs[i];
        benchmark_fidelity(k, n, m, s, &cfg)
    });

    row(
        "benchmark",
        &[
            "Gau+Par".into(),
            "Opt+ZZX".into(),
            "Pert+ZZX".into(),
            "improve".into(),
        ],
    );
    let mut improvements = Vec::new();
    for (ci, &(kind, n)) in cases.iter().enumerate() {
        let f: Vec<f64> = (0..3).map(|j| fidelities[ci * 3 + j]).collect();
        let improvement = if f[0] > 1e-6 { f[2] / f[0] } else { f64::INFINITY };
        improvements.push(improvement);
        row(
            &format!("{kind}-{n}"),
            &[
                fixed(f[0]),
                fixed(f[1]),
                fixed(f[2]),
                format!("{improvement:8.1}x"),
            ],
        );
    }
    let max = improvements.iter().cloned().fold(0.0f64, f64::max);
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("\nimprovement: up to {max:.1}x, {mean:.1}x on average");
    println!("(paper: up to 81x, 11x on average)");
}
