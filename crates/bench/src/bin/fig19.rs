//! Figure 19: ZZ-crosstalk suppression performance of `ZX90` pulses on the
//! four-qubit chain ➀–a–b–➃.
//!
//! (a) the same crosstalk strength on both cross-region couplings, for
//!     Gaussian/OptCtrl/Pert;
//! (b) different strengths λ_1a × λ_b4 (heatmap) for the Pert pulse.

use zz_bench::{banner, lambda_sweep_mhz, row, sci};
use zz_pulse::library::{zx90_drive, PulseMethod};
use zz_pulse::mhz;
use zz_pulse::systems::infidelity_2q;

fn main() {
    banner("Figure 19", "suppression performance of ZX90 pulses");
    let sweep = lambda_sweep_mhz();
    let intra = mhz(0.2); // the gate's own coupling keeps a typical strength

    println!("\n-- (a) equal strengths on 1-2 and 3-4 --");
    row(
        "lambda/2pi (MHz)",
        &sweep
            .iter()
            .map(|l| format!("{l:10.1}"))
            .collect::<Vec<_>>(),
    );
    for method in [
        PulseMethod::Gaussian,
        PulseMethod::OptCtrl,
        PulseMethod::Pert,
    ] {
        let drive = zx90_drive(method).expect("method has a two-qubit pulse");
        let series: Vec<String> = sweep
            .iter()
            .map(|&l| sci(infidelity_2q(&drive.as_drive(), mhz(l), mhz(l), intra).max(1e-8)))
            .collect();
        row(&method.to_string(), &series);
    }

    println!("\n-- (b) different strengths (Pert pulse): rows lambda_12, cols lambda_34 --");
    let grid: Vec<f64> = (0..=4).map(|k| k as f64 * 0.5).collect();
    let drive = zx90_drive(PulseMethod::Pert).expect("pert has a two-qubit pulse");
    row(
        "l12\\l34 (MHz)",
        &grid.iter().map(|l| format!("{l:10.1}")).collect::<Vec<_>>(),
    );
    for &l12 in &grid {
        let series: Vec<String> = grid
            .iter()
            .map(|&l34| sci(infidelity_2q(&drive.as_drive(), mhz(l12), mhz(l34), intra).max(1e-8)))
            .collect();
        row(&format!("{l12:4.1}"), &series);
    }
}
