//! Figure 17: robustness of the Pert `X90` pulse to drive noise.
//!
//! (a) carrier-frequency detuning Δf ∈ {0, 0.1, 0.5, 1} MHz;
//! (b) amplitude fluctuation ∈ {0, 0.01%, 0.05%, 0.1%};
//! each versus crosstalk strength λ/2π ∈ [0, 2] MHz.

use zz_bench::{banner, lambda_sweep_mhz, row, sci};
use zz_pulse::library::{x90_drive, PulseMethod};
use zz_pulse::mhz;
use zz_pulse::noise::{infidelity_1q_noisy, DriveNoise};
use zz_quantum::gates;

fn main() {
    banner(
        "Figure 17",
        "robustness of the Pert X90 pulse to drive noise",
    );
    let sweep = lambda_sweep_mhz();
    let drive = x90_drive(PulseMethod::Pert);
    let target = gates::x90();

    println!("\n-- (a) frequency detuning --");
    row(
        "lambda/2pi (MHz)",
        &sweep
            .iter()
            .map(|l| format!("{l:10.1}"))
            .collect::<Vec<_>>(),
    );
    for df in [0.0, 0.1, 0.5, 1.0] {
        let series: Vec<String> = sweep
            .iter()
            .map(|&l| {
                let inf = infidelity_1q_noisy(
                    &drive.as_drive(),
                    &target,
                    mhz(l),
                    DriveNoise::detuning_mhz(df),
                );
                sci(inf.max(1e-8))
            })
            .collect();
        row(&format!("df = {df} MHz"), &series);
    }

    println!("\n-- (b) amplitude noise --");
    row(
        "lambda/2pi (MHz)",
        &sweep
            .iter()
            .map(|l| format!("{l:10.1}"))
            .collect::<Vec<_>>(),
    );
    for pct in [0.0, 0.01, 0.05, 0.1] {
        let series: Vec<String> = sweep
            .iter()
            .map(|&l| {
                let inf = infidelity_1q_noisy(
                    &drive.as_drive(),
                    &target,
                    mhz(l),
                    DriveNoise::amplitude(pct / 100.0),
                );
                sci(inf.max(1e-8))
            })
            .collect();
        row(&format!("amp = {pct}%"), &series);
    }
}
