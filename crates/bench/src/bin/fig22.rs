//! Figure 22: contribution of pulse optimization vs scheduling to the
//! overall fidelity improvement (from `Gau+ParSched` to `Pert+ZZXSched`).
//!
//! Following the paper: the pulse contribution is the ratio of the
//! improvement achieved with only Pert pulses (`Pert+ParSched`) to the
//! overall improvement; scheduling gets the remainder.

use zz_bench::{banner, parallel_map, row};
use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{benchmark_fidelity, EvalConfig};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner("Figure 22", "contribution of pulse optimization vs scheduling");
    let cfg = EvalConfig::paper_default();

    let cases: Vec<(BenchmarkKind, usize)> = BenchmarkKind::CORE
        .iter()
        .flat_map(|&kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect();
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];
    let jobs: Vec<(BenchmarkKind, usize, PulseMethod, SchedulerKind)> = cases
        .iter()
        .flat_map(|&(k, n)| configs.iter().map(move |&(m, s)| (k, n, m, s)))
        .collect();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let fidelities = parallel_map(jobs.len(), threads, |i| {
        let (k, n, m, s) = jobs[i];
        benchmark_fidelity(k, n, m, s, &cfg)
    });

    row("benchmark", &["pulse %".into(), "sched %".into()]);
    let (mut sum_pulse, mut count) = (0.0, 0usize);
    for (ci, &(kind, n)) in cases.iter().enumerate() {
        let base = fidelities[ci * 3];
        let pulse_only = fidelities[ci * 3 + 1];
        let both = fidelities[ci * 3 + 2];
        // Improvements measured as fidelity gains over the baseline.
        let total_gain = (both - base).max(1e-9);
        let pulse_gain = (pulse_only - base).clamp(0.0, total_gain);
        let pulse_pct = 100.0 * pulse_gain / total_gain;
        sum_pulse += pulse_pct;
        count += 1;
        row(
            &format!("{kind}-{n}"),
            &[format!("{pulse_pct:8.1}"), format!("{:8.1}", 100.0 - pulse_pct)],
        );
    }
    let mean_pulse = sum_pulse / count as f64;
    println!(
        "\naverage contribution: pulse {mean_pulse:.1}%, scheduling {:.1}%",
        100.0 - mean_pulse
    );
    println!("(paper: pulse 43.7%, scheduling 56.3%)");
}
