//! Figure 22: contribution of pulse optimization vs scheduling to the
//! overall fidelity improvement (from `Gau+ParSched` to `Pert+ZZXSched`).
//!
//! Following the paper: the pulse contribution is the ratio of the
//! improvement achieved with only Pert pulses (`Pert+ParSched`) to the
//! overall improvement; scheduling gets the remainder.

use zz_bench::{banner, core_cases, fidelity_table, row};
use zz_service::{EvalSpec, PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 22",
        "contribution of pulse optimization vs scheduling",
    );
    let eval = EvalSpec::paper_default();
    let cases = core_cases();
    let configs = [
        (PulseMethod::Gaussian, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];
    let (table, report) = fidelity_table(&cases, &configs, &eval);
    eprintln!("[service] {report}");

    row("benchmark", &["pulse %".into(), "sched %".into()]);
    let (mut sum_pulse, mut count) = (0.0, 0usize);
    for (&(kind, n), f) in cases.iter().zip(&table) {
        let (base, pulse_only, both) = (f[0], f[1], f[2]);
        // Improvements measured as fidelity gains over the baseline.
        let total_gain = (both - base).max(1e-9);
        let pulse_gain = (pulse_only - base).clamp(0.0, total_gain);
        let pulse_pct = 100.0 * pulse_gain / total_gain;
        sum_pulse += pulse_pct;
        count += 1;
        row(
            &format!("{kind}-{n}"),
            &[
                format!("{pulse_pct:8.1}"),
                format!("{:8.1}", 100.0 - pulse_pct),
            ],
        );
    }
    let mean_pulse = sum_pulse / count as f64;
    println!(
        "\naverage contribution: pulse {mean_pulse:.1}%, scheduling {:.1}%",
        100.0 - mean_pulse
    );
    println!("(paper: pulse 43.7%, scheduling 56.3%)");
}
