//! Figure 27: Ramsey experiments on the (simulated) three-transmon device
//! `Q1–Q2–Q3`.
//!
//! Three groups — (a) only the Q2–Q1 coupling, (b) only Q2–Q3, (c) both —
//! each measured with the original circuit A and the compiled circuits B
//! (identity pulses on Q2) and C (identity pulses on Q1 and Q3). The paper
//! reports effective ZZ falling from ≈200 kHz to <11 kHz.

use zz_bench::{banner, row};
use zz_pulse::ramsey::{
    effective_zz_khz, fit_frequency, ramsey_fringe, NeighborGroup, RamseyCircuit, RamseyConfig,
};

fn main() {
    banner("Figure 27", "Ramsey experiments on a 3-transmon line");
    let cfg = RamseyConfig::paper_default();

    let groups = [
        (NeighborGroup::Q1Only, "(a) Q2-Q1"),
        (NeighborGroup::Q3Only, "(b) Q2-Q3"),
        (NeighborGroup::Both, "(c) Q2-Q1 + Q2-Q3"),
    ];
    for (group, label) in groups {
        println!("\n-- {label} --");
        row(
            "circuit",
            &["f(|0>) MHz".into(), "f(|1>) MHz".into(), "ZZ (kHz)".into()],
        );
        let circuits: &[RamseyCircuit] = match group {
            NeighborGroup::Both => &[
                RamseyCircuit::Original,
                RamseyCircuit::IdOnQ2,
                RamseyCircuit::IdOnNeighbors,
            ],
            _ => &[RamseyCircuit::Original, RamseyCircuit::IdOnQ2],
        };
        for &circuit in circuits {
            let f_max = 2.5 * cfg.detuning / (2.0 * std::f64::consts::PI);
            let f0 = fit_frequency(&ramsey_fringe(circuit, group, false, &cfg), f_max);
            let f1 = fit_frequency(&ramsey_fringe(circuit, group, true, &cfg), f_max);
            let zz = effective_zz_khz(circuit, group, &cfg);
            row(
                &format!(
                    "{} ({})",
                    circuit.label(),
                    match circuit {
                        RamseyCircuit::Original => "bare idle",
                        RamseyCircuit::IdOnQ2 => "I on Q2",
                        RamseyCircuit::IdOnNeighbors => "I on Q1,Q3",
                    }
                ),
                &[
                    format!("{:10.4}", f0 * 1e3),
                    format!("{:10.4}", f1 * 1e3),
                    format!("{zz:10.1}"),
                ],
            );
        }
    }
    println!("\n(paper: circuit A ≈ 200 kHz per coupling; circuits B/C < 11 kHz)");
}
