//! Figure 16: ZZ-crosstalk suppression performance of `X90` and `I` pulses.
//!
//! Infidelity between the actual (qubit ⊗ spectator) evolution and
//! `target ⊗ I`, versus crosstalk strength λ/2π ∈ [0, 2] MHz, for Gaussian,
//! OptCtrl, DCG and Pert pulses. Lower is better; the paper truncates at
//! 1e−8.

use zz_bench::{banner, lambda_sweep_mhz, row, sci};
use zz_linalg::Matrix;
use zz_pulse::library::{id_drive, x90_drive, PulseMethod};
use zz_pulse::mhz;
use zz_pulse::systems::infidelity_1q;
use zz_quantum::gates;

fn main() {
    banner("Figure 16", "suppression performance of X90 and I pulses");
    let sweep = lambda_sweep_mhz();

    for (gate_name, target) in [("Rx(pi/2)", gates::x90()), ("I", Matrix::identity(2))] {
        println!("\n-- {gate_name} --");
        row(
            "lambda/2pi (MHz)",
            &sweep
                .iter()
                .map(|l| format!("{l:10.1}"))
                .collect::<Vec<_>>(),
        );
        for method in PulseMethod::ALL {
            let drive = match gate_name {
                "I" => id_drive(method),
                _ => x90_drive(method),
            };
            let series: Vec<String> = sweep
                .iter()
                .map(|&l| {
                    let inf = infidelity_1q(&drive.as_drive(), &target, mhz(l));
                    sci(inf.max(1e-8)) // paper truncates the axis at 1e-8
                })
                .collect();
            let label = match method {
                PulseMethod::Dcg => format!("{method} ({}ns)", drive.duration()),
                _ => method.to_string(),
            };
            row(&label, &series);
        }
    }
}
