//! Compile-path scaling probe — the 1000-qubit-class benchmark run by
//! CI.
//!
//! Sweeps a ladder of devices from the paper's 16-qubit grid up past
//! 1000 qubits (near-square grids plus an IBM-style heavy-hex lattice)
//! and compiles a brickwork circuit — nearest-neighbour CNOT layers
//! seasoned with a few medium-range CNOTs to force SWAP insertion —
//! under both schedulers. Density-matrix evaluation is impossible at
//! these sizes, so each row instead records the schedule's
//! [`PlanSummary`](zz_sched::PlanSummary) metrics (layer count, total
//! duration, residual-ZZ weight): the at-scale fidelity proxy.
//!
//! Per device the probe reports route/schedule/total wall time, the
//! cumulative peak RSS (`VmHWM` from `/proc/self/status`, where
//! available), the session's `route.graph_reuse` /
//! `sched.distance_queries` counters — the observability trail of the
//! CSR coupling-graph cache and the lazy distance oracle — and the
//! [`ServiceReport::plan_metric_stats`](zz_service::ServiceReport::plan_metric_stats)
//! residual-ZZ summary of the drained sweep, the same aggregation fleet
//! dispatch scores large devices with.
//!
//! Results are written as `BENCH_scale.json` (override the path with
//! the `BENCH_SCALE_OUT` environment variable) so the CI workflow can
//! track how compile-path scaling evolves across PRs. The probe fails
//! (non-zero exit) unless a ≥961-qubit device completes under both
//! ParSched and ZZXSched.

use std::fmt::Write as _;
use std::time::Duration;

use zz_circuit::{Circuit, Gate};
use zz_core::{CompileOptions, SchedulerKind, Stage};
use zz_service::{CompileRequest, Session, Target};
use zz_topology::Topology;

/// The device ladder: paper-scale grids, two at-scale grids, and two
/// heavy-hex lattices (distance 9 ≈ 200 qubits, distance 21 > 1000).
fn devices() -> Vec<(String, Topology)> {
    let mut out = Vec::new();
    for (rows, cols) in [(4, 4), (8, 8), (16, 16), (31, 31)] {
        out.push((format!("grid-{rows}x{cols}"), Topology::grid(rows, cols)));
    }
    for distance in [9, 21] {
        let topo = Topology::heavy_hex(distance);
        out.push((format!("heavy-hex-d{distance}"), topo));
    }
    out
}

/// A brickwork circuit on `n` qubits: a Hadamard column, `depth`
/// alternating nearest-neighbour CNOT layers, and a few medium-range
/// CNOTs so routing has real SWAP work to do at every size.
fn brickwork(n: usize, depth: usize) -> Circuit {
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.push(Gate::H, &[q]);
    }
    for layer in 0..depth {
        let mut q = layer % 2;
        while q + 1 < n {
            circuit.push(Gate::Cnot, &[q, q + 1]);
            q += 2;
        }
    }
    if n >= 8 {
        circuit.push(Gate::Cnot, &[0, n / 2]);
        circuit.push(Gate::Cnot, &[n / 4, 3 * n / 4]);
    }
    circuit
}

/// Cumulative peak resident set (kB) from `/proc/self/status`; `None`
/// on platforms without procfs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct Row {
    device: String,
    qubits: usize,
    scheduler: SchedulerKind,
    gates: usize,
    route_ms: f64,
    schedule_ms: f64,
    total_ms: f64,
    layers: usize,
    duration_ns: f64,
    mean_nc: f64,
    residual_zz_weight: f64,
    peak_rss_kb: Option<u64>,
}

struct DeviceCounters {
    device: String,
    graph_reuse: u64,
    distance_queries: u64,
    /// Min/max/mean residual-ZZ weight over the device's scheduler
    /// sweep, from the shared `ServiceReport::plan_metric_stats` path
    /// (the same summary fleet dispatch scores large devices with).
    plan_stats: zz_service::PlanMetricStats,
}

fn row_json(row: &Row) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"device\": \"{}\", \"qubits\": {}, \"scheduler\": \"{}\", \"gates\": {}, \
         \"route_ms\": {:.3}, \"schedule_ms\": {:.3}, \"total_ms\": {:.3}, \
         \"layers\": {}, \"duration_ns\": {:.1}, \"mean_nc\": {:.3}, \
         \"residual_zz_weight\": {:.1}, \"peak_rss_kb\": {}}}",
        row.device,
        row.qubits,
        row.scheduler,
        row.gates,
        row.route_ms,
        row.schedule_ms,
        row.total_ms,
        row.layers,
        row.duration_ns,
        row.mean_nc,
        row.residual_zz_weight,
        row.peak_rss_kb
            .map(|kb| kb.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    out
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut counters: Vec<DeviceCounters> = Vec::new();

    for (name, topo) in devices() {
        let qubits = topo.qubit_count();
        // Thinner brickwork at the top of the ladder keeps the CI run
        // in tens of seconds; the point there is completion + scaling
        // slope, not statement coverage.
        let depth = if qubits >= 500 { 2 } else { 4 };
        let circuit = brickwork(qubits, depth);
        let gates = circuit.gate_count();
        let target = Target::builder()
            .topology(topo)
            .build()
            .expect("in-memory targets always build");
        // One session per device: the second distinct circuit shape
        // exercises the memo's device-graph cache (`route.graph_reuse`).
        let session = Session::with_threads(target, 1);

        // Submit the scheduler sweep as a batch and drain it through the
        // session report: the per-device summary below comes from the
        // same `plan_metric_stats` path fleet dispatch scores with.
        const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::ParSched, SchedulerKind::ZzxSched];
        for scheduler in SCHEDULERS {
            session.submit(
                CompileRequest::new(circuit.clone())
                    .with_options(CompileOptions::default().with_scheduler(scheduler))
                    .with_label(format!("{name}/{scheduler}")),
            );
        }
        let report = session.drain();
        for (scheduler, outcome) in SCHEDULERS.iter().zip(report.outcomes.iter()) {
            let response = outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{scheduler} failed to compile: {e}"));
            let trace = response.trace.as_ref().expect("tracing is on by default");
            let summary = response.plan_metrics();
            let row = Row {
                device: name.clone(),
                qubits,
                scheduler: *scheduler,
                gates,
                route_ms: ms(trace.stage_wall(Stage::Route)),
                schedule_ms: ms(trace.stage_wall(Stage::Schedule)),
                total_ms: ms(response.compile_time),
                layers: summary.layers,
                duration_ns: summary.duration_ns,
                mean_nc: summary.mean_nc,
                residual_zz_weight: summary.residual_zz_weight,
                peak_rss_kb: peak_rss_kb(),
            };
            println!(
                "[{:>14}] {:>4}q {:>8}: route {:>9.3}ms sched {:>9.3}ms total {:>9.3}ms \
                 ({} layers, {:.0}ns, residual-ZZ {:.0})",
                row.device,
                row.qubits,
                row.scheduler.to_string(),
                row.route_ms,
                row.schedule_ms,
                row.total_ms,
                row.layers,
                row.duration_ns,
                row.residual_zz_weight,
            );
            rows.push(row);
        }
        let plan_stats = report
            .plan_metric_stats()
            .unwrap_or_else(|| panic!("{name}: the scheduler sweep had successes"));

        // A second circuit shape on the same device: its route pass must
        // pull the cached CSR coupling graph instead of rebuilding it.
        let mut variant = circuit.clone();
        variant.push(Gate::X, &[0]);
        let request = CompileRequest::new(variant)
            .with_options(CompileOptions::default().with_scheduler(SchedulerKind::ZzxSched))
            .with_label(format!("{name}/variant"));
        session
            .compile(&request)
            .unwrap_or_else(|e| panic!("{name}/variant failed to compile: {e}"));

        let snapshot = session.metrics().snapshot();
        let device = DeviceCounters {
            device: name.clone(),
            graph_reuse: snapshot.counter("route.graph_reuse").unwrap_or(0),
            distance_queries: snapshot.counter("sched.distance_queries").unwrap_or(0),
            plan_stats,
        };
        println!(
            "[{:>14}] counters: route.graph_reuse {} sched.distance_queries {} \
             residual-ZZ min/mean/max {:.0}/{:.0}/{:.0}",
            device.device,
            device.graph_reuse,
            device.distance_queries,
            device.plan_stats.min_residual_zz_weight,
            device.plan_stats.mean_residual_zz_weight,
            device.plan_stats.max_residual_zz_weight,
        );
        assert!(
            device.graph_reuse >= 1,
            "{name}: the second circuit shape must reuse the cached device graph"
        );
        assert!(
            device.distance_queries >= 1,
            "{name}: ZZXSched must query the lazy distance oracle"
        );
        counters.push(device);
    }

    // The acceptance gate: a 1000-qubit-class device completed under
    // both schedulers.
    for scheduler in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
        assert!(
            rows.iter()
                .any(|r| r.qubits >= 961 && r.scheduler == scheduler),
            "no ≥961-qubit device completed under {scheduler}"
        );
    }

    let mut json = String::from("{\n  \"schema\": 1,\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            row_json(row),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"counters\": [\n");
    for (i, c) in counters.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"device\": \"{}\", \"route_graph_reuse\": {}, \"sched_distance_queries\": {}, \
             \"plan_jobs\": {}, \"residual_zz_min\": {:.1}, \"residual_zz_mean\": {:.1}, \
             \"residual_zz_max\": {:.1}}}{}",
            c.device,
            c.graph_reuse,
            c.distance_queries,
            c.plan_stats.jobs,
            c.plan_stats.min_residual_zz_weight,
            c.plan_stats.mean_residual_zz_weight,
            c.plan_stats.max_residual_zz_weight,
            if i + 1 == counters.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
