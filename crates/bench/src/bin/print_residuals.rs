fn main() {
    for m in zz_core::PulseMethod::ALL {
        let t = zz_core::calib::residuals(m);
        println!(
            "{m:10}: x90={:.4} id={:.4} zxc={:.4} zxt={:.4}",
            t.x90, t.id, t.zx90_control, t.zx90_target
        );
    }
}
