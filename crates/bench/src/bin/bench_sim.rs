//! Simulation-engine speed snapshot — the perf-trajectory probe run by CI.
//!
//! Measures the precompiled execution engine (`zz_sim::program`) against
//! the straight-line executor it replaced ([`zz_bench::reference`]: one
//! amplitude sweep per coupling per layer, per-run residual scans, fresh
//! gate matrices per application, strictly sequential trajectories) on the
//! workload of the acceptance bar: a 9-qubit QAOA plan, 200 Monte-Carlo
//! trajectories under ZZ crosstalk + decoherence, plus the deterministic
//! disorder sweep of the Figure 20–22 shape.
//!
//! To keep the recorded trajectory comparable across runners, the
//! asserted Monte-Carlo speedup is measured **single-threaded** — pure
//! algorithmic gain, independent of the machine's core count. The
//! all-cores time is reported separately (`engine_parallel_ms`).
//!
//! Alongside the end-to-end times, the snapshot records per-kernel
//! microbenchmarks of the batched engine (`zz_sim::batch::BatchedState`
//! at the default batch width): nanoseconds per amplitude-lane for the
//! single-qubit, two-qubit and diagonal sweeps at 8, 12 and 16 qubits —
//! so a kernel regression is attributable before it shows up in the
//! end-to-end number.
//!
//! The result is written as `BENCH_sim.json` (override the path with the
//! `BENCH_SIM_OUT` environment variable) and uploaded next to
//! `BENCH_pipeline.json` by the CI workflow, so the simulation-speed
//! trajectory is tracked per commit.

use std::time::Instant;

use zz_bench::reference;
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_linalg::c64;
use zz_sched::{zzx::ZzxConfig, zzx_schedule, GateDurations, SchedulePlan};
use zz_sim::batch::BatchedState;
use zz_sim::density::Decoherence;
use zz_sim::executor::{
    fidelity_with_decoherence, fidelity_with_decoherence_threads, ZzErrorModel,
};
use zz_sim::program::{PlanProgram, DEFAULT_BATCH_LANES};
use zz_topology::Topology;

fn qaoa9_plan(topo: &Topology) -> SchedulePlan {
    let circuit = generate(BenchmarkKind::Qaoa, 9, 7);
    let native = compile_to_native(&route(&circuit, topo));
    zzx_schedule(topo, &native, &ZzxConfig::paper_default(topo))
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// ns per amplitude-lane of one batched kernel sweep, measured over
/// enough repetitions to amortize timer noise.
struct KernelRow {
    qubits: usize,
    single_ns: f64,
    two_ns: f64,
    diag_ns: f64,
}

fn kernel_row(n: usize) -> KernelRow {
    let lanes = DEFAULT_BATCH_LANES;
    let mut batch = BatchedState::zero(n, lanes);
    // ≈2^22 amplitude visits per kernel, regardless of register size.
    let reps = usize::max(1, (1usize << 22) >> n);
    let amp_lanes = (reps * (1 << n) * lanes) as f64;

    let single = {
        let m = zz_quantum::gates::x90();
        let s = m.as_slice();
        [s[0], s[1], s[2], s[3]]
    };
    let two = {
        let m = zz_quantum::gates::zx90();
        let mut out = [c64::ZERO; 16];
        out.copy_from_slice(m.as_slice());
        out
    };
    let diag: Vec<c64> = (0..1usize << n)
        .map(|i| c64::cis(1e-3 * i as f64))
        .collect();
    let (ma, mb) = (1usize << (n - 2), 1usize << 1);

    batch.kernel_single(&single, 1 << (n / 2));
    let t = Instant::now();
    for _ in 0..reps {
        batch.kernel_single(&single, 1 << (n / 2));
    }
    let single_ns = t.elapsed().as_secs_f64() * 1e9 / amp_lanes;

    batch.kernel_two(&two, ma, mb);
    let t = Instant::now();
    for _ in 0..reps {
        batch.kernel_two(&two, ma, mb);
    }
    let two_ns = t.elapsed().as_secs_f64() * 1e9 / amp_lanes;

    batch.apply_diagonal(&diag);
    let t = Instant::now();
    for _ in 0..reps {
        batch.apply_diagonal(&diag);
    }
    let diag_ns = t.elapsed().as_secs_f64() * 1e9 / amp_lanes;

    KernelRow {
        qubits: n,
        single_ns,
        two_ns,
        diag_ns,
    }
}

fn main() {
    const TRAJECTORIES: usize = 200;
    const SEED: u64 = 17;
    const ZZ_REPS: usize = 50;

    let topo = Topology::grid(3, 3);
    let plan = qaoa9_plan(&topo);
    let model =
        ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), 11).with_residual(0.05);
    let deco = Decoherence::equal_us(200.0);
    let d = GateDurations::standard();

    println!(
        "bench_sim: QAOA-9 on {}, {} layers, {TRAJECTORIES} trajectories, batch width {DEFAULT_BATCH_LANES}",
        topo.name(),
        plan.layer_count()
    );

    // Warm-up both engines once (page in code, fill allocator pools).
    let _ = reference::fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, 4, SEED);
    let _ = fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, 4, SEED);

    // Monte-Carlo fan: the acceptance workload. The asserted speedup is
    // single-threaded vs single-threaded; the parallel time is extra.
    let t = Instant::now();
    let f_legacy =
        reference::fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, TRAJECTORIES, SEED);
    let mc_legacy_ms = ms(t);
    let t = Instant::now();
    let f_engine =
        fidelity_with_decoherence_threads(&plan, &topo, &model, &deco, &d, TRAJECTORIES, SEED, 1);
    let mc_engine_ms = ms(t);
    let t = Instant::now();
    let f_parallel = fidelity_with_decoherence(&plan, &topo, &model, &deco, &d, TRAJECTORIES, SEED);
    let mc_parallel_ms = ms(t);
    let mc_speedup = mc_legacy_ms / mc_engine_ms;
    println!(
        "monte-carlo: legacy {mc_legacy_ms:.1} ms (F={f_legacy:.4})  engine(1 thread) {mc_engine_ms:.1} ms (F={f_engine:.4})  engine(all cores) {mc_parallel_ms:.1} ms  speedup {mc_speedup:.2}x"
    );

    // Deterministic disorder sweep: the Figure 20–22 evaluation shape —
    // one plan, several crosstalk samples. The engine computes the ideal
    // reference once per sweep; the legacy loop recomputed ideal + noisy
    // per sample.
    let seeds = [11u64, 23, 37];
    let sample = |s: u64| {
        ZzErrorModel::sampled(&topo, zz_sim::khz(200.0), zz_sim::khz(50.0), s).with_residual(0.05)
    };
    let t = Instant::now();
    let mut f_zz_legacy = 0.0;
    for _ in 0..ZZ_REPS {
        f_zz_legacy = seeds
            .iter()
            .map(|&s| {
                let m = sample(s);
                reference::run_ideal(&plan).fidelity(&reference::run_with_zz(&plan, &topo, &m, &d))
            })
            .sum::<f64>()
            / seeds.len() as f64;
    }
    let zz_legacy_ms = ms(t);
    let t = Instant::now();
    let mut f_zz_engine = 0.0;
    for _ in 0..ZZ_REPS {
        let ideal = PlanProgram::ideal(&plan).run();
        f_zz_engine = seeds
            .iter()
            .map(|&s| {
                let m = sample(s);
                ideal.fidelity(&PlanProgram::compile(&plan, &topo, &m, &d).run())
            })
            .sum::<f64>()
            / seeds.len() as f64;
    }
    let zz_engine_ms = ms(t);
    let zz_speedup = zz_legacy_ms / zz_engine_ms;
    println!(
        "disorder sweep x{ZZ_REPS}: legacy {zz_legacy_ms:.1} ms  engine {zz_engine_ms:.1} ms  speedup {zz_speedup:.2}x"
    );

    // Per-kernel microbenchmarks of the batched hot path.
    let kernels: Vec<KernelRow> = [8usize, 12, 16].iter().map(|&n| kernel_row(n)).collect();
    for k in &kernels {
        println!(
            "kernels n={:2}: single {:.2} ns/amp  two {:.2} ns/amp  diag {:.2} ns/amp",
            k.qubits, k.single_ns, k.two_ns, k.diag_ns
        );
    }

    // Sanity: the engines simulate the same physics. The deterministic
    // path must agree to numerical noise; the Monte-Carlo estimates use
    // different (both deterministic) random streams, so they agree only
    // statistically. The parallel fan must be bit-identical to the
    // single-threaded one.
    assert!(
        (f_zz_legacy - f_zz_engine).abs() < 1e-10,
        "deterministic paths diverged: {f_zz_legacy} vs {f_zz_engine}"
    );
    assert!(
        (f_legacy - f_engine).abs() < 0.05,
        "MC estimates diverged beyond sampling noise: {f_legacy} vs {f_engine}"
    );
    assert_eq!(
        f_engine.to_bits(),
        f_parallel.to_bits(),
        "thread count leaked into the Monte-Carlo mean"
    );
    assert!(
        mc_speedup >= 10.0,
        "acceptance bar: >= 10x single-threaded on fidelity_with_decoherence, got {mc_speedup:.2}x"
    );

    let kernel_json: Vec<String> = kernels
        .iter()
        .map(|k| {
            format!(
                "{{\"qubits\": {}, \"single_ns_per_amp\": {:.4}, \"two_ns_per_amp\": {:.4}, \"diag_ns_per_amp\": {:.4}}}",
                k.qubits, k.single_ns, k.two_ns, k.diag_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 3,\n  \"workload\": {{\"benchmark\": \"qaoa-9\", \"device\": \"{}\", \"layers\": {}, \"trajectories\": {TRAJECTORIES}, \"batch_lanes\": {DEFAULT_BATCH_LANES}}},\n  \"monte_carlo\": {{\"legacy_ms\": {mc_legacy_ms:.3}, \"engine_ms\": {mc_engine_ms:.3}, \"engine_parallel_ms\": {mc_parallel_ms:.3}, \"speedup\": {mc_speedup:.3}, \"fidelity_legacy\": {f_legacy:.6}, \"fidelity_engine\": {f_engine:.6}}},\n  \"disorder_sweep\": {{\"reps\": {ZZ_REPS}, \"samples\": {}, \"legacy_ms\": {zz_legacy_ms:.3}, \"engine_ms\": {zz_engine_ms:.3}, \"speedup\": {zz_speedup:.3}}},\n  \"kernels\": [\n    {}\n  ]\n}}\n",
        topo.name(),
        plan.layer_count(),
        seeds.len(),
        kernel_json.join(",\n    "),
    );
    let out = std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
