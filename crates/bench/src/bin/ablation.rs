//! Quality-side ablations of the scheduler's design choices (DESIGN.md):
//!
//! * the α weight of the NQ-vs-NC trade-off,
//! * the top-k path-relaxing budget,
//! * the suppression requirement `R` (strict / paper / loose).
//!
//! For each setting: mean NQ/NC over layers, relative execution time, and
//! end-to-end fidelity on a representative benchmark.

use zz_bench::{banner, fixed, row};
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_circuit::native::compile_to_native;
use zz_circuit::route;
use zz_core::evaluate::EvalConfig;
use zz_core::{calib, PulseMethod};
use zz_sched::zzx::{Requirement, ZzxConfig};
use zz_sched::{zzx_schedule, GateDurations, SchedulePlan};
use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};
use zz_topology::Topology;

fn evaluate(plan: &SchedulePlan, topo: &Topology, cfg: &EvalConfig, residual: f64) -> f64 {
    let durations = GateDurations::standard();
    let mut total = 0.0;
    for &seed in &cfg.crosstalk_seeds {
        let model = ZzErrorModel::sampled(topo, cfg.lambda_mean, cfg.lambda_std, seed)
            .with_residual(residual);
        total += fidelity_under_zz(plan, topo, &model, &durations);
    }
    total / cfg.crosstalk_seeds.len() as f64
}

fn main() {
    banner("Ablations", "scheduler design choices (QAOA-9 on the 3x4 grid)");
    let cfg = EvalConfig::paper_default();
    let topo = Topology::grid(3, 4);
    let residual = calib::residual_factor(PulseMethod::Pert);
    let native = compile_to_native(&route(&generate(BenchmarkKind::Qaoa, 9, 7), &topo));
    let durations = GateDurations::standard();

    println!("\n-- alpha sweep (k = 3, paper requirement) --");
    row(
        "alpha",
        &["mean NQ".into(), "mean NC".into(), "time (ns)".into(), "fidelity".into()],
    );
    for alpha in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let config = ZzxConfig { alpha, ..ZzxConfig::paper_default(&topo) };
        let plan = zzx_schedule(&topo, &native, &config);
        row(
            &format!("{alpha:4.2}"),
            &[
                format!("{:10.2}", plan.mean_nq()),
                format!("{:10.2}", plan.mean_nc()),
                format!("{:10.0}", plan.duration(&durations)),
                fixed(evaluate(&plan, &topo, &cfg, residual)),
            ],
        );
    }

    println!("\n-- k sweep (alpha = 0.5, paper requirement) --");
    row(
        "k",
        &["mean NQ".into(), "mean NC".into(), "time (ns)".into(), "fidelity".into()],
    );
    for k in [1usize, 2, 3, 5, 8] {
        let config = ZzxConfig { k, ..ZzxConfig::paper_default(&topo) };
        let plan = zzx_schedule(&topo, &native, &config);
        row(
            &format!("{k}"),
            &[
                format!("{:10.2}", plan.mean_nq()),
                format!("{:10.2}", plan.mean_nc()),
                format!("{:10.0}", plan.duration(&durations)),
                fixed(evaluate(&plan, &topo, &cfg, residual)),
            ],
        );
    }

    println!("\n-- requirement sweep (alpha = 0.5, k = 3) --");
    row(
        "requirement",
        &["mean NQ".into(), "mean NC".into(), "time (ns)".into(), "fidelity".into()],
    );
    for (name, req) in [
        ("strict (NQ<3,NC<=4)", Requirement { nq_limit: 3, nc_limit: 4 }),
        ("paper (NQ<4,NC<=8)", Requirement::paper_default(&topo)),
        ("loose (unbounded)", Requirement { nq_limit: 99, nc_limit: 99 }),
    ] {
        let config = ZzxConfig { requirement: req, ..ZzxConfig::paper_default(&topo) };
        let plan = zzx_schedule(&topo, &native, &config);
        row(
            name,
            &[
                format!("{:10.2}", plan.mean_nq()),
                format!("{:10.2}", plan.mean_nc()),
                format!("{:10.0}", plan.duration(&durations)),
                fixed(evaluate(&plan, &topo, &cfg, residual)),
            ],
        );
    }
}
