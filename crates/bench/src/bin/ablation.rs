//! Quality-side ablations of the scheduler's design choices (DESIGN.md):
//!
//! * the α weight of the NQ-vs-NC trade-off,
//! * the top-k path-relaxing budget,
//! * the suppression requirement `R` (strict / paper / loose).
//!
//! For each setting: mean NQ/NC over layers, relative execution time, and
//! end-to-end fidelity on a representative benchmark. All settings go
//! through ONE [`Session`] queue: the QAOA-9 circuit is routed once and
//! shared by every sweep point (the session's routing memo), and
//! calibration runs once for the whole process.

use std::sync::Arc;

use zz_bench::{banner, fixed, parallel_map, row, CIRCUIT_SEED};
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::calib;
use zz_sched::zzx::Requirement;
use zz_service::{
    CompileOptions, CompileRequest, CompileResponse, Compiled, PulseMethod, Session, Target,
};
use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};

fn evaluate(compiled: &Compiled, target: &Target, residual: f64) -> f64 {
    let topo = &compiled.topology;
    // The same disorder ensemble every fig* binary averages over.
    let seeds = zz_service::EvalSpec::paper_default().crosstalk_seeds;
    let mut total = 0.0;
    for &seed in &seeds {
        let model = ZzErrorModel::sampled(topo, target.lambda_mean(), target.lambda_std(), seed)
            .with_residual(residual);
        total += fidelity_under_zz(&compiled.plan, topo, &model, &compiled.durations);
    }
    total / seeds.len() as f64
}

fn stats_row(label: &str, compiled: &Compiled, fidelity: f64) {
    row(
        label,
        &[
            format!("{:10.2}", compiled.plan.mean_nq()),
            format!("{:10.2}", compiled.plan.mean_nc()),
            format!("{:10.0}", compiled.execution_time()),
            fixed(fidelity),
        ],
    );
}

fn main() {
    banner(
        "Ablations",
        "scheduler design choices (QAOA-9 on the 3x4 grid)",
    );
    let residual = calib::residual_factor(PulseMethod::Pert);
    let circuit = Arc::new(generate(BenchmarkKind::Qaoa, 9, CIRCUIT_SEED));
    let target = Target::builder()
        .store_from_env()
        .build()
        .expect("the environment-opt-in store never fails the build");
    let session = Session::new(target);

    let alphas = [0.0, 0.25, 0.5, 1.0, 2.0];
    let ks = [1usize, 2, 3, 5, 8];
    // `None` = the engine default, which is the paper requirement derived
    // from the device.
    let reqs: [(&str, Option<Requirement>); 3] = [
        (
            "strict (NQ<3,NC<=4)",
            Some(Requirement {
                nq_limit: 3,
                nc_limit: 4,
            }),
        ),
        ("paper (NQ<4,NC<=8)", None),
        (
            "loose (unbounded)",
            Some(Requirement {
                nq_limit: 99,
                nc_limit: 99,
            }),
        ),
    ];

    // One session batch for all three sweeps — every sweep point shares
    // the one Arc'ed circuit, which routes once for the whole batch.
    let request = |label: String, options: CompileOptions| {
        CompileRequest::shared(Arc::clone(&circuit))
            .with_options(options)
            .with_label(label)
    };
    for alpha in alphas {
        session.submit(request(
            format!("{alpha:4.2}"),
            CompileOptions::default().with_alpha(alpha),
        ));
    }
    for k in ks {
        session.submit(request(format!("{k}"), CompileOptions::default().with_k(k)));
    }
    for (name, req) in &reqs {
        let mut options = CompileOptions::default();
        if let Some(req) = req {
            options = options.with_requirement(*req);
        }
        session.submit(request(name.to_string(), options));
    }
    let report = session.drain();
    eprintln!("[service] {report}");
    let responses: Vec<&CompileResponse> = report
        .outcomes
        .iter()
        .map(|o| match o {
            Ok(response) => response,
            Err(e) => panic!("QAOA-9 fits the 3x4 grid: {e}"),
        })
        .collect();

    let threads = zz_core::batch::default_threads();
    let fidelities = parallel_map(responses.len(), threads, |i| {
        evaluate(&responses[i].compiled, session.target(), residual)
    });
    // Recover each sweep's rows by slicing the flat response/fidelity
    // lists in the same order the requests were submitted.
    let print_sweep = |responses: &[&CompileResponse], fidelities: &[f64]| {
        for (r, &f) in responses.iter().zip(fidelities) {
            stats_row(&r.label, &r.compiled, f);
        }
    };
    let (alpha_out, rest) = responses.split_at(alphas.len());
    let (k_out, req_out) = rest.split_at(ks.len());
    let (alpha_fid, rest) = fidelities.split_at(alphas.len());
    let (k_fid, req_fid) = rest.split_at(ks.len());
    let header = [
        "mean NQ".into(),
        "mean NC".into(),
        "time (ns)".into(),
        "fidelity".into(),
    ];

    println!("\n-- alpha sweep (k = 3, paper requirement) --");
    row("alpha", &header);
    print_sweep(alpha_out, alpha_fid);

    println!("\n-- k sweep (alpha = 0.5, paper requirement) --");
    row("k", &header);
    print_sweep(k_out, k_fid);

    println!("\n-- requirement sweep (alpha = 0.5, k = 3) --");
    row("requirement", &header);
    print_sweep(req_out, req_fid);
}
