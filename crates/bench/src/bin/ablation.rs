//! Quality-side ablations of the scheduler's design choices (DESIGN.md):
//!
//! * the α weight of the NQ-vs-NC trade-off,
//! * the top-k path-relaxing budget,
//! * the suppression requirement `R` (strict / paper / loose).
//!
//! For each setting: mean NQ/NC over layers, relative execution time, and
//! end-to-end fidelity on a representative benchmark. All settings compile
//! as ONE batch through the [`zz_core::BatchCompiler`]: the QAOA-9 circuit
//! is routed once and shared by every sweep point, and calibration runs
//! once for the whole process.

use zz_bench::{banner, fixed, parallel_map, row};
use zz_circuit::bench::{generate, BenchmarkKind};
use zz_core::batch::{BatchJob, JobOutcome};
use zz_core::evaluate::EvalConfig;
use zz_core::{calib, BatchCompiler, Compiled, PulseMethod, SchedulerKind};
use zz_sched::zzx::Requirement;
use zz_sim::executor::{fidelity_under_zz, ZzErrorModel};

fn evaluate(compiled: &Compiled, cfg: &EvalConfig, residual: f64) -> f64 {
    let topo = &compiled.topology;
    let mut total = 0.0;
    for &seed in &cfg.crosstalk_seeds {
        let model = ZzErrorModel::sampled(topo, cfg.lambda_mean, cfg.lambda_std, seed)
            .with_residual(residual);
        total += fidelity_under_zz(&compiled.plan, topo, &model, &compiled.durations);
    }
    total / cfg.crosstalk_seeds.len() as f64
}

fn stats_row(label: &str, compiled: &Compiled, fidelity: f64) {
    row(
        label,
        &[
            format!("{:10.2}", compiled.plan.mean_nq()),
            format!("{:10.2}", compiled.plan.mean_nc()),
            format!("{:10.0}", compiled.execution_time()),
            fixed(fidelity),
        ],
    );
}

fn main() {
    banner(
        "Ablations",
        "scheduler design choices (QAOA-9 on the 3x4 grid)",
    );
    let cfg = EvalConfig::paper_default();
    let residual = calib::residual_factor(PulseMethod::Pert);
    let circuit = std::sync::Arc::new(generate(BenchmarkKind::Qaoa, 9, 7));

    let alphas = [0.0, 0.25, 0.5, 1.0, 2.0];
    let ks = [1usize, 2, 3, 5, 8];
    // `None` = the compiler's default, which is the paper requirement
    // derived from the device.
    let reqs: [(&str, Option<Requirement>); 3] = [
        (
            "strict (NQ<3,NC<=4)",
            Some(Requirement {
                nq_limit: 3,
                nc_limit: 4,
            }),
        ),
        ("paper (NQ<4,NC<=8)", None),
        (
            "loose (unbounded)",
            Some(Requirement {
                nq_limit: 99,
                nc_limit: 99,
            }),
        ),
    ];

    // One batch for all three sweeps — every sweep point shares the one
    // Arc'ed circuit, which routes once for the whole batch.
    let mut jobs: Vec<BatchJob> = Vec::new();
    let job = |label: String| {
        BatchJob::shared(
            std::sync::Arc::clone(&circuit),
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
        )
        .with_label(label)
    };
    for alpha in alphas {
        jobs.push(job(format!("{alpha:4.2}")).with_alpha(alpha));
    }
    for k in ks {
        jobs.push(job(format!("{k}")).with_k(k));
    }
    for (name, req) in &reqs {
        let mut j = job(name.to_string());
        if let Some(req) = req {
            j = j.with_requirement(*req);
        }
        jobs.push(j);
    }
    let report = BatchCompiler::builder().store_from_env().build().run(jobs);
    eprintln!("[batch] {report}");

    let threads = zz_core::batch::default_threads();
    let fidelities = parallel_map(report.outcomes.len(), threads, |i| {
        let compiled = report.outcomes[i]
            .result
            .as_ref()
            .expect("QAOA-9 fits the 3x4 grid");
        evaluate(compiled, &cfg, residual)
    });
    // Recover each sweep's rows by slicing the flat outcome/fidelity lists
    // in the same order the jobs were pushed.
    let print_sweep = |outcomes: &[JobOutcome], fidelities: &[f64]| {
        for (o, &f) in outcomes.iter().zip(fidelities) {
            stats_row(&o.label, o.result.as_ref().expect("fits"), f);
        }
    };
    let (alpha_out, rest) = report.outcomes.split_at(alphas.len());
    let (k_out, req_out) = rest.split_at(ks.len());
    let (alpha_fid, rest) = fidelities.split_at(alphas.len());
    let (k_fid, req_fid) = rest.split_at(ks.len());
    let header = [
        "mean NQ".into(),
        "mean NC".into(),
        "time (ns)".into(),
        "fidelity".into(),
    ];

    println!("\n-- alpha sweep (k = 3, paper requirement) --");
    row("alpha", &header);
    print_sweep(alpha_out, alpha_fid);

    println!("\n-- k sweep (alpha = 0.5, paper requirement) --");
    row("k", &header);
    print_sweep(k_out, k_fid);

    println!("\n-- requirement sweep (alpha = 0.5, k = 3) --");
    row("requirement", &header);
    print_sweep(req_out, req_fid);
}
