//! Fleet dispatch probe — the multi-backend benchmark run by CI.
//!
//! Drives a [`Fleet`] of the three shipped device profiles (paper grid,
//! tunable coupler, always-on heavy-hex) through a mixed job stream
//! interleaved with calibration-drift epochs, and measures the three
//! numbers that matter for predictive dispatch:
//!
//! - **dispatch latency** — wall time of [`Fleet::submit`], which
//!   compiles and scores the job on every eligible backend;
//! - **predicted-vs-simulated gap** — for jobs won by a small device,
//!   the distance between the dispatch score (simulated at the
//!   *calibrated* λ) and [`Fleet::ground_truth_fidelity`] (simulated at
//!   the drifted ground-truth λ): the fidelity cost of stale
//!   calibration;
//! - **invalidation counts** — how many devices each drift epoch pushed
//!   past the re-characterization threshold.
//!
//! Results are written as `BENCH_fleet.json` (override the path with
//! the `BENCH_FLEET_OUT` environment variable) so the CI workflow can
//! track dispatch behaviour across PRs. The probe fails (non-zero
//! exit) unless every job dispatched, both scoring paths were
//! exercised, and drift invalidated at least one device.

use std::fmt::Write as _;
use std::time::Instant;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_fleet::{Fleet, FleetConfig, ScoreKind};
use zz_service::CompileOptions;

/// The mixed job stream replayed at every epoch: two sizes all three
/// backends hold, and one 16-qubit job only the heavy-hex lattice fits
/// (a forced plan-metrics dispatch).
fn job_stream() -> Vec<(BenchmarkKind, usize)> {
    vec![
        (BenchmarkKind::Qft, 4),
        (BenchmarkKind::HiddenShift, 6),
        (BenchmarkKind::Qft, 16),
        (BenchmarkKind::Qaoa, 5),
    ]
}

struct JobRow {
    label: String,
    epoch: u64,
    kind: BenchmarkKind,
    qubits: usize,
    device: String,
    score: f64,
    score_kind: ScoreKind,
    candidates: usize,
    dispatch_ms: f64,
    /// Ground-truth fidelity under the drifted λ — `None` for jobs won
    /// by a device above the evaluation ceiling.
    simulated: Option<f64>,
}

fn job_json(row: &JobRow) -> String {
    let mut out = String::new();
    let (simulated, gap) = match row.simulated {
        Some(s) => (format!("{s:.6}"), format!("{:.6}", (row.score - s).abs())),
        None => ("null".into(), "null".into()),
    };
    let _ = write!(
        out,
        "{{\"label\": \"{}\", \"epoch\": {}, \"kind\": \"{}\", \"qubits\": {}, \
         \"device\": \"{}\", \"score\": {:.6}, \"score_kind\": \"{:?}\", \
         \"candidates\": {}, \"dispatch_ms\": {:.3}, \"simulated\": {}, \"gap\": {}}}",
        row.label,
        row.epoch,
        row.kind,
        row.qubits,
        row.device,
        row.score,
        row.score_kind,
        row.candidates,
        row.dispatch_ms,
        simulated,
        gap,
    );
    out
}

fn main() {
    // Low threshold + three epochs of an 8% drift walk: some epochs
    // invalidate, some leave the fleet calibrated — both branches of
    // `advance_epoch` run under the bench clock.
    let config = FleetConfig {
        seed: 0x5eed,
        invalidation_threshold: 0.05,
        threads_per_device: 1,
        eval_seeds: vec![11, 23],
        trajectories: 8,
        ..FleetConfig::default()
    };
    let epochs = 3u64;
    let mut fleet = Fleet::standard(config).expect("the standard fleet builds");

    let mut jobs: Vec<JobRow> = Vec::new();
    let mut epoch_rows: Vec<(u64, Vec<String>, f64)> = Vec::new();

    for epoch in 0..=epochs {
        if epoch > 0 {
            let start = Instant::now();
            let report = fleet.advance_epoch().expect("the epoch advances");
            let advance_ms = start.elapsed().as_secs_f64() * 1e3;
            let invalidated: Vec<String> = report
                .invalidations
                .iter()
                .map(|i| i.device.clone())
                .collect();
            println!(
                "[epoch {}] invalidated {:?} in {:.3}ms",
                report.epoch, invalidated, advance_ms
            );
            epoch_rows.push((report.epoch, invalidated, advance_ms));
        }
        for (kind, qubits) in job_stream() {
            let circuit = generate(kind, qubits, 5);
            let start = Instant::now();
            let dispatch = fleet
                .submit(circuit.clone(), CompileOptions::default())
                .unwrap_or_else(|e| panic!("{kind}/{qubits}q failed to dispatch: {e}"));
            let dispatch_ms = start.elapsed().as_secs_f64() * 1e3;
            let score_kind = dispatch
                .candidates
                .iter()
                .find(|c| c.device == dispatch.device)
                .expect("the winner is a candidate")
                .kind;
            // The gap is only measurable where simulation is: jobs won
            // by a small device.
            let simulated = match score_kind {
                ScoreKind::Simulated => Some(
                    fleet
                        .ground_truth_fidelity(&dispatch.device, circuit, CompileOptions::default())
                        .expect("the winning small device simulates"),
                ),
                ScoreKind::PlanMetrics => None,
            };
            let row = JobRow {
                label: dispatch.label.clone(),
                epoch: fleet.epoch(),
                kind,
                qubits,
                device: dispatch.device.clone(),
                score: dispatch.score,
                score_kind,
                candidates: dispatch.candidates.len(),
                dispatch_ms,
                simulated,
            };
            println!(
                "[epoch {}] {:>12} {:>3}q -> {:>16} score {:.4} ({:?}, {} candidates) \
                 in {:>8.3}ms{}",
                row.epoch,
                kind.to_string(),
                qubits,
                row.device,
                row.score,
                row.score_kind,
                row.candidates,
                row.dispatch_ms,
                row.simulated
                    .map(|s| format!(" | ground truth {s:.4}"))
                    .unwrap_or_default(),
            );
            jobs.push(row);
        }
    }

    let report = fleet.report();
    println!("{report}");

    // Acceptance gates: everything dispatched, both scoring paths ran,
    // and the drift walk forced at least one re-characterization.
    assert_eq!(
        report.dispatches as usize,
        jobs.len(),
        "every job dispatched"
    );
    assert!(
        jobs.iter().any(|j| j.score_kind == ScoreKind::Simulated),
        "no job took the simulated scoring path"
    );
    assert!(
        jobs.iter().any(|j| j.score_kind == ScoreKind::PlanMetrics),
        "no job took the plan-metrics scoring path"
    );
    assert!(
        report.invalidations >= 1,
        "three drift epochs must invalidate at least one device"
    );

    let gaps: Vec<f64> = jobs
        .iter()
        .filter_map(|j| j.simulated.map(|s| (j.score - s).abs()))
        .collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let latencies: Vec<f64> = jobs.iter().map(|j| j.dispatch_ms).collect();

    let mut json = String::from("{\n  \"schema\": 1,\n  \"jobs\": [\n");
    for (i, row) in jobs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            job_json(row),
            if i + 1 == jobs.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"epochs\": [\n");
    for (i, (epoch, invalidated, advance_ms)) in epoch_rows.iter().enumerate() {
        let devices: Vec<String> = invalidated.iter().map(|d| format!("\"{d}\"")).collect();
        let _ = writeln!(
            json,
            "    {{\"epoch\": {}, \"invalidated\": [{}], \"advance_ms\": {:.3}}}{}",
            epoch,
            devices.join(", "),
            advance_ms,
            if i + 1 == epoch_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"devices\": [\n");
    for (i, d) in report.devices.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"device\": \"{}\", \"qubits\": {}, \"jobs\": {}, \"invalidations\": {}, \
             \"calibrated_epoch\": {}, \"mean_score\": {:.6}}}{}",
            d.device,
            d.qubits,
            d.jobs,
            d.invalidations,
            d.calibrated_epoch,
            d.mean_score,
            if i + 1 == report.devices.len() {
                ""
            } else {
                ","
            }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\"dispatches\": {}, \"invalidations\": {}, \
         \"mean_dispatch_ms\": {:.3}, \"max_dispatch_ms\": {:.3}, \
         \"mean_prediction_gap\": {:.6}, \"max_prediction_gap\": {:.6}}}",
        report.dispatches,
        report.invalidations,
        mean(&latencies),
        latencies.iter().cloned().fold(0.0, f64::max),
        mean(&gaps),
        gaps.iter().cloned().fold(0.0, f64::max),
    );
    json.push('}');
    json.push('\n');

    let out = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(&out, &json).expect("snapshot file writable");
    println!("wrote {out}");
}
