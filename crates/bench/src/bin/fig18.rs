//! Figure 18: `X90` under ZZ crosstalk *and* leakage on a five-level
//! transmon, with and without DRAG.
//!
//! Series: Pert w/o DRAG, Gaussian w/ DRAG, Pert w/ DRAG, OptCtrl w/ DRAG,
//! DCG w/ DRAG; anharmonicity ∈ {−200, −300, −400} MHz; versus crosstalk
//! strength λ/2π ∈ [0, 2] MHz.

use zz_bench::{banner, lambda_sweep_mhz, row, sci};
use zz_pulse::drag::DragCorrected;
use zz_pulse::library::{x90_drive, PulseMethod};
use zz_pulse::mhz;
use zz_pulse::systems::{infidelity_transmon, QubitDrive};
use zz_quantum::gates;

fn main() {
    banner(
        "Figure 18",
        "X90 under ZZ crosstalk and leakage (5-level transmon)",
    );
    let sweep = lambda_sweep_mhz();
    let target = gates::x90();

    for alpha_mhz in [-200.0, -300.0, -400.0] {
        let alpha = mhz(alpha_mhz);
        println!("\n-- anharmonicity {alpha_mhz} MHz --");
        row(
            "lambda/2pi (MHz)",
            &sweep
                .iter()
                .map(|l| format!("{l:10.1}"))
                .collect::<Vec<_>>(),
        );

        // Pert without DRAG: leaks.
        let pert = x90_drive(PulseMethod::Pert);
        let series: Vec<String> = sweep
            .iter()
            .map(|&l| sci(infidelity_transmon(&pert.as_drive(), &target, alpha, mhz(l)).max(1e-8)))
            .collect();
        row("Pert w/o DRAG", &series);

        // Every method with DRAG.
        for method in PulseMethod::ALL {
            let base = x90_drive(method);
            let d = DragCorrected::new(base.x.as_ref(), base.y.as_ref(), alpha);
            let (dx, dy) = (d.x(), d.y());
            let drive = QubitDrive { x: &dx, y: &dy };
            let series: Vec<String> = sweep
                .iter()
                .map(|&l| sci(infidelity_transmon(&drive, &target, alpha, mhz(l)).max(1e-8)))
                .collect();
            row(&format!("{method} w/ DRAG"), &series);
        }
    }
}
