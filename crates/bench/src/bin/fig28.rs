//! Figure 28 (appendix): the optimized `X90` waveforms.
//!
//! Prints `t (ns), Ωx/2π (MHz), Ωy/2π (MHz)` samples for the OptCtrl, Pert
//! and DCG pulses — the series plotted in the paper's appendix figure.

use zz_bench::banner;
use zz_pulse::library::{x90_drive, PulseMethod};

fn main() {
    banner(
        "Figure 28",
        "optimized X90 waveforms (CSV: t, Ox_MHz, Oy_MHz)",
    );
    for method in [PulseMethod::OptCtrl, PulseMethod::Pert, PulseMethod::Dcg] {
        let drive = x90_drive(method);
        let d = drive.duration();
        println!("\n# {method} ({d} ns)");
        println!("t_ns,omega_x_mhz,omega_y_mhz");
        let samples = 120;
        for k in 0..=samples {
            let t = d * k as f64 / samples as f64;
            // rad/ns → MHz: Ω/2π × 10³.
            let to_mhz = 1e3 / (2.0 * std::f64::consts::PI);
            let dr = drive.as_drive();
            println!(
                "{t:.2},{:.4},{:.4}",
                dr.x.value(t) * to_mhz,
                dr.y.value(t) * to_mhz
            );
        }
    }
}
