//! Figure 25: number of couplings to turn off per layer on devices with
//! tunable couplers (averaged over layers).
//!
//! With the baseline every coupling carries unsuppressed crosstalk and must
//! be turned off; with the co-optimization only intra-region couplings
//! (`NC`) remain. The paper reports a 10–20× reduction. Includes the QV
//! benchmark in addition to the core six.

use zz_bench::{banner, paper_session, row, suite_requests};
use zz_circuit::bench::BenchmarkKind;
use zz_service::{CompileResponse, PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 25",
        "#couplings to turn off (tunable-coupler devices)",
    );

    let cases: Vec<(BenchmarkKind, usize)> = BenchmarkKind::CORE
        .iter()
        .copied()
        .chain([BenchmarkKind::Qv])
        .flat_map(|kind| kind.paper_sizes().iter().map(move |&n| (kind, n)))
        .collect();
    let configs = [(PulseMethod::Pert, SchedulerKind::ZzxSched)];
    let report = paper_session().run(suite_requests(&cases, &configs, None));
    eprintln!("[service] {report}");
    let compiled: Vec<&CompileResponse> = report
        .outcomes
        .iter()
        .map(|o| match o {
            Ok(response) => response,
            Err(e) => panic!("benchmarks are sized to their devices: {e}"),
        })
        .collect();

    row(
        "benchmark",
        &["baseline".into(), "ZZXSched".into(), "improve".into()],
    );
    let mut improvements = Vec::new();
    for (&(kind, n), zzx) in cases.iter().zip(compiled) {
        // Baseline: every coupling of the benchmark's device, every layer.
        let all_couplings = zzx.compiled.topology.coupling_count() as f64;
        let ours = zzx.compiled.plan.mean_nc();
        let improvement = if ours > 1e-9 {
            all_couplings / ours
        } else {
            f64::INFINITY
        };
        improvements.push(improvement.min(all_couplings / 0.5));
        row(
            &format!("{kind}-{n}"),
            &[
                format!("{all_couplings:10.1}"),
                format!("{ours:10.2}"),
                format!("{improvement:8.1}x"),
            ],
        );
    }
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("\nmean reduction {mean:.1}x (paper: 10–20x)");
}
