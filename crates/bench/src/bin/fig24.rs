//! Figure 24: execution time of each benchmark under ZZXSched relative to
//! ParSched (the parallelism cost of suppression; the paper reports
//! typically < 2×, independent of the pulse method).

use zz_bench::{banner, core_cases, row};
use zz_core::evaluate::{compile_suite, EvalConfig, SuiteCase};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 24",
        "execution time of ZZXSched relative to ParSched",
    );
    let cfg = EvalConfig::paper_default();
    let cases = core_cases();

    // Both schedulers per benchmark, compiled as one batch: each benchmark
    // instance is routed once and shared by its ParSched and ZZXSched jobs.
    let suite: Vec<SuiteCase> = cases
        .iter()
        .flat_map(|&(kind, n)| {
            [SchedulerKind::ParSched, SchedulerKind::ZzxSched]
                .into_iter()
                .map(move |s| (kind, n, PulseMethod::Pert, s))
        })
        .collect();
    let report = compile_suite(&suite, &cfg);
    eprintln!("[batch] {report}");
    let compiled: Vec<_> = report.successes().collect();
    assert_eq!(
        compiled.len(),
        suite.len(),
        "benchmarks are sized to their devices"
    );

    row(
        "benchmark",
        &["Par (ns)".into(), "ZZX (ns)".into(), "relative".into()],
    );
    let mut ratios = Vec::new();
    for (ci, &(kind, n)) in cases.iter().enumerate() {
        let (tp, tz) = (
            compiled[2 * ci].execution_time(),
            compiled[2 * ci + 1].execution_time(),
        );
        ratios.push(tz / tp);
        row(
            &format!("{kind}-{n}"),
            &[
                format!("{tp:10.0}"),
                format!("{tz:10.0}"),
                format!("{:8.2}x", tz / tp),
            ],
        );
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nrelative execution time: mean {mean:.2}x, max {max:.2}x (paper: typically < 2x)");
}
