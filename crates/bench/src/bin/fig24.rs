//! Figure 24: execution time of each benchmark under ZZXSched relative to
//! ParSched (the parallelism cost of suppression; the paper reports
//! typically < 2×, independent of the pulse method).

use zz_bench::{banner, core_cases, paper_session, row, suite_requests};
use zz_service::{CompileResponse, PulseMethod, SchedulerKind};

fn main() {
    banner(
        "Figure 24",
        "execution time of ZZXSched relative to ParSched",
    );
    let cases = core_cases();

    // Both schedulers per benchmark, submitted as one session batch: each
    // benchmark instance is routed once and shared by its ParSched and
    // ZZXSched requests.
    let configs = [
        (PulseMethod::Pert, SchedulerKind::ParSched),
        (PulseMethod::Pert, SchedulerKind::ZzxSched),
    ];
    let report = paper_session().run(suite_requests(&cases, &configs, None));
    eprintln!("[service] {report}");
    let compiled: Vec<&CompileResponse> = report
        .outcomes
        .iter()
        .map(|o| match o {
            Ok(response) => response,
            Err(e) => panic!("benchmarks are sized to their devices: {e}"),
        })
        .collect();

    row(
        "benchmark",
        &["Par (ns)".into(), "ZZX (ns)".into(), "relative".into()],
    );
    let mut ratios = Vec::new();
    for (ci, &(kind, n)) in cases.iter().enumerate() {
        let (tp, tz) = (
            compiled[2 * ci].compiled.execution_time(),
            compiled[2 * ci + 1].compiled.execution_time(),
        );
        ratios.push(tz / tp);
        row(
            &format!("{kind}-{n}"),
            &[
                format!("{tp:10.0}"),
                format!("{tz:10.0}"),
                format!("{:8.2}x", tz / tp),
            ],
        );
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nrelative execution time: mean {mean:.2}x, max {max:.2}x (paper: typically < 2x)");
}
