//! Figure 24: execution time of each benchmark under ZZXSched relative to
//! ParSched (the parallelism cost of suppression; the paper reports
//! typically < 2×, independent of the pulse method).

use zz_bench::{banner, row};
use zz_circuit::bench::BenchmarkKind;
use zz_core::evaluate::{compile_benchmark, EvalConfig};
use zz_core::{PulseMethod, SchedulerKind};

fn main() {
    banner("Figure 24", "execution time of ZZXSched relative to ParSched");
    let cfg = EvalConfig::paper_default();

    row(
        "benchmark",
        &["Par (ns)".into(), "ZZX (ns)".into(), "relative".into()],
    );
    let mut ratios = Vec::new();
    for kind in BenchmarkKind::CORE {
        for &n in kind.paper_sizes() {
            let par = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ParSched, &cfg);
            let zzx = compile_benchmark(kind, n, PulseMethod::Pert, SchedulerKind::ZzxSched, &cfg);
            let (tp, tz) = (par.execution_time(), zzx.execution_time());
            ratios.push(tz / tp);
            row(
                &format!("{kind}-{n}"),
                &[
                    format!("{tp:10.0}"),
                    format!("{tz:10.0}"),
                    format!("{:8.2}x", tz / tp),
                ],
            );
        }
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nrelative execution time: mean {mean:.2}x, max {max:.2}x (paper: typically < 2x)");
}
