//! Property-based tests of Algorithm 1 (α-optimal suppression) and the
//! schedulers' structural invariants.
//!
//! Random cases come from the workspace PRNG with per-case seeds, so any
//! failure names the case that produced it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_sched::{alpha_optimal_suppression, cut_metrics, par_schedule};
use zz_topology::Topology;

const CASES: u64 = 64;

fn topologies() -> Vec<Topology> {
    vec![
        Topology::grid(2, 2),
        Topology::grid(2, 3),
        Topology::grid(3, 3),
        Topology::grid(3, 4),
        Topology::line(6),
        Topology::ibmq_vigo(),
        Topology::grid_with_diagonal(),
        Topology::heavy_hex_cell(),
    ]
}

#[test]
fn suppression_plan_invariants() {
    let topologies = topologies();
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let topo = &topologies[rng.gen_range(0..topologies.len())];
        let alpha = rng.gen_range(0.0..4.0);
        let k = rng.gen_range(1..5usize);

        // Build Q from whole couplings so gates are realizable.
        let mut q: Vec<usize> = Vec::new();
        for _ in 0..rng.gen_range(0..3usize) {
            let pick = rng.gen_range(0..topo.coupling_count());
            let (u, v) = topo.couplings()[pick];
            q.push(u);
            q.push(v);
        }
        q.sort_unstable();
        q.dedup();

        let plan = alpha_optimal_suppression(topo, &q, alpha, k);

        // 1. Gate qubits always land in S.
        for &qubit in &q {
            assert!(
                plan.pulsed[qubit],
                "gate qubit {qubit} not pulsed on {}",
                topo.name()
            );
        }
        // 2. Reported metrics equal recomputed metrics.
        let recomputed = cut_metrics(topo, &plan.pulsed);
        assert_eq!(&plan.metrics, &recomputed, "case {case}");
        // 3. The plan never loses to the trivial cut S = Q.
        let trivial = {
            let mut pulsed = vec![false; topo.qubit_count()];
            for &qubit in &q {
                pulsed[qubit] = true;
            }
            cut_metrics(topo, &pulsed)
        };
        let score = |nq: usize, nc: usize| alpha * nq as f64 + nc as f64;
        assert!(
            score(plan.metrics.nq, plan.metrics.nc) <= score(trivial.nq, trivial.nc) + 1e-9,
            "algorithm lost to the trivial plan on {}",
            topo.name()
        );
    }
}

#[test]
fn bipartite_no_gate_layers_reach_complete_suppression() {
    let topologies = topologies();
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let topo = &topologies[rng.gen_range(0..6usize)]; // the first six are bipartite
        let alpha = rng.gen_range(0.0..2.0);
        let k = rng.gen_range(1..4usize);
        let plan = alpha_optimal_suppression(topo, &[], alpha, k);
        assert_eq!(plan.metrics.nc, 0, "case {case} on {}", topo.name());
        assert_eq!(plan.metrics.nq, 1, "case {case} on {}", topo.name());
    }
}

#[test]
fn schedulers_cover_every_op_exactly_once() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let topo = Topology::grid(2, 3);
        let mut native = NativeCircuit::new(6);
        let mut physical = 0usize;
        for _ in 0..rng.gen_range(1..20usize) {
            let r = rng.gen_range(0..u32::MAX) as usize;
            match rng.gen_range(0..2usize) {
                0 => {
                    native.push(NativeOp::X90 { qubit: r % 6 });
                    physical += 1;
                }
                _ => {
                    let (u, v) = topo.couplings()[r % topo.coupling_count()];
                    native.push(NativeOp::Zx90 {
                        control: u,
                        target: v,
                    });
                    physical += 1;
                }
            }
        }
        for plan in [
            par_schedule(&topo, &native),
            zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo)),
        ] {
            assert!(plan.validate().is_ok(), "case {case}");
            let scheduled: usize = plan
                .layers
                .iter()
                .flat_map(|l| l.ops.iter())
                .filter(|op| !matches!(op, NativeOp::Id { .. }))
                .count();
            assert_eq!(
                scheduled, physical,
                "case {case}: an op was lost or duplicated"
            );
        }
    }
}

#[test]
fn zzx_layers_always_make_progress() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let topo = Topology::grid(3, 4);
        let mut native = NativeCircuit::new(12);
        for _ in 0..rng.gen_range(1..24usize) {
            native.push(NativeOp::X90 {
                qubit: rng.gen_range(0..12usize),
            });
        }
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        for (i, layer) in plan.layers.iter().enumerate() {
            let gates = layer
                .ops
                .iter()
                .filter(|op| !matches!(op, NativeOp::Id { .. }))
                .count();
            assert!(gates > 0, "case {case}: layer {i} contains no real gates");
        }
    }
}
