//! Property-based tests of Algorithm 1 (α-optimal suppression) and the
//! schedulers' structural invariants.

use proptest::prelude::*;
use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_sched::zzx::{zzx_schedule, ZzxConfig};
use zz_sched::{alpha_optimal_suppression, cut_metrics, par_schedule};
use zz_topology::Topology;

fn topologies() -> Vec<Topology> {
    vec![
        Topology::grid(2, 2),
        Topology::grid(2, 3),
        Topology::grid(3, 3),
        Topology::grid(3, 4),
        Topology::line(6),
        Topology::ibmq_vigo(),
        Topology::grid_with_diagonal(),
        Topology::heavy_hex_cell(),
    ]
}

/// A strategy choosing a topology index and a random set of gate qubits
/// built from couplings (so two-qubit gates are realizable).
fn arb_case() -> impl Strategy<Value = (usize, Vec<usize>, f64, usize)> {
    (0..8usize, proptest::collection::vec(any::<u32>(), 0..3), 0.0..4.0f64, 1..5usize)
        .prop_map(|(t, picks, alpha, k)| (t, picks.iter().map(|&p| p as usize).collect(), alpha, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn suppression_plan_invariants((t, picks, alpha, k) in arb_case()) {
        let topo = &topologies()[t];
        // Build Q from whole couplings so gates are realizable.
        let mut q: Vec<usize> = Vec::new();
        for p in picks {
            let (u, v) = topo.couplings()[p % topo.coupling_count()];
            q.push(u);
            q.push(v);
        }
        q.sort_unstable();
        q.dedup();

        let plan = alpha_optimal_suppression(topo, &q, alpha, k);

        // 1. Gate qubits always land in S.
        for &qubit in &q {
            prop_assert!(plan.pulsed[qubit], "gate qubit {qubit} not pulsed on {}", topo.name());
        }
        // 2. Reported metrics equal recomputed metrics.
        let recomputed = cut_metrics(topo, &plan.pulsed);
        prop_assert_eq!(&plan.metrics, &recomputed);
        // 3. The plan never loses to the trivial cut S = Q.
        let trivial = {
            let mut pulsed = vec![false; topo.qubit_count()];
            for &qubit in &q {
                pulsed[qubit] = true;
            }
            cut_metrics(topo, &pulsed)
        };
        let score = |nq: usize, nc: usize| alpha * nq as f64 + nc as f64;
        prop_assert!(
            score(plan.metrics.nq, plan.metrics.nc) <= score(trivial.nq, trivial.nc) + 1e-9,
            "algorithm lost to the trivial plan on {}", topo.name()
        );
    }

    #[test]
    fn bipartite_no_gate_layers_reach_complete_suppression(
        t in 0..6usize, alpha in 0.0..2.0f64, k in 1..4usize
    ) {
        let topo = &topologies()[t]; // the first six are bipartite
        let plan = alpha_optimal_suppression(topo, &[], alpha, k);
        prop_assert_eq!(plan.metrics.nc, 0);
        prop_assert_eq!(plan.metrics.nq, 1);
    }

    #[test]
    fn schedulers_cover_every_op_exactly_once(
        ops in proptest::collection::vec((0..2usize, any::<u32>()), 1..20)
    ) {
        let topo = Topology::grid(2, 3);
        let mut native = NativeCircuit::new(6);
        let mut physical = 0usize;
        for (kind, r) in ops {
            let r = r as usize;
            match kind {
                0 => {
                    native.push(NativeOp::X90 { qubit: r % 6 });
                    physical += 1;
                }
                _ => {
                    let (u, v) = topo.couplings()[r % topo.coupling_count()];
                    native.push(NativeOp::Zx90 { control: u, target: v });
                    physical += 1;
                }
            }
        }
        for plan in [
            par_schedule(&topo, &native),
            zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo)),
        ] {
            prop_assert!(plan.validate().is_ok());
            let scheduled: usize = plan
                .layers
                .iter()
                .flat_map(|l| l.ops.iter())
                .filter(|op| !matches!(op, NativeOp::Id { .. }))
                .count();
            prop_assert_eq!(scheduled, physical, "an op was lost or duplicated");
        }
    }

    #[test]
    fn zzx_layers_always_make_progress(qubits in proptest::collection::vec(0..12usize, 1..24)) {
        let topo = Topology::grid(3, 4);
        let mut native = NativeCircuit::new(12);
        for q in qubits {
            native.push(NativeOp::X90 { qubit: q });
        }
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        for (i, layer) in plan.layers.iter().enumerate() {
            let gates = layer
                .ops
                .iter()
                .filter(|op| !matches!(op, NativeOp::Id { .. }))
                .count();
            prop_assert!(gates > 0, "layer {i} contains no real gates");
        }
    }
}
