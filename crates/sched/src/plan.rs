//! Scheduled layers and whole-circuit plans.

use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_linalg::Matrix;
use zz_quantum::{embed, gates};

use crate::metrics::CutMetrics;

/// Pulse durations (ns) of the physical native gates.
///
/// Layer duration is the maximum duration among the layer's pulses; virtual
/// `Rz` is free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateDurations {
    /// `X90` pulse duration.
    pub x90: f64,
    /// `ZX90` pulse duration.
    pub zx90: f64,
    /// Identity pulse duration.
    pub id: f64,
}

impl GateDurations {
    /// The 20 ns pulses of the paper's Gaussian/OptCtrl/Pert methods
    /// (the paper sets `T = 20 ns` for single- and two-qubit pulses alike).
    pub fn standard() -> Self {
        GateDurations {
            x90: 20.0,
            zx90: 20.0,
            id: 20.0,
        }
    }

    /// DCG sequences: 120 ns `X90`, 40 ns identity (paper Sec 7.1.1); the
    /// two-qubit sequence the paper leaves unimplemented is charged 120 ns.
    pub fn dcg() -> Self {
        GateDurations {
            x90: 120.0,
            zx90: 120.0,
            id: 40.0,
        }
    }

    /// Duration of one op under this table.
    pub fn of(&self, op: &NativeOp) -> f64 {
        match op {
            NativeOp::Rz { .. } => 0.0,
            NativeOp::X90 { .. } => self.x90,
            NativeOp::Zx90 { .. } => self.zx90,
            NativeOp::Id { .. } => self.id,
        }
    }
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations::standard()
    }
}

/// One scheduled layer: simultaneous pulses plus the virtual rotations that
/// precede them.
#[derive(Clone, Debug, PartialEq)]
pub struct Layer {
    /// Virtual `Rz` rotations applied (for free) before this layer's pulses,
    /// as `(qubit, angle)` in program order.
    pub rz_before: Vec<(usize, f64)>,
    /// The physical pulses of this layer (`X90`/`ZX90`/`Id`), on disjoint
    /// qubits.
    pub ops: Vec<NativeOp>,
    /// Per-qubit pulse status — `pulsed[q]` is `true` iff some op of this
    /// layer (including identity pulses) acts on `q`.
    pub pulsed: Vec<bool>,
    /// Suppression metrics of this layer's status cut.
    pub metrics: CutMetrics,
}

impl Layer {
    /// Layer duration: the longest pulse in the layer.
    pub fn duration(&self, durations: &GateDurations) -> f64 {
        self.ops
            .iter()
            .map(|op| durations.of(op))
            .fold(0.0, f64::max)
    }

    /// Number of identity pulses inserted for suppression.
    pub fn identity_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, NativeOp::Id { .. }))
            .count()
    }
}

/// Aggregate scheduler metrics of a plan — the at-scale fidelity proxy.
///
/// Full-density fidelity evaluation is exponential in qubit count, so
/// beyond simulable device sizes the pipeline reports these instead:
/// crosstalk accumulates per layer in proportion to the number of
/// unsuppressed couplings times the time they stay unsuppressed, which is
/// exactly [`residual_zz_weight`](Self::residual_zz_weight). Lower is
/// better; zero means complete suppression throughout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanSummary {
    /// Number of scheduled layers.
    pub layers: usize,
    /// Total execution time (ns) under the duration table given to
    /// [`SchedulePlan::summary`].
    pub duration_ns: f64,
    /// Mean `NC` over layers (the paper's Figure 25 quantity).
    pub mean_nc: f64,
    /// Mean `NQ` over layers.
    pub mean_nq: f64,
    /// Worst per-layer `NQ`.
    pub max_nq: usize,
    /// Identity pulses inserted for suppression.
    pub identity_count: usize,
    /// `Σ_layers NC · duration` (coupling-nanoseconds of unsuppressed ZZ):
    /// the first-order residual-crosstalk cost of executing the plan.
    pub residual_zz_weight: f64,
}

/// A complete schedule: an ordered list of layers plus trailing virtual
/// rotations.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulePlan {
    qubit_count: usize,
    /// The scheduled layers in execution order.
    pub layers: Vec<Layer>,
    /// Virtual `Rz` rotations left over after the last layer.
    pub final_rz: Vec<(usize, f64)>,
}

impl SchedulePlan {
    /// Creates an empty plan (used by the schedulers).
    pub(crate) fn new(qubit_count: usize) -> Self {
        SchedulePlan {
            qubit_count,
            layers: Vec::new(),
            final_rz: Vec::new(),
        }
    }

    /// Reassembles a plan from its parts — the entry point for the
    /// `zz_persist` codec, which round-trips plans through disk caches.
    ///
    /// The parts are taken at face value; callers that read them from an
    /// untrusted source (the codec does) must bounds-check qubit indices
    /// first, exactly as [`validate`](Self::validate) would.
    pub fn from_parts(qubit_count: usize, layers: Vec<Layer>, final_rz: Vec<(usize, f64)>) -> Self {
        SchedulePlan {
            qubit_count,
            layers,
            final_rz,
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total execution time under a duration table.
    pub fn duration(&self, durations: &GateDurations) -> f64 {
        self.layers.iter().map(|l| l.duration(durations)).sum()
    }

    /// Mean `NC` over layers — the per-layer average count of couplings with
    /// unsuppressed crosstalk (the quantity of the paper's Figure 25).
    pub fn mean_nc(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.metrics.nc as f64).sum::<f64>() / self.layers.len() as f64
    }

    /// Mean `NQ` over layers.
    pub fn mean_nq(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.metrics.nq as f64).sum::<f64>() / self.layers.len() as f64
    }

    /// Total identity pulses inserted across all layers.
    pub fn identity_count(&self) -> usize {
        self.layers.iter().map(Layer::identity_count).sum()
    }

    /// Aggregate metrics of this plan under a duration table — see
    /// [`PlanSummary`]. Cheap (`O(layers)`) at any device size.
    pub fn summary(&self, durations: &GateDurations) -> PlanSummary {
        let residual_zz_weight = self
            .layers
            .iter()
            .map(|l| l.metrics.nc as f64 * l.duration(durations))
            .sum();
        PlanSummary {
            layers: self.layer_count(),
            duration_ns: self.duration(durations),
            mean_nc: self.mean_nc(),
            mean_nq: self.mean_nq(),
            max_nq: self.layers.iter().map(|l| l.metrics.nq).max().unwrap_or(0),
            identity_count: self.identity_count(),
            residual_zz_weight,
        }
    }

    /// The exact unitary this plan implements (identity pulses are true
    /// identities at this level). Dense; for testing schedule correctness.
    pub fn unitary(&self) -> Matrix {
        let dim = 1usize << self.qubit_count;
        let mut u = Matrix::identity(dim);
        let apply = |m: &Matrix, qs: &[usize], u: &mut Matrix| {
            let g = embed(m, qs, self.qubit_count);
            *u = g.matmul(u);
        };
        for layer in &self.layers {
            for &(q, theta) in &layer.rz_before {
                apply(&gates::rz(theta), &[q], &mut u);
            }
            for op in &layer.ops {
                match op {
                    NativeOp::Id { .. } => {}
                    other => apply(&other.matrix(), &other.qubits(), &mut u),
                }
            }
        }
        for &(q, theta) in &self.final_rz {
            apply(&gates::rz(theta), &[q], &mut u);
        }
        u
    }

    /// Checks structural invariants: ops within a layer act on disjoint
    /// qubits, `pulsed` matches the ops, and every layer has at least one
    /// pulse. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.ops.is_empty() {
                return Err(format!("layer {i} has no pulses"));
            }
            let mut seen = vec![false; self.qubit_count];
            for op in &layer.ops {
                for q in op.qubits() {
                    if seen[q] {
                        return Err(format!("layer {i}: qubit {q} pulsed twice"));
                    }
                    seen[q] = true;
                }
            }
            if seen != layer.pulsed {
                return Err(format!("layer {i}: pulsed vector inconsistent with ops"));
            }
        }
        Ok(())
    }
}

/// Shared machinery for schedulers: per-qubit dependency chains over a
/// [`NativeCircuit`] with eager flushing of virtual rotations.
pub(crate) struct DependencyTracker<'c> {
    circuit: &'c NativeCircuit,
    /// Remaining predecessor count per op.
    preds: Vec<usize>,
    /// Ops unlocked by each op.
    succs: Vec<Vec<usize>>,
    /// Ready physical ops (indices into the circuit).
    ready_physical: Vec<usize>,
    /// Ready-but-unflushed virtual rotations.
    ready_rz: Vec<usize>,
    remaining: usize,
}

impl<'c> DependencyTracker<'c> {
    pub fn new(circuit: &'c NativeCircuit) -> Self {
        let ops = circuit.ops();
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.qubit_count()];
        let mut preds = vec![0usize; ops.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
        for (i, op) in ops.iter().enumerate() {
            let mut direct: Vec<usize> = op
                .qubits()
                .into_iter()
                .filter_map(|q| last_on_qubit[q])
                .collect();
            direct.sort_unstable();
            direct.dedup();
            preds[i] = direct.len();
            for p in direct {
                succs[p].push(i);
            }
            for q in op.qubits() {
                last_on_qubit[q] = Some(i);
            }
        }
        let mut tracker = DependencyTracker {
            circuit,
            preds,
            succs,
            ready_physical: Vec::new(),
            ready_rz: Vec::new(),
            remaining: ops.len(),
        };
        for i in 0..ops.len() {
            if tracker.preds[i] == 0 {
                tracker.enqueue(i);
            }
        }
        tracker
    }

    fn enqueue(&mut self, i: usize) {
        if self.circuit.ops()[i].is_physical() {
            self.ready_physical.push(i);
        } else {
            self.ready_rz.push(i);
        }
    }

    /// Flushes all currently ready virtual rotations (in program order) and
    /// returns them as `(qubit, theta)`.
    pub fn flush_rz(&mut self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        while !self.ready_rz.is_empty() {
            let mut batch = std::mem::take(&mut self.ready_rz);
            batch.sort_unstable();
            for i in batch {
                if let NativeOp::Rz { qubit, theta } = self.circuit.ops()[i] {
                    out.push((qubit, theta));
                }
                self.complete(i);
            }
        }
        out
    }

    /// Marks op `i` complete, unlocking successors.
    pub fn complete(&mut self, i: usize) {
        self.remaining -= 1;
        for s in self.succs[i].clone() {
            self.preds[s] -= 1;
            if self.preds[s] == 0 {
                self.enqueue(s);
            }
        }
    }

    /// Currently ready physical ops (sorted in program order).
    pub fn ready_physical(&self) -> Vec<usize> {
        let mut v = self.ready_physical.clone();
        v.sort_unstable();
        v
    }

    /// Removes a scheduled op from the ready set.
    pub fn take_physical(&mut self, i: usize) {
        let pos = self
            .ready_physical
            .iter()
            .position(|&x| x == i)
            .expect("op must be ready before scheduling");
        self.ready_physical.swap_remove(pos);
        self.complete(i);
    }

    /// Number of ops not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &NativeCircuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_the_longest_pulse() {
        let layer = Layer {
            rz_before: vec![],
            ops: vec![
                NativeOp::X90 { qubit: 0 },
                NativeOp::Zx90 {
                    control: 1,
                    target: 2,
                },
            ],
            pulsed: vec![true, true, true],
            metrics: CutMetrics {
                nc: 0,
                nq: 1,
                suppressed: vec![],
            },
        };
        assert_eq!(layer.duration(&GateDurations::standard()), 20.0);
        assert_eq!(layer.duration(&GateDurations::dcg()), 120.0);
    }

    #[test]
    fn tracker_respects_per_qubit_order() {
        let mut c = NativeCircuit::new(2);
        c.push(NativeOp::Rz {
            qubit: 0,
            theta: 1.0,
        });
        c.push(NativeOp::X90 { qubit: 0 });
        c.push(NativeOp::Rz {
            qubit: 0,
            theta: 2.0,
        });
        c.push(NativeOp::X90 { qubit: 1 });
        let mut t = DependencyTracker::new(&c);
        let rz = t.flush_rz();
        assert_eq!(rz, vec![(0, 1.0)]); // the second Rz waits for the X90
        let ready = t.ready_physical();
        assert_eq!(ready, vec![1, 3]);
        t.take_physical(1);
        let rz2 = t.flush_rz();
        assert_eq!(rz2, vec![(0, 2.0)]);
        t.take_physical(3);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn zx90_orders_against_both_qubits() {
        let mut c = NativeCircuit::new(3);
        c.push(NativeOp::X90 { qubit: 0 });
        c.push(NativeOp::Zx90 {
            control: 0,
            target: 1,
        });
        c.push(NativeOp::X90 { qubit: 1 });
        let mut t = DependencyTracker::new(&c);
        assert_eq!(t.ready_physical(), vec![0]);
        t.take_physical(0);
        assert_eq!(t.ready_physical(), vec![1]);
        t.take_physical(1);
        assert_eq!(t.ready_physical(), vec![2]);
    }
}
