//! ParSched: the maximal-parallelism ASAP baseline.
//!
//! This is the scheduling policy of current compilers (Qiskit, Quilc): every
//! gate runs as soon as its predecessors finish, maximizing parallelism and
//! ignoring crosstalk entirely. The paper uses `Gau+ParSched` as the
//! state-of-the-art baseline.

use zz_circuit::native::NativeCircuit;
use zz_topology::Topology;

use crate::metrics::cut_metrics;
use crate::plan::{DependencyTracker, Layer, SchedulePlan};

/// Schedules `circuit` with maximal parallelism (ASAP layers).
///
/// Each layer contains *every* currently schedulable physical op — they are
/// automatically qubit-disjoint — with no identity supplementation.
///
/// # Panics
///
/// Panics if the circuit uses more qubits than the device has.
///
/// # Example
///
/// ```
/// use zz_circuit::native::{NativeCircuit, NativeOp};
/// use zz_sched::par_schedule;
/// use zz_topology::Topology;
///
/// let mut c = NativeCircuit::new(4);
/// c.push(NativeOp::X90 { qubit: 0 });
/// c.push(NativeOp::X90 { qubit: 3 });
/// c.push(NativeOp::X90 { qubit: 0 });
/// let plan = par_schedule(&Topology::grid(2, 2), &c);
/// assert_eq!(plan.layer_count(), 2); // q0+q3 together, then q0 again
/// ```
pub fn par_schedule(topo: &Topology, circuit: &NativeCircuit) -> SchedulePlan {
    assert!(
        circuit.qubit_count() <= topo.qubit_count(),
        "circuit does not fit on the device"
    );
    let n = topo.qubit_count();
    let mut plan = SchedulePlan::new(n);
    let mut tracker = DependencyTracker::new(circuit);

    loop {
        let rz = tracker.flush_rz();
        let ready = tracker.ready_physical();
        if ready.is_empty() {
            plan.final_rz = rz;
            break;
        }
        let mut ops = Vec::with_capacity(ready.len());
        let mut pulsed = vec![false; n];
        for i in ready {
            let op = tracker.circuit().ops()[i];
            for q in op.qubits() {
                pulsed[q] = true;
            }
            ops.push(op);
            tracker.take_physical(i);
        }
        let metrics = cut_metrics(topo, &pulsed);
        plan.layers.push(Layer {
            rz_before: rz,
            ops,
            pulsed,
            metrics,
        });
    }
    debug_assert_eq!(tracker.remaining(), 0, "all ops scheduled");
    debug_assert!(plan.validate().is_ok());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::native::{compile_to_native, NativeOp};
    use zz_circuit::{route, Circuit, Gate};
    use zz_quantum::gates::equal_up_to_phase;

    #[test]
    fn parallel_ops_share_a_layer() {
        let topo = Topology::grid(2, 3);
        let mut c = NativeCircuit::new(6);
        for q in 0..6 {
            c.push(NativeOp::X90 { qubit: q });
        }
        let plan = par_schedule(&topo, &c);
        assert_eq!(plan.layer_count(), 1);
        assert_eq!(plan.layers[0].ops.len(), 6);
        assert_eq!(plan.layers[0].metrics.nq, 6); // one big pulsed region
    }

    #[test]
    fn plan_implements_the_circuit_unitary() {
        let topo = Topology::grid(2, 2);
        let mut logical = Circuit::new(4);
        logical
            .push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 1])
            .push(Gate::T, &[1])
            .push(Gate::Cnot, &[1, 3])
            .push(Gate::H, &[2]);
        let native = compile_to_native(&route(&logical, &topo));
        let plan = par_schedule(&topo, &native);
        assert!(plan.validate().is_ok());
        assert!(
            equal_up_to_phase(&plan.unitary(), &native.unitary(), 1e-9),
            "schedule must preserve the computation"
        );
    }

    #[test]
    fn no_identity_pulses_in_parsched() {
        let topo = Topology::grid(3, 4);
        let mut c = NativeCircuit::new(12);
        c.push(NativeOp::X90 { qubit: 5 });
        let plan = par_schedule(&topo, &c);
        assert_eq!(plan.identity_count(), 0);
    }

    #[test]
    fn trailing_rz_lands_in_final_rz() {
        let topo = Topology::line(2);
        let mut c = NativeCircuit::new(2);
        c.push(NativeOp::X90 { qubit: 0 });
        c.push(NativeOp::Rz {
            qubit: 0,
            theta: 0.5,
        });
        let plan = par_schedule(&topo, &c);
        assert_eq!(plan.final_rz, vec![(0, 0.5)]);
    }
}
