//! Algorithm 1: α-optimal suppression on planar topologies.
//!
//! Given the qubits `Q` that must carry gate pulses this layer, find a
//! status cut `(S, T)` with `Q ⊆ S` minimizing `α·NQ + NC`. The paper's key
//! insight (Theorem 3.1, after Hadlock) is the duality between remaining
//! sets of cuts and **odd-vertex pairings** of the dual graph; the algorithm
//! is:
//!
//! 1. **Delete Edges** — remove `E*_Q` (duals of couplings internal to `Q`)
//!    from the dual graph;
//! 2. **Vertex Matching** — pair the odd-degree dual vertices by
//!    minimum-total-distance perfect matching;
//! 3. **Path Relaxing** — consider the top-k shortest dual paths per matched
//!    pair, greedily trading path length (`NC`) against region size (`NQ`);
//! 4. **Add Edges / Cut Inducing / Check** — re-insert `E*_Q`, contract the
//!    primal counterparts of the chosen pairing, 2-color the quotient, and
//!    keep the candidate only if all of `Q` lands in one partition.
//!
//! The returned plan always exists: the trivial cut `S = Q` (no identity
//! supplementation) is used as a fallback and competes on the same
//! objective.

use zz_graph::{bfs_distances, matching::min_cost_perfect_matching, two_color, yen};
use zz_graph::{ColorConstraint, Path};
use zz_topology::Topology;

use crate::metrics::{cut_metrics, CutMetrics};

/// The outcome of α-optimal suppression for one layer.
#[derive(Clone, Debug)]
pub struct SuppressionPlan {
    /// Per-qubit status: `true` = in `S` (receives a pulse: gate or
    /// identity). When the layer has gates, `S` contains all their qubits.
    pub pulsed: Vec<bool>,
    /// Metrics of the induced cut.
    pub metrics: CutMetrics,
}

impl SuppressionPlan {
    /// The objective value `α·NQ + NC`.
    pub fn score(&self, alpha: f64) -> f64 {
        alpha * self.metrics.nq as f64 + self.metrics.nc as f64
    }

    /// The same cut with the roles of `S` and `T` exchanged (metrics are
    /// invariant; only the pulse orientation changes). Meaningful only for
    /// layers without gates.
    pub fn flipped(&self) -> SuppressionPlan {
        SuppressionPlan {
            pulsed: self.pulsed.iter().map(|&b| !b).collect(),
            metrics: self.metrics.clone(),
        }
    }
}

/// Runs Algorithm 1.
///
/// `involved` is `Q`, the set of qubits that carry gates this layer (empty
/// for pure-identity layers). `alpha` weighs `NQ` against `NC`; `k` is the
/// number of shortest paths considered per matched pair.
///
/// # Panics
///
/// Panics if any qubit index in `involved` is out of range.
///
/// # Example
///
/// ```
/// use zz_sched::alpha_optimal_suppression;
/// use zz_topology::Topology;
///
/// // A bipartite grid admits complete suppression when no gates constrain
/// // the cut (paper Sec 5.1).
/// let plan = alpha_optimal_suppression(&Topology::grid(3, 4), &[], 0.5, 3);
/// assert_eq!(plan.metrics.nc, 0);
/// assert_eq!(plan.metrics.nq, 1);
/// ```
pub fn alpha_optimal_suppression(
    topo: &Topology,
    involved: &[usize],
    alpha: f64,
    k: usize,
) -> SuppressionPlan {
    let n = topo.qubit_count();
    for &q in involved {
        assert!(q < n, "involved qubit {q} out of range");
    }
    let in_q = {
        let mut v = vec![false; n];
        for &q in involved {
            v[q] = true;
        }
        v
    };

    // Fallback: pulse exactly Q. Always a valid cut.
    let trivial = SuppressionPlan {
        metrics: cut_metrics(topo, &in_q),
        pulsed: in_q.clone(),
    };
    let mut best = trivial;

    // Step 0 (Delete Edges): remove the duals of couplings internal to Q.
    let dual = topo.dual();
    let e_q: Vec<usize> = topo
        .couplings()
        .iter()
        .enumerate()
        .filter(|&(_, &(u, v))| in_q[u] && in_q[v])
        .map(|(e, _)| e)
        .collect();
    let gd = dual.graph().without_edges(&e_q);

    // Step 1 (Vertex Matching).
    let odd = gd.odd_vertices();
    debug_assert!(
        odd.len().is_multiple_of(2),
        "odd-degree vertices come in pairs"
    );
    let mut pair_paths: Vec<Vec<Path>> = Vec::new();
    if !odd.is_empty() {
        let dist: Vec<Vec<usize>> = odd.iter().map(|&v| bfs_distances(&gd, v)).collect();
        let cost = |i: usize, j: usize| {
            let d = dist[i][odd[j]];
            if d == usize::MAX {
                1e12
            } else {
                d as f64
            }
        };
        let matching = min_cost_perfect_matching(odd.len(), cost);
        for (i, j) in matching {
            let paths = yen(&gd, odd[i], odd[j], k.max(1));
            if paths.is_empty() {
                // A matched pair became unreachable after Delete Edges: no
                // pairing through this matching exists; fall back.
                return best;
            }
            pair_paths.push(paths);
        }
    }

    // Candidate evaluation: union of chosen path edges + E_Q is contracted;
    // everything else must cross the cut.
    let evaluate = |choice: &[usize]| -> Option<SuppressionPlan> {
        let mut contracted = vec![false; topo.coupling_count()];
        for (pi, &ci) in choice.iter().enumerate() {
            for &e in &pair_paths[pi][ci].edges {
                contracted[e] = true;
            }
        }
        for &e in &e_q {
            contracted[e] = true;
        }
        let constraints: Vec<ColorConstraint> = topo
            .couplings()
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| {
                if contracted[e] {
                    ColorConstraint::same(u, v)
                } else {
                    ColorConstraint::differ(u, v)
                }
            })
            .collect();
        let colors = two_color(n, &constraints)?;
        // Check: all of Q in one partition.
        let orient = if let Some(&q0) = involved.first() {
            if involved.iter().any(|&q| colors[q] != colors[q0]) {
                return None;
            }
            colors[q0]
        } else {
            true
        };
        let pulsed: Vec<bool> = colors.iter().map(|&c| c == orient).collect();
        let metrics = cut_metrics(topo, &pulsed);
        Some(SuppressionPlan { pulsed, metrics })
    };

    // Step 2 (Path Relaxing): greedy single-pair relaxation, starting from
    // all-shortest paths, moving while the objective improves.
    let mut choice = vec![0usize; pair_paths.len()];
    if let Some(plan) = evaluate(&choice) {
        if plan.score(alpha) < best.score(alpha) {
            best = plan;
        }
    }
    loop {
        let mut best_step: Option<(usize, SuppressionPlan)> = None;
        for pi in 0..pair_paths.len() {
            if choice[pi] + 1 >= pair_paths[pi].len() {
                continue;
            }
            let mut cand = choice.clone();
            cand[pi] += 1;
            if let Some(plan) = evaluate(&cand) {
                let better_than_step = best_step
                    .as_ref()
                    .map(|(_, p)| plan.score(alpha) < p.score(alpha))
                    .unwrap_or(true);
                if better_than_step {
                    best_step = Some((pi, plan));
                }
            }
        }
        match best_step {
            Some((pi, plan)) if plan.score(alpha) < best.score(alpha) => {
                choice[pi] += 1;
                best = plan;
            }
            _ => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_devices_get_complete_suppression() {
        for topo in [
            Topology::grid(2, 2),
            Topology::grid(3, 4),
            Topology::line(5),
            Topology::ibmq_vigo(),
        ] {
            let plan = alpha_optimal_suppression(&topo, &[], 0.5, 3);
            assert_eq!(plan.metrics.nc, 0, "NC > 0 on {}", topo.name());
            assert_eq!(plan.metrics.nq, 1, "NQ > 1 on {}", topo.name());
            // The plan must be a proper 2-coloring: every edge crosses.
            for &(u, v) in topo.couplings() {
                assert_ne!(plan.pulsed[u], plan.pulsed[v]);
            }
        }
    }

    #[test]
    fn gate_qubits_always_land_in_s() {
        let topo = Topology::grid(3, 4);
        for q_set in [vec![0usize, 1], vec![5, 6], vec![0, 1, 10, 11]] {
            let plan = alpha_optimal_suppression(&topo, &q_set, 0.5, 3);
            for &q in &q_set {
                assert!(plan.pulsed[q], "gate qubit {q} not pulsed");
            }
        }
    }

    #[test]
    fn single_two_qubit_gate_keeps_nc_small() {
        let topo = Topology::grid(3, 4);
        // A gate on the coupling (0, 1): only a couple of couplings can stay
        // unsuppressed.
        let plan = alpha_optimal_suppression(&topo, &[0, 1], 0.5, 3);
        assert!(plan.metrics.nc <= 3, "NC = {}", plan.metrics.nc);
        assert!(plan.metrics.nq <= 4, "NQ = {}", plan.metrics.nq);
    }

    #[test]
    fn line_with_gate_has_single_unsuppressed_coupling() {
        let topo = Topology::line(5);
        let plan = alpha_optimal_suppression(&topo, &[1, 2], 0.5, 3);
        assert_eq!(plan.metrics.nc, 1); // only the gate's own coupling
        assert_eq!(plan.metrics.nq, 2);
    }

    #[test]
    fn non_bipartite_device_trades_nq_for_nc() {
        // On the grid-with-diagonal, α = 0 should minimize NC outright;
        // large α should prefer smaller regions at equal-or-higher NC.
        let topo = Topology::grid_with_diagonal();
        let low = alpha_optimal_suppression(&topo, &[], 0.0, 4);
        let high = alpha_optimal_suppression(&topo, &[], 10.0, 4);
        assert!(low.metrics.nc >= 1, "odd faces force NC ≥ 1");
        assert!(high.metrics.nq <= low.metrics.nq);
        assert!(high.metrics.nc >= low.metrics.nc);
        // The α=0 solution must beat the trivial all-idle cut.
        assert!(low.metrics.nc <= 2);
    }

    #[test]
    fn score_uses_alpha() {
        let plan = SuppressionPlan {
            pulsed: vec![true],
            metrics: CutMetrics {
                nc: 3,
                nq: 2,
                suppressed: vec![],
            },
        };
        assert_eq!(plan.score(0.5), 4.0);
        assert_eq!(plan.flipped().pulsed, vec![false]);
    }

    #[test]
    fn distant_gates_stay_suppressible() {
        // Two far-apart 2q gates on a 3×4 grid should still allow a valid
        // cut with all four qubits in S.
        let topo = Topology::grid(3, 4);
        let plan = alpha_optimal_suppression(&topo, &[0, 1, 10, 11], 0.5, 3);
        for q in [0, 1, 10, 11] {
            assert!(plan.pulsed[q]);
        }
        // Both gate couplings are necessarily unsuppressed; the cut should
        // not add many more.
        assert!(plan.metrics.nc <= 5, "NC = {}", plan.metrics.nc);
    }
}
