//! Algorithm 2: the ZZXSched crosstalk-aware scheduler.
//!
//! Gates are scheduled layer by layer from the schedulable set. Two cases
//! (paper Sec 6):
//!
//! * **Case 1 — only single-qubit gates.** Run α-optimal suppression with no
//!   constraints; on bipartite devices this yields complete suppression. The
//!   side of the cut covering more schedulable gates executes (plus identity
//!   pulses on its remaining qubits); the other side waits one layer.
//! * **Case 2 — two-qubit gates present.** Try to schedule all of them at
//!   once; if the resulting cut violates the suppression requirement `R`,
//!   split by the distance heuristic: the two *closest* gates seed two
//!   groups, remaining gates join by *largest* distance while `R` holds, and
//!   the bigger group executes (Theorem 6.1: the top-K closest pairs always
//!   end up in different layers).

use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_topology::Topology;

use crate::metrics::cut_metrics;
use crate::plan::{DependencyTracker, Layer, SchedulePlan};
use crate::suppression::{alpha_optimal_suppression, SuppressionPlan};

/// Lazily computed single-source BFS distance rows.
///
/// The distance heuristic of Case 2 only ever queries distances between
/// qubits touched by simultaneously-ready two-qubit gates, so materializing
/// the full `O(n²)` matrix up front (as the scheduler previously did) is
/// wasted work and memory on large devices. Rows are computed on first use
/// via [`Topology::distances_from`] and cached for the rest of the schedule.
struct DistanceOracle<'t> {
    topo: &'t Topology,
    /// Cached rows; an empty row means "not yet computed" (a computed row
    /// always has `qubit_count ≥ 1` entries).
    rows: Vec<Vec<usize>>,
    /// Number of `distance` lookups served (reported via [`crate::obs`]).
    queries: u64,
}

impl<'t> DistanceOracle<'t> {
    fn new(topo: &'t Topology) -> Self {
        DistanceOracle {
            topo,
            rows: vec![Vec::new(); topo.qubit_count()],
            queries: 0,
        }
    }

    fn distance(&mut self, a: usize, b: usize) -> usize {
        self.queries += 1;
        if self.rows[a].is_empty() {
            self.rows[a] = self.topo.distances_from(a);
        }
        self.rows[a][b]
    }

    /// The paper's inter-gate distance: the sum of qubit-pair distances.
    fn gate_distance(&mut self, ops: &[NativeOp], a: usize, b: usize) -> usize {
        let (qa, qb) = (ops[a].qubits(), ops[b].qubits());
        qa.iter()
            .map(|&x| qb.iter().map(|&y| self.distance(x, y)).sum::<usize>())
            .sum()
    }

    /// Distance from gate `g` to the nearest member of `group`.
    fn group_distance(&mut self, ops: &[NativeOp], g: usize, group: &[usize]) -> usize {
        group
            .iter()
            .map(|&m| self.gate_distance(ops, g, m))
            .min()
            .unwrap_or(usize::MAX)
    }
}

/// The suppression requirement `R` (paper Sec 6, Setup in Sec 7.3): a cut is
/// acceptable when `NQ < nq_limit` and `NC ≤ nc_limit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requirement {
    /// Exclusive upper bound on `NQ`.
    pub nq_limit: usize,
    /// Inclusive upper bound on `NC`.
    pub nc_limit: usize,
}

impl Requirement {
    /// The paper's setup: `NQ < max_degree(G)` and `NC ≤ |E|/2`.
    pub fn paper_default(topo: &Topology) -> Self {
        Requirement {
            nq_limit: topo.max_degree(),
            nc_limit: topo.coupling_count() / 2,
        }
    }

    /// Checks a plan against the requirement.
    pub fn satisfied_by(&self, plan: &SuppressionPlan) -> bool {
        plan.metrics.nq < self.nq_limit && plan.metrics.nc <= self.nc_limit
    }
}

/// Configuration of ZZXSched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZzxConfig {
    /// NQ-vs-NC weight of the α-optimal suppression objective.
    pub alpha: f64,
    /// Number of shortest dual paths per matched pair (Path Relaxing).
    pub k: usize,
    /// Suppression requirement for simultaneous two-qubit gates.
    pub requirement: Requirement,
}

impl ZzxConfig {
    /// The paper's evaluation parameters: `α = 0.5`, `k = 3`, `R` as in
    /// [`Requirement::paper_default`].
    pub fn paper_default(topo: &Topology) -> Self {
        ZzxConfig {
            alpha: 0.5,
            k: 3,
            requirement: Requirement::paper_default(topo),
        }
    }
}

/// Schedules `circuit` with the ZZ-aware policy (Algorithm 2).
///
/// # Panics
///
/// Panics if the circuit uses more qubits than the device has.
///
/// # Example
///
/// ```
/// use zz_circuit::native::{NativeCircuit, NativeOp};
/// use zz_sched::zzx::{zzx_schedule, ZzxConfig};
/// use zz_topology::Topology;
///
/// let topo = Topology::grid(3, 4);
/// let mut c = NativeCircuit::new(12);
/// for q in 0..12 { c.push(NativeOp::X90 { qubit: q }); }
/// let plan = zzx_schedule(&topo, &c, &ZzxConfig::paper_default(&topo));
/// // Single-qubit gates split over the two bipartition classes: 2 layers,
/// // each with complete suppression.
/// assert_eq!(plan.layer_count(), 2);
/// assert!(plan.layers.iter().all(|l| l.metrics.nc == 0));
/// ```
pub fn zzx_schedule(topo: &Topology, circuit: &NativeCircuit, config: &ZzxConfig) -> SchedulePlan {
    assert!(
        circuit.qubit_count() <= topo.qubit_count(),
        "circuit does not fit on the device"
    );
    let n = topo.qubit_count();
    let mut oracle = DistanceOracle::new(topo);
    let mut plan = SchedulePlan::new(n);
    let mut tracker = DependencyTracker::new(circuit);

    loop {
        let rz = tracker.flush_rz();
        let ready = tracker.ready_physical();
        if ready.is_empty() {
            plan.final_rz = rz;
            break;
        }
        let ops: Vec<NativeOp> = ready.iter().map(|&i| tracker.circuit().ops()[i]).collect();
        let two_q: Vec<usize> = (0..ops.len())
            .filter(|&j| matches!(ops[j], NativeOp::Zx90 { .. }))
            .collect();

        // Decide the cut and which ready ops execute.
        let (suppression, selected) = if two_q.is_empty() {
            schedule_case1(topo, config, &ops)
        } else {
            schedule_case2(topo, config, &ops, &two_q, &mut oracle)
        };

        // Identity supplementation (paper: qubits in S not involved in any
        // schedulable gate get identity pulses).
        let sg_qubits = {
            let mut v = vec![false; n];
            for op in &ops {
                for q in op.qubits() {
                    v[q] = true;
                }
            }
            v
        };
        let mut layer_ops: Vec<NativeOp> = selected.iter().map(|&j| ops[j]).collect();
        for (q, &has_gate) in sg_qubits.iter().enumerate() {
            if suppression.pulsed[q] && !has_gate {
                layer_ops.push(NativeOp::Id { qubit: q });
            }
        }

        // Actual per-qubit status (differs from the intended cut on S-qubits
        // whose gates were deferred) and the metrics that follow from it.
        let mut pulsed = vec![false; n];
        for op in &layer_ops {
            for q in op.qubits() {
                pulsed[q] = true;
            }
        }
        let metrics = cut_metrics(topo, &pulsed);

        debug_assert!(!selected.is_empty(), "every layer must make progress");
        for &j in &selected {
            tracker.take_physical(ready[j]);
        }
        plan.layers.push(Layer {
            rz_before: rz,
            ops: layer_ops,
            pulsed,
            metrics,
        });
    }
    debug_assert_eq!(tracker.remaining(), 0, "all ops scheduled");
    debug_assert!(plan.validate().is_ok());
    crate::obs::record_distance_queries(oracle.queries);
    plan
}

/// Case 1: only single-qubit gates are schedulable.
fn schedule_case1(
    topo: &Topology,
    config: &ZzxConfig,
    ops: &[NativeOp],
) -> (SuppressionPlan, Vec<usize>) {
    let sp = alpha_optimal_suppression(topo, &[], config.alpha, config.k);
    // Orient the cut so S covers more schedulable gates.
    let count = |pulsed: &[bool]| {
        ops.iter()
            .filter(|op| op.qubits().iter().all(|&q| pulsed[q]))
            .count()
    };
    let sp = {
        let flipped = sp.flipped();
        if count(&flipped.pulsed) > count(&sp.pulsed) {
            flipped
        } else {
            sp
        }
    };
    let selected: Vec<usize> = (0..ops.len())
        .filter(|&j| ops[j].qubits().iter().all(|&q| sp.pulsed[q]))
        .collect();
    (sp, selected)
}

/// Case 2: two-qubit gates are present (`TwoQSchedule` + `Schedule`).
fn schedule_case2(
    topo: &Topology,
    config: &ZzxConfig,
    ops: &[NativeOp],
    two_q: &[usize],
    oracle: &mut DistanceOracle<'_>,
) -> (SuppressionPlan, Vec<usize>) {
    let qubits_of = |group: &[usize]| -> Vec<usize> {
        let mut v: Vec<usize> = group.iter().flat_map(|&j| ops[j].qubits()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    // Try scheduling every two-qubit gate simultaneously.
    let sp_all = alpha_optimal_suppression(topo, &qubits_of(two_q), config.alpha, config.k);
    let chosen_2q: Vec<usize>;
    let sp: SuppressionPlan;
    if config.requirement.satisfied_by(&sp_all) || two_q.len() == 1 {
        chosen_2q = two_q.to_vec();
        sp = sp_all;
    } else {
        // Distance heuristic: separate the two closest gates, grow greedily
        // by largest distance while the requirement holds.
        let (mut seed_a, mut seed_b, mut best_d) = (two_q[0], two_q[1], usize::MAX);
        for (i, &a) in two_q.iter().enumerate() {
            for &b in &two_q[i + 1..] {
                let d = oracle.gate_distance(ops, a, b);
                if d < best_d {
                    best_d = d;
                    seed_a = a;
                    seed_b = b;
                }
            }
        }
        let mut group_a = vec![seed_a];
        let mut group_b = vec![seed_b];
        let mut pool: Vec<usize> = two_q
            .iter()
            .copied()
            .filter(|&g| g != seed_a && g != seed_b)
            .collect();
        while !pool.is_empty() {
            // The (gate, group) pair with the maximum distance.
            let mut best: Option<(usize, bool, usize)> = None; // (pool idx, to_a, d)
            for (pi, &g) in pool.iter().enumerate() {
                for to_a in [true, false] {
                    let d = oracle.group_distance(ops, g, if to_a { &group_a } else { &group_b });
                    if best.map(|(_, _, bd)| d > bd).unwrap_or(true) {
                        best = Some((pi, to_a, d));
                    }
                }
            }
            let (pi, to_a, _) = best.expect("pool is non-empty");
            let g = pool[pi];
            let target: Vec<usize> = if to_a {
                group_a.iter().chain([&g]).copied().collect()
            } else {
                group_b.iter().chain([&g]).copied().collect()
            };
            let sp_try =
                alpha_optimal_suppression(topo, &qubits_of(&target), config.alpha, config.k);
            if config.requirement.satisfied_by(&sp_try) {
                if to_a {
                    group_a.push(g);
                } else {
                    group_b.push(g);
                }
                pool.swap_remove(pi);
            } else {
                break;
            }
        }
        let m = if group_a.len() >= group_b.len() {
            group_a
        } else {
            group_b
        };
        sp = alpha_optimal_suppression(topo, &qubits_of(&m), config.alpha, config.k);
        chosen_2q = m;
    }

    // Schedule procedure: the chosen two-qubit gates plus every schedulable
    // single-qubit gate lying in S.
    let mut selected = chosen_2q;
    for (j, op) in ops.iter().enumerate() {
        if matches!(op, NativeOp::Zx90 { .. }) {
            continue;
        }
        if op.qubits().iter().all(|&q| sp.pulsed[q]) {
            selected.push(j);
        }
    }
    selected.sort_unstable();
    selected.dedup();
    (sp, selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::native::compile_to_native;
    use zz_circuit::{route, Circuit, Gate};
    use zz_quantum::gates::equal_up_to_phase;

    fn compile_on(topo: &Topology, c: &Circuit) -> NativeCircuit {
        compile_to_native(&route(c, topo))
    }

    #[test]
    fn single_qubit_layers_get_complete_suppression_on_grid() {
        let topo = Topology::grid(3, 4);
        let mut c = Circuit::new(12);
        for q in 0..12 {
            c.push(Gate::Rx(std::f64::consts::FRAC_PI_2), &[q]);
        }
        let native = compile_on(&topo, &c);
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        for layer in &plan.layers {
            assert_eq!(layer.metrics.nc, 0, "1q layer must be fully suppressed");
            assert_eq!(layer.metrics.nq, 1);
        }
    }

    #[test]
    fn preserves_the_circuit_unitary() {
        let topo = Topology::grid(2, 3);
        let mut c = Circuit::new(6);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 1])
            .push(Gate::Cnot, &[2, 5])
            .push(Gate::T, &[3])
            .push(Gate::Cnot, &[3, 4])
            .push(Gate::H, &[5]);
        let native = compile_on(&topo, &c);
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(plan.validate().is_ok());
        assert!(
            equal_up_to_phase(&plan.unitary(), &native.unitary(), 1e-9),
            "ZZXSched must preserve the computation"
        );
    }

    #[test]
    fn identity_supplementation_happens() {
        let topo = Topology::grid(3, 4);
        let mut c = Circuit::new(12);
        c.push(Gate::Rx(1.0), &[5]);
        let native = compile_on(&topo, &c);
        let plan = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(
            plan.identity_count() > 0,
            "idle qubits must receive identity pulses"
        );
    }

    #[test]
    fn mean_nc_beats_parsched() {
        let topo = Topology::grid(3, 4);
        let c = zz_circuit::bench::generate(zz_circuit::bench::BenchmarkKind::Qaoa, 8, 3);
        let native = compile_on(&topo, &c);
        let par = crate::parsched::par_schedule(&topo, &native);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(
            zzx.mean_nc() < par.mean_nc(),
            "zzx {} !< par {}",
            zzx.mean_nc(),
            par.mean_nc()
        );
        assert!(zzx.validate().is_ok());
    }

    #[test]
    fn benchmark_schedule_preserves_unitary_small_device() {
        // The dense-unitary equivalence check is exponential in qubits, so
        // it runs on a 6-qubit device here (the 12-qubit case is covered by
        // statevector-level tests in zz-sim).
        let topo = Topology::grid(2, 3);
        let c = zz_circuit::bench::generate(zz_circuit::bench::BenchmarkKind::Qaoa, 5, 3);
        let native = compile_on(&topo, &c);
        let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
        assert!(
            equal_up_to_phase(&zzx.unitary(), &native.unitary(), 1e-7),
            "benchmark schedule must preserve the computation"
        );
    }

    #[test]
    fn close_two_qubit_gates_are_separated() {
        // Three parallel CNOTs as in the paper's Figure 13/15: the two
        // closest must end in different layers when R forces a split.
        let topo = Topology::grid(3, 3);
        let mut c = NativeCircuit::new(9);
        // Gates on couplings (0,3), (4,1), (2,5) — paper's CNOT1,4 CNOT5,2
        // CNOT3,6 in 1-indexed row-major labels.
        c.push(NativeOp::Zx90 {
            control: 0,
            target: 3,
        });
        c.push(NativeOp::Zx90 {
            control: 4,
            target: 1,
        });
        c.push(NativeOp::Zx90 {
            control: 2,
            target: 5,
        });
        let tight = ZzxConfig {
            alpha: 0.5,
            k: 3,
            requirement: Requirement {
                nq_limit: 3,
                nc_limit: 4,
            },
        };
        let plan = zzx_schedule(&topo, &c, &tight);
        assert!(plan.layer_count() >= 2, "requirement must force a split");
        // Find which layer each gate landed in.
        let layer_of = |ctrl: usize| -> usize {
            plan.layers
                .iter()
                .position(|l| {
                    l.ops
                        .iter()
                        .any(|op| matches!(op, NativeOp::Zx90 { control, .. } if *control == ctrl))
                })
                .expect("gate scheduled")
        };
        // Gates (0,3) and (4,1) are the closest pair; they must differ.
        assert_ne!(layer_of(0), layer_of(4));
    }

    #[test]
    fn requirement_paper_default_values() {
        let topo = Topology::grid(3, 4);
        let r = Requirement::paper_default(&topo);
        assert_eq!(r.nq_limit, 4);
        assert_eq!(r.nc_limit, 8);
    }
}
