//! ZZ-aware scheduling: α-optimal suppression and the ZZXSched scheduler.
//!
//! This crate implements the scheduling half of the paper's co-optimization:
//!
//! * [`metrics`] — the `NQ`/`NC` suppression metrics of a qubit-status cut,
//! * [`suppression`] — **Algorithm 1**: α-optimal suppression on planar
//!   topologies via odd-vertex pairings in the dual graph (Delete Edges →
//!   Vertex Matching → Path Relaxing → Add Edges → Cut Inducing → Check),
//! * [`plan`] — scheduled layers with per-layer qubit status and durations,
//! * [`zzx`] — **Algorithm 2**: the complete ZZXSched scheduler with the
//!   Case-1 (single-qubit, complete suppression on bipartite devices) and
//!   Case-2 (two-qubit distance heuristic) strategies,
//! * [`parsched`] — the maximal-parallelism ASAP baseline used by current
//!   compilers (the paper's `ParSched`).
//!
//! # Example
//!
//! ```
//! use zz_circuit::{Circuit, Gate, native::compile_to_native, route};
//! use zz_sched::{zzx::{zzx_schedule, ZzxConfig}, parsched::par_schedule};
//! use zz_topology::Topology;
//!
//! let topo = Topology::grid(2, 3);
//! let mut c = Circuit::new(6);
//! for q in 0..6 { c.push(Gate::H, &[q]); }
//! let native = compile_to_native(&route(&c, &topo));
//!
//! let par = par_schedule(&topo, &native);
//! let zzx = zzx_schedule(&topo, &native, &ZzxConfig::paper_default(&topo));
//! // ZZXSched trades parallelism (more layers) for suppression (lower NC).
//! assert!(zzx.layer_count() >= par.layer_count());
//! assert!(zzx.mean_nc() <= par.mean_nc());
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod obs;
pub mod parsched;
pub mod plan;
pub mod render;
pub mod suppression;
pub mod zzx;

pub use metrics::{cut_metrics, CutMetrics};
pub use obs::{register_sink, sched_totals, SchedSink, SchedTotals};
pub use plan::{GateDurations, Layer, PlanSummary, SchedulePlan};
pub use render::{render_plan, summarize_plan};
pub use suppression::{alpha_optimal_suppression, SuppressionPlan};
pub use zzx::{zzx_schedule, Requirement, ZzxConfig};

pub use parsched::par_schedule;
