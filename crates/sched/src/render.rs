//! ASCII rendering of schedule plans.
//!
//! A quick way to *see* what the scheduler did: one row per qubit, one
//! column per layer, with the pulse kind in each cell. Used by the examples
//! and handy in tests and debugging sessions.

use zz_circuit::native::NativeOp;

use crate::plan::SchedulePlan;

/// Renders a plan as an ASCII timeline.
///
/// Cell legend: `X` = X90, `C`/`T` = ZX90 control/target, `I` = identity
/// pulse, `.` = idle. Virtual rotations are not shown (they take no time).
///
/// # Example
///
/// ```
/// use zz_circuit::native::{NativeCircuit, NativeOp};
/// use zz_sched::{par_schedule, render_plan};
/// use zz_topology::Topology;
///
/// let mut c = NativeCircuit::new(2);
/// c.push(NativeOp::X90 { qubit: 0 });
/// c.push(NativeOp::Zx90 { control: 0, target: 1 });
/// let plan = par_schedule(&Topology::line(2), &c);
/// let art = render_plan(&plan);
/// assert!(art.contains("q0 | X C"));
/// assert!(art.contains("q1 | . T"));
/// ```
pub fn render_plan(plan: &SchedulePlan) -> String {
    let n = plan.qubit_count();
    let mut rows: Vec<Vec<char>> = vec![Vec::with_capacity(plan.layer_count()); n];
    for layer in &plan.layers {
        let mut cells = vec!['.'; n];
        for op in &layer.ops {
            match *op {
                NativeOp::X90 { qubit } => cells[qubit] = 'X',
                NativeOp::Id { qubit } => cells[qubit] = 'I',
                NativeOp::Zx90 { control, target } => {
                    cells[control] = 'C';
                    cells[target] = 'T';
                }
                NativeOp::Rz { .. } => {}
            }
        }
        for (q, &c) in cells.iter().enumerate() {
            rows[q].push(c);
        }
    }
    let mut out = String::new();
    let width = (n as f64).log10().floor() as usize + 1;
    for (q, row) in rows.iter().enumerate() {
        out.push_str(&format!("q{q:<width$} |"));
        for &c in row {
            out.push(' ');
            out.push(c);
        }
        out.push('\n');
    }
    out
}

/// One-line summary of a plan: layer count, identity count, mean metrics.
pub fn summarize_plan(plan: &SchedulePlan) -> String {
    format!(
        "{} layers, {} identity pulses, mean NC {:.2}, mean NQ {:.2}",
        plan.layer_count(),
        plan.identity_count(),
        plan.mean_nc(),
        plan.mean_nq()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsched::par_schedule;
    use crate::zzx::{zzx_schedule, ZzxConfig};
    use zz_circuit::native::NativeCircuit;
    use zz_topology::Topology;

    #[test]
    fn renders_identities_and_gates() {
        let topo = Topology::grid(2, 2);
        let mut c = NativeCircuit::new(4);
        c.push(NativeOp::X90 { qubit: 0 });
        let plan = zzx_schedule(&topo, &c, &ZzxConfig::paper_default(&topo));
        let art = render_plan(&plan);
        assert!(art.contains('X'));
        assert!(
            art.contains('I'),
            "identity supplementation must show: \n{art}"
        );
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    fn summary_contains_the_numbers() {
        let topo = Topology::line(2);
        let mut c = NativeCircuit::new(2);
        c.push(NativeOp::X90 { qubit: 1 });
        let plan = par_schedule(&topo, &c);
        let s = summarize_plan(&plan);
        assert!(s.contains("1 layers"));
        assert!(s.contains("0 identity"));
    }

    #[test]
    fn idle_cells_are_dots() {
        let topo = Topology::line(3);
        let mut c = NativeCircuit::new(3);
        c.push(NativeOp::X90 { qubit: 1 });
        let plan = par_schedule(&topo, &c);
        let art = render_plan(&plan);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].ends_with('.'));
        assert!(lines[1].ends_with('X'));
        assert!(lines[2].ends_with('.'));
    }
}
