//! Scheduler-side instrumentation hooks.
//!
//! `zz_sched` sits below `zz_obs` in the crate graph, so — like the
//! simulation engine (`zz_sim::metrics`) — it cannot register counters
//! into an observability registry directly. It exposes the same two-part
//! pattern instead:
//!
//! * **process-wide totals** — a std-only atomic counter, readable via
//!   [`sched_totals`] with no upstream dependency, and
//! * a [`SchedSink`] trait — upstream layers (the service session)
//!   install sinks via [`register_sink`] and receive one event per
//!   scheduled circuit. A sink returns `false` once its backing registry
//!   is gone and is pruned on the next flush.
//!
//! Recording is coarse: one flush per *schedule* (a whole circuit), never
//! per distance lookup, so instrumentation stays out of the hot loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Receiver for scheduler events. Implementations must be cheap and
/// lock-light; they are called at the end of each scheduling run.
///
/// Each method returns whether the sink is still alive — a `false`
/// drops it from the registered set.
pub trait SchedSink: Send + Sync {
    /// One circuit finished scheduling; its distance heuristic served
    /// `queries` qubit-pair distance lookups (0 when Case 2 never ran).
    fn distance_queries(&self, queries: u64) -> bool;
}

/// Running totals since process start (see [`sched_totals`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedTotals {
    /// Qubit-pair distance lookups served by the lazy distance oracle.
    pub distance_queries: u64,
    /// Scheduling runs that flushed their counters.
    pub schedules: u64,
}

static DISTANCE_QUERIES: AtomicU64 = AtomicU64::new(0);
static SCHEDULES: AtomicU64 = AtomicU64::new(0);

fn sinks() -> &'static Mutex<Vec<Arc<dyn SchedSink>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<dyn SchedSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs a sink that will receive scheduler events until it reports
/// itself dead (see [`SchedSink`]).
pub fn register_sink(sink: Arc<dyn SchedSink>) {
    sinks()
        .lock()
        .expect("sched sink registry poisoned")
        .push(sink);
}

/// Process-wide scheduler totals. Always available — no observability
/// stack required — which keeps scheduler tests dependency-free.
pub fn sched_totals() -> SchedTotals {
    SchedTotals {
        distance_queries: DISTANCE_QUERIES.load(Ordering::Relaxed),
        schedules: SCHEDULES.load(Ordering::Relaxed),
    }
}

/// Records one finished scheduling run and flushes it to the sinks.
pub(crate) fn record_distance_queries(queries: u64) {
    DISTANCE_QUERIES.fetch_add(queries, Ordering::Relaxed);
    SCHEDULES.fetch_add(1, Ordering::Relaxed);
    let mut sinks = sinks().lock().expect("sched sink registry poisoned");
    sinks.retain(|s| s.distance_queries(queries));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        queries: AtomicU64,
        alive: std::sync::atomic::AtomicBool,
    }

    impl SchedSink for Probe {
        fn distance_queries(&self, queries: u64) -> bool {
            self.queries.fetch_add(queries, Ordering::Relaxed);
            self.alive.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn sinks_receive_events_and_dead_sinks_are_pruned() {
        let probe = Arc::new(Probe {
            queries: AtomicU64::new(0),
            alive: std::sync::atomic::AtomicBool::new(true),
        });
        register_sink(probe.clone());

        let before = sched_totals();
        record_distance_queries(7);
        let after = sched_totals();

        assert!(probe.queries.load(Ordering::Relaxed) >= 7);
        assert!(after.distance_queries >= before.distance_queries + 7);
        assert!(after.schedules > before.schedules);

        // Kill the probe: the next flush must prune it.
        probe.alive.store(false, Ordering::Relaxed);
        record_distance_queries(1);
        let count = probe.queries.load(Ordering::Relaxed);
        record_distance_queries(1);
        assert_eq!(probe.queries.load(Ordering::Relaxed), count);
    }
}
