//! The `NQ`/`NC` suppression metrics of a qubit-status assignment.
//!
//! Given a layer, each qubit either has a pulse applied (set `S`) or not
//! (set `T`); this status assignment is a cut of the topology. Crosstalk on
//! couplings *across* the cut is suppressed by the ZZ-optimized pulses;
//! couplings *within* either side keep their full crosstalk. The paper
//! quantifies the residue with two metrics (Sec 2.1):
//!
//! * `NC` — number of couplings with unsuppressed crosstalk (edges whose
//!   endpoints share a status),
//! * `NQ` — number of qubits in the largest *region* (connected component
//!   of same-status qubits), which bounds the weight of correlated errors.

use zz_topology::Topology;

/// Metrics of a status cut, plus the classification used by the error model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutMetrics {
    /// Number of couplings with unsuppressed crosstalk (`NC`).
    pub nc: usize,
    /// Qubit count of the largest same-status region (`NQ`).
    pub nq: usize,
    /// For each coupling (by edge id): `true` if its crosstalk is suppressed
    /// (endpoints have different status).
    pub suppressed: Vec<bool>,
}

/// Computes [`CutMetrics`] for a per-qubit pulse status vector.
///
/// # Panics
///
/// Panics if `pulsed.len() != topo.qubit_count()`.
///
/// # Example
///
/// ```
/// use zz_sched::cut_metrics;
/// use zz_topology::Topology;
///
/// let topo = Topology::grid(2, 2);
/// // Pulsing a bipartition class of a grid suppresses every coupling.
/// let m = cut_metrics(&topo, &[true, false, false, true]);
/// assert_eq!(m.nc, 0);
/// assert_eq!(m.nq, 1);
/// ```
pub fn cut_metrics(topo: &Topology, pulsed: &[bool]) -> CutMetrics {
    assert_eq!(
        pulsed.len(),
        topo.qubit_count(),
        "status vector must cover every qubit"
    );
    let mut suppressed = Vec::with_capacity(topo.coupling_count());
    let mut remaining = Vec::new();
    for &(u, v) in topo.couplings() {
        let cross = pulsed[u] != pulsed[v];
        suppressed.push(cross);
        if !cross {
            remaining.push((u, v));
        }
    }
    let nc = remaining.len();
    let nq = zz_graph::largest_component_size(topo.qubit_count(), &remaining);
    CutMetrics { nc, nq, suppressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_idle_is_one_big_region() {
        let topo = Topology::grid(3, 4);
        let m = cut_metrics(&topo, &[false; 12]);
        assert_eq!(m.nc, 17);
        assert_eq!(m.nq, 12);
        assert!(m.suppressed.iter().all(|&s| !s));
    }

    #[test]
    fn bipartition_of_grid_suppresses_everything() {
        let topo = Topology::grid(3, 4);
        let pulsed: Vec<bool> = (0..12).map(|q| (q / 4 + q % 4) % 2 == 0).collect();
        let m = cut_metrics(&topo, &pulsed);
        assert_eq!(m.nc, 0);
        assert_eq!(m.nq, 1);
    }

    #[test]
    fn single_pulsed_qubit() {
        let topo = Topology::line(4);
        // Pulse only qubit 1: couplings 0-1, 1-2 suppressed; 2-3 not.
        let m = cut_metrics(&topo, &[false, true, false, false]);
        assert_eq!(m.nc, 1);
        assert_eq!(m.nq, 2); // region {2, 3}
        assert_eq!(m.suppressed, vec![true, true, false]);
    }

    #[test]
    fn motivating_example_figure3b() {
        // Paper Fig 3(b): 5×3 grid, CNOT on (7,8)→indices(6,7), H on 9,10→(8,9)
        // executed as one layer, no identities: NQ = 11, NC = 13.
        let topo = Topology::grid(3, 5);
        // Paper numbers qubits 1..15 row-major on a 5-wide grid.
        let mut pulsed = vec![false; 15];
        for q in [6, 7, 8, 9] {
            pulsed[q] = true;
        }
        let m = cut_metrics(&topo, &pulsed);
        assert_eq!(m.nq, 11);
        assert_eq!(m.nc, 13);
    }

    #[test]
    fn motivating_example_figure3c_plan_a() {
        // Plan A adds identity gates on qubits 1 and 11 → indices 0 and 10:
        // NQ = 4, NC = 9.
        let topo = Topology::grid(3, 5);
        let mut pulsed = vec![false; 15];
        for q in [6, 7, 8, 9, 0, 10] {
            pulsed[q] = true;
        }
        let m = cut_metrics(&topo, &pulsed);
        assert_eq!(m.nq, 4);
        assert_eq!(m.nc, 9);
    }

    #[test]
    fn motivating_example_figure3c_plan_b() {
        // Plan B: identities on 1, 11, 3, 13 → indices 0, 10, 2, 12:
        // NQ = 6, NC = 7.
        let topo = Topology::grid(3, 5);
        let mut pulsed = vec![false; 15];
        for q in [6, 7, 8, 9, 0, 10, 2, 12] {
            pulsed[q] = true;
        }
        let m = cut_metrics(&topo, &pulsed);
        assert_eq!(m.nq, 6);
        assert_eq!(m.nc, 7);
    }
}
