//! Quantum circuit IR, native-gate compilation, routing, and benchmarks.
//!
//! The pipeline mirrors a NISQ compiler front-end:
//!
//! 1. [`Circuit`] — logical circuits over standard gates ([`Gate`]),
//! 2. [`route`] — SWAP insertion so every two-qubit gate acts on a coupled
//!    pair of a [`zz_topology::Topology`],
//! 3. [`native`] — compilation to the IBMQ-style native set
//!    `{Rz(θ) (virtual), X90, ZX90, I}` used by the paper,
//! 4. [`mod@bench`] — the six benchmark families of the paper's evaluation
//!    (Hidden Shift, QFT, QPE, QAOA, Ising, GRC) plus Quantum Volume.
//!
//! # Example
//!
//! ```
//! use zz_circuit::{Circuit, Gate};
//! use zz_circuit::native::compile_to_native;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H, &[0]);
//! c.push(Gate::Cnot, &[0, 1]);
//! let native = compile_to_native(&c);
//! // The compiled circuit implements the same unitary (up to global phase).
//! assert!(zz_quantum::gates::equal_up_to_phase(
//!     &c.unitary(), &native.unitary(), 1e-9,
//! ));
//! ```

#![warn(missing_docs)]

pub mod bench;
mod circuit;
mod gate;
pub mod native;
pub mod qasm;
mod route;

pub use circuit::{Circuit, Op};
pub use gate::Gate;
pub use route::{route, try_route, try_route_with, RouteError};
