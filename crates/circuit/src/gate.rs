//! Logical gates.

use std::fmt;

use zz_linalg::Matrix;
use zz_quantum::gates;

/// A logical (pre-compilation) quantum gate.
///
/// Angles are in radians. Two-qubit gates take their qubits in the order
/// given to [`crate::Circuit::push`]; for [`Gate::Cnot`] the first qubit is
/// the control.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate `S`.
    S,
    /// Inverse phase gate `S†`.
    Sdg,
    /// T gate.
    T,
    /// Inverse T gate.
    Tdg,
    /// X rotation.
    Rx(f64),
    /// Y rotation.
    Ry(f64),
    /// Z rotation.
    Rz(f64),
    /// Diagonal phase `diag(1, e^{iθ})`.
    Phase(f64),
    /// General single-qubit gate (OpenQASM `u3` convention).
    U3(f64, f64, f64),
    /// Controlled-NOT (control first).
    Cnot,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase (symmetric).
    CPhase(f64),
    /// ZZ rotation `exp(−i θ/2 Z⊗Z)` (symmetric).
    Rzz(f64),
    /// SWAP.
    Swap,
    /// `√X` (Google random-circuit gate).
    SqrtX,
    /// `√Y` (Google random-circuit gate).
    SqrtY,
    /// `√W` where `W = (X+Y)/√2` (Google random-circuit gate).
    SqrtW,
}

impl Gate {
    /// Number of qubits this gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..)
            | Gate::SqrtX
            | Gate::SqrtY
            | Gate::SqrtW => 1,
            Gate::Cnot | Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) | Gate::Swap => 2,
        }
    }

    /// The gate's unitary matrix (`2×2` or `4×4`).
    pub fn matrix(self) -> Matrix {
        match self {
            Gate::H => gates::h(),
            Gate::X => gates::x(),
            Gate::Y => gates::y(),
            Gate::Z => gates::z(),
            Gate::S => gates::s(),
            Gate::Sdg => gates::sdg(),
            Gate::T => gates::t(),
            Gate::Tdg => gates::tdg(),
            Gate::Rx(t) => gates::rx(t),
            Gate::Ry(t) => gates::ry(t),
            Gate::Rz(t) => gates::rz(t),
            Gate::Phase(t) => gates::phase(t),
            Gate::U3(t, p, l) => gates::u3(t, p, l),
            Gate::Cnot => gates::cnot(),
            Gate::Cz => gates::cz(),
            Gate::CPhase(t) => gates::cphase(t),
            Gate::Rzz(t) => gates::rzz(t),
            Gate::Swap => gates::swap(),
            Gate::SqrtX => gates::sqrt_x(),
            Gate::SqrtY => gates::sqrt_y(),
            Gate::SqrtW => gates::sqrt_w(),
        }
    }

    /// Returns `true` for gates that are symmetric in their two qubits.
    pub fn is_symmetric_two_qubit(self) -> bool {
        matches!(self, Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) | Gate::Swap)
    }

    /// Decomposes the gate into a variant tag plus its angle parameters
    /// (padded; only the first `count` entries are meaningful), for
    /// structural hashing ([`crate::Circuit::content_digest`]) without
    /// heap allocation.
    pub(crate) fn digest_parts(self) -> (u64, [f64; 3], usize) {
        match self {
            Gate::H => (0, [0.0; 3], 0),
            Gate::X => (1, [0.0; 3], 0),
            Gate::Y => (2, [0.0; 3], 0),
            Gate::Z => (3, [0.0; 3], 0),
            Gate::S => (4, [0.0; 3], 0),
            Gate::Sdg => (5, [0.0; 3], 0),
            Gate::T => (6, [0.0; 3], 0),
            Gate::Tdg => (7, [0.0; 3], 0),
            Gate::Rx(t) => (8, [t, 0.0, 0.0], 1),
            Gate::Ry(t) => (9, [t, 0.0, 0.0], 1),
            Gate::Rz(t) => (10, [t, 0.0, 0.0], 1),
            Gate::Phase(t) => (11, [t, 0.0, 0.0], 1),
            Gate::U3(t, p, l) => (12, [t, p, l], 3),
            Gate::Cnot => (13, [0.0; 3], 0),
            Gate::Cz => (14, [0.0; 3], 0),
            Gate::CPhase(t) => (15, [t, 0.0, 0.0], 1),
            Gate::Rzz(t) => (16, [t, 0.0, 0.0], 1),
            Gate::Swap => (17, [0.0; 3], 0),
            Gate::SqrtX => (18, [0.0; 3], 0),
            Gate::SqrtY => (19, [0.0; 3], 0),
            Gate::SqrtW => (20, [0.0; 3], 0),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) => write!(f, "Rx({t:.4})"),
            Gate::Ry(t) => write!(f, "Ry({t:.4})"),
            Gate::Rz(t) => write!(f, "Rz({t:.4})"),
            Gate::Phase(t) => write!(f, "P({t:.4})"),
            Gate::U3(t, p, l) => write!(f, "U3({t:.4},{p:.4},{l:.4})"),
            Gate::CPhase(t) => write!(f, "CP({t:.4})"),
            Gate::Rzz(t) => write!(f, "Rzz({t:.4})"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_matrix_dimension() {
        for g in [
            Gate::H,
            Gate::Rz(0.3),
            Gate::U3(1.0, 0.2, -0.4),
            Gate::Cnot,
            Gate::Rzz(0.7),
            Gate::SqrtW,
        ] {
            assert_eq!(g.matrix().rows(), 1 << g.arity());
        }
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.5),
            Gate::Ry(-1.2),
            Gate::Rz(2.2),
            Gate::Phase(0.8),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(1.5),
            Gate::Rzz(-0.9),
            Gate::Swap,
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::SqrtW,
        ] {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn symmetric_marker() {
        assert!(Gate::Cz.is_symmetric_two_qubit());
        assert!(!Gate::Cnot.is_symmetric_two_qubit());
    }
}
