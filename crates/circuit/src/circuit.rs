//! Logical circuits.

use std::fmt;

use zz_linalg::Matrix;
use zz_quantum::embed;

use crate::Gate;

/// One gate application: a [`Gate`] plus the qubits it acts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// The applied gate.
    pub gate: Gate,
    /// Target qubits (length = `gate.arity()`); for [`Gate::Cnot`] the first
    /// entry is the control.
    pub qubits: Vec<usize>,
}

/// A logical quantum circuit: an ordered list of gate applications on
/// `qubit_count` qubits.
///
/// # Example
///
/// ```
/// use zz_circuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H, &[0]);
/// bell.push(Gate::Cnot, &[0, 1]);
/// assert_eq!(bell.ops().len(), 2);
/// assert_eq!(bell.two_qubit_gate_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    qubit_count: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `qubit_count` qubits.
    pub fn new(qubit_count: usize) -> Self {
        Circuit {
            qubit_count,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// The gate applications in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the qubit list length does not match the gate arity, if any
    /// qubit is out of range, or if a two-qubit gate repeats a qubit.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} qubit(s), got {}",
            gate.arity(),
            qubits.len()
        );
        for &q in qubits {
            assert!(q < self.qubit_count, "qubit {q} out of range");
        }
        if qubits.len() == 2 {
            assert_ne!(
                qubits[0], qubits[1],
                "two-qubit gate requires distinct qubits"
            );
        }
        self.ops.push(Op {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Appends every op of `other` (qubit counts must match).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.qubit_count, other.qubit_count, "qubit count mismatch");
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.arity() == 2).count()
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Circuit depth: the length of the longest per-qubit dependency chain
    /// (every gate counts 1, regardless of arity).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.qubit_count];
        for op in &self.ops {
            let level = 1 + op.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            for &q in &op.qubits {
                frontier[q] = level;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// A 64-bit structural digest of the circuit: qubit count, gate kinds,
    /// exact angle bits, and qubit operands, in program order.
    ///
    /// Two circuits have equal digests exactly when they are structurally
    /// identical (up to the vanishing probability of an FNV collision), so
    /// the digest can key compilation caches — structurally identical
    /// circuits route and translate identically.
    ///
    /// # Example
    ///
    /// ```
    /// use zz_circuit::{Circuit, Gate};
    ///
    /// let mut a = Circuit::new(2);
    /// a.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
    /// let mut b = Circuit::new(2);
    /// b.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
    /// assert_eq!(a.content_digest(), b.content_digest());
    /// b.push(Gate::X, &[1]);
    /// assert_ne!(a.content_digest(), b.content_digest());
    /// ```
    pub fn content_digest(&self) -> u64 {
        // FNV-1a over the op stream.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.qubit_count as u64);
        for op in &self.ops {
            let (kind, params, count) = op.gate.digest_parts();
            mix(kind);
            for p in &params[..count] {
                mix(p.to_bits());
            }
            mix(op.qubits.len() as u64);
            for &q in &op.qubits {
                mix(q as u64);
            }
        }
        h
    }

    /// The circuit's full unitary, built by embedding each gate.
    ///
    /// Dense `2^n × 2^n`; intended for n ≲ 10 (tests and ideal references).
    pub fn unitary(&self) -> Matrix {
        let dim = 1usize << self.qubit_count;
        let mut u = Matrix::identity(dim);
        for op in &self.ops {
            let g = embed(&op.gate.matrix(), &op.qubits, self.qubit_count);
            u = g.matmul(&u);
        }
        u
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.qubit_count)?;
        for op in &self.ops {
            writeln!(f, "  {} {:?}", op.gate, op.qubits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_linalg::c64;

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
        let u = c.unitary();
        // |00⟩ → (|00⟩+|11⟩)/√2
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((u[(0, 0)].re - s).abs() < 1e-12);
        assert!((u[(3, 0)].re - s).abs() < 1e-12);
        assert!(u[(1, 0)].abs() < 1e-12);
        assert!(u[(2, 0)].abs() < 1e-12);
    }

    #[test]
    fn reversed_cnot_differs() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cnot, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cnot, &[1, 0]);
        assert!(!a.unitary().approx_eq(&b.unitary(), 1e-9));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(1);
        a.push(Gate::X, &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::X, &[0]);
        a.extend(&b);
        // X·X = I
        assert!(a.unitary().approx_eq(&Matrix::identity(2), 1e-12));
        let _ = c64::ZERO;
    }

    #[test]
    fn depth_follows_dependency_chains() {
        let mut c = Circuit::new(3);
        assert_eq!(c.depth(), 0);
        c.push(Gate::H, &[0])
            .push(Gate::H, &[1])
            .push(Gate::H, &[2]);
        assert_eq!(c.depth(), 1, "parallel gates share a level");
        c.push(Gate::Cnot, &[0, 1]);
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cnot, &[1, 2]);
        assert_eq!(c.depth(), 3, "chained CNOTs serialize");
        c.push(Gate::T, &[0]);
        assert_eq!(c.depth(), 3, "independent qubit fits in an earlier level");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubit() {
        Circuit::new(2).push(Gate::H, &[2]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_repeated_qubits() {
        Circuit::new(2).push(Gate::Cnot, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn rejects_wrong_arity() {
        Circuit::new(2).push(Gate::H, &[0, 1]);
    }
}
