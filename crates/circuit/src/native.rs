//! Compilation to the IBMQ-style native gate set.
//!
//! Native set (paper Sec 7.1.2): `Rz(θ)` implemented virtually in software,
//! `X90 = Rx(π/2)` and `ZX90 = Rzx(π/2)` implemented by pulses, plus the
//! identity pulse `I = Rx(2π)` that the scheduler inserts for suppression.
//!
//! Single-qubit gates compile to the ZXZXZ Euler form
//! `U3(θ,φ,λ) ≅ Rz(φ+π)·X90·Rz(θ+π)·X90·Rz(λ)`; CNOT compiles to one `ZX90`
//! plus virtual Rz and one X90 (echoed-cross-resonance form). Every identity
//! used here is verified numerically in the test module.

use std::fmt;

use zz_linalg::Matrix;
use zz_quantum::{embed, gates};

use crate::{Circuit, Gate};

const PI: f64 = std::f64::consts::PI;
const FRAC_PI_2: f64 = std::f64::consts::FRAC_PI_2;

/// An operation in the native gate set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NativeOp {
    /// Virtual Z rotation — zero duration, implemented as a frame update.
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle (radians).
        theta: f64,
    },
    /// The `Rx(π/2)` pulse gate.
    X90 {
        /// Target qubit.
        qubit: usize,
    },
    /// The `Rzx(π/2)` cross-resonance pulse gate.
    Zx90 {
        /// Control qubit (Z factor).
        control: usize,
        /// Target qubit (X factor).
        target: usize,
    },
    /// The identity pulse `I = Rx(2π)`, inserted by the ZZ-aware scheduler.
    Id {
        /// Target qubit.
        qubit: usize,
    },
}

impl NativeOp {
    /// Qubits this op acts on (1 or 2 entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            NativeOp::Rz { qubit, .. } | NativeOp::X90 { qubit } | NativeOp::Id { qubit } => {
                vec![qubit]
            }
            NativeOp::Zx90 { control, target } => vec![control, target],
        }
    }

    /// Returns `true` if this op requires a physical pulse (everything but
    /// the virtual `Rz`).
    pub fn is_physical(&self) -> bool {
        !matches!(self, NativeOp::Rz { .. })
    }

    /// The op's unitary on its own qubits.
    pub fn matrix(&self) -> Matrix {
        match *self {
            NativeOp::Rz { theta, .. } => gates::rz(theta),
            NativeOp::X90 { .. } => gates::x90(),
            NativeOp::Zx90 { .. } => gates::zx90(),
            NativeOp::Id { .. } => Matrix::identity(2),
        }
    }
}

impl fmt::Display for NativeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NativeOp::Rz { qubit, theta } => write!(f, "Rz({theta:.4}) q{qubit}"),
            NativeOp::X90 { qubit } => write!(f, "X90 q{qubit}"),
            NativeOp::Zx90 { control, target } => write!(f, "ZX90 q{control},q{target}"),
            NativeOp::Id { qubit } => write!(f, "I q{qubit}"),
        }
    }
}

/// A circuit over [`NativeOp`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct NativeCircuit {
    qubit_count: usize,
    ops: Vec<NativeOp>,
}

impl NativeCircuit {
    /// Creates an empty native circuit.
    pub fn new(qubit_count: usize) -> Self {
        NativeCircuit {
            qubit_count,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Ops in program order.
    pub fn ops(&self) -> &[NativeOp] {
        &self.ops
    }

    /// Appends an op.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or a `Zx90` repeats a qubit.
    pub fn push(&mut self, op: NativeOp) -> &mut Self {
        for q in op.qubits() {
            assert!(q < self.qubit_count, "qubit {q} out of range");
        }
        if let NativeOp::Zx90 { control, target } = op {
            assert_ne!(control, target, "ZX90 requires distinct qubits");
        }
        self.ops.push(op);
        self
    }

    /// Number of physical (pulsed) ops.
    pub fn physical_op_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_physical()).count()
    }

    /// The circuit's full unitary (dense; for tests and ideal references).
    pub fn unitary(&self) -> Matrix {
        let dim = 1usize << self.qubit_count;
        let mut u = Matrix::identity(dim);
        for op in &self.ops {
            let g = embed(&op.matrix(), &op.qubits(), self.qubit_count);
            u = g.matmul(&u);
        }
        u
    }
}

/// Compiles a logical circuit to the native gate set.
///
/// The output implements the same unitary up to global phase (tested), with
/// adjacent virtual `Rz` rotations merged and zero rotations dropped.
///
/// # Example
///
/// ```
/// use zz_circuit::{Circuit, Gate};
/// use zz_circuit::native::compile_to_native;
///
/// let mut c = Circuit::new(1);
/// c.push(Gate::H, &[0]);
/// let n = compile_to_native(&c);
/// // H costs two X90 pulses in the canonical ZXZXZ form.
/// assert_eq!(n.physical_op_count(), 2);
/// ```
pub fn compile_to_native(circuit: &Circuit) -> NativeCircuit {
    let mut out = NativeCircuit::new(circuit.qubit_count());
    for op in circuit.ops() {
        match (op.gate, op.qubits.as_slice()) {
            (g, &[q]) if g.arity() == 1 => emit_single_qubit(&mut out, &g.matrix(), q),
            (Gate::Cnot, &[c, t]) => emit_cnot(&mut out, c, t),
            (Gate::Cz, &[a, b]) => {
                emit_single_qubit(&mut out, &gates::h(), b);
                emit_cnot(&mut out, a, b);
                emit_single_qubit(&mut out, &gates::h(), b);
            }
            (Gate::CPhase(theta), &[a, b]) => {
                out.push(NativeOp::Rz {
                    qubit: a,
                    theta: theta / 2.0,
                });
                out.push(NativeOp::Rz {
                    qubit: b,
                    theta: theta / 2.0,
                });
                emit_rzz(&mut out, -theta / 2.0, a, b);
            }
            (Gate::Rzz(theta), &[a, b]) => emit_rzz(&mut out, theta, a, b),
            (Gate::Swap, &[a, b]) => {
                emit_cnot(&mut out, a, b);
                emit_cnot(&mut out, b, a);
                emit_cnot(&mut out, a, b);
            }
            (g, qs) => unreachable!("unhandled gate {g} on {qs:?}"),
        }
    }
    merge_rz(&mut out);
    out
}

/// `Rzz(θ) = CNOT · (I⊗Rz(θ)) · CNOT` (circuit order left→right).
fn emit_rzz(out: &mut NativeCircuit, theta: f64, a: usize, b: usize) {
    emit_cnot(out, a, b);
    out.push(NativeOp::Rz { qubit: b, theta });
    emit_cnot(out, a, b);
}

/// `CNOT ≅ [Rz(π)@t; ZX90(c,t); Rz(π)@t; X90@t; Rz(π/2)@c]`.
fn emit_cnot(out: &mut NativeCircuit, c: usize, t: usize) {
    out.push(NativeOp::Rz {
        qubit: t,
        theta: PI,
    });
    out.push(NativeOp::Zx90 {
        control: c,
        target: t,
    });
    out.push(NativeOp::Rz {
        qubit: t,
        theta: PI,
    });
    out.push(NativeOp::X90 { qubit: t });
    out.push(NativeOp::Rz {
        qubit: c,
        theta: FRAC_PI_2,
    });
}

/// Emits an arbitrary single-qubit unitary in ZXZXZ form.
fn emit_single_qubit(out: &mut NativeCircuit, u: &Matrix, q: usize) {
    let (theta, phi, lambda) = euler_angles(u);
    if theta.abs() < 1e-12 {
        // Diagonal gate: a single virtual Rz.
        out.push(NativeOp::Rz {
            qubit: q,
            theta: phi + lambda,
        });
        return;
    }
    out.push(NativeOp::Rz {
        qubit: q,
        theta: lambda,
    });
    out.push(NativeOp::X90 { qubit: q });
    out.push(NativeOp::Rz {
        qubit: q,
        theta: theta + PI,
    });
    out.push(NativeOp::X90 { qubit: q });
    out.push(NativeOp::Rz {
        qubit: q,
        theta: phi + PI,
    });
}

/// Extracts `(θ, φ, λ)` with `U ≅ U3(θ, φ, λ)` up to global phase.
fn euler_angles(u: &Matrix) -> (f64, f64, f64) {
    assert_eq!(u.rows(), 2, "euler_angles expects a single-qubit unitary");
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];
    let theta = 2.0 * u10.abs().atan2(u00.abs());
    if u10.abs() < 1e-12 {
        // Diagonal.
        (0.0, u11.arg() - u00.arg(), 0.0)
    } else if u00.abs() < 1e-12 {
        // Anti-diagonal: θ = π; fix λ = 0.
        (PI, u10.arg() - (-u01).arg(), 0.0)
    } else {
        let phi = u10.arg() - u00.arg();
        let lambda = (-u01).arg() - u00.arg();
        (theta, phi, lambda)
    }
}

/// Merges adjacent `Rz` on the same qubit and drops zero rotations.
fn merge_rz(c: &mut NativeCircuit) {
    let mut merged: Vec<NativeOp> = Vec::with_capacity(c.ops.len());
    for &op in &c.ops {
        if let NativeOp::Rz { qubit, theta } = op {
            if let Some(NativeOp::Rz {
                qubit: pq,
                theta: pt,
            }) = merged.last().copied()
            {
                if pq == qubit {
                    merged.pop();
                    let sum = pt + theta;
                    if normalized_angle(sum).abs() > 1e-12 {
                        merged.push(NativeOp::Rz { qubit, theta: sum });
                    }
                    continue;
                }
            }
            if normalized_angle(theta).abs() > 1e-12 {
                merged.push(op);
            }
            continue;
        }
        merged.push(op);
    }
    c.ops = merged;
}

/// Maps an angle to `(−π, π]`.
fn normalized_angle(theta: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut t = theta % two_pi;
    if t > PI {
        t -= two_pi;
    } else if t <= -PI {
        t += two_pi;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::gates::equal_up_to_phase;

    fn assert_compiles_exactly(c: &Circuit) {
        let n = compile_to_native(c);
        assert!(
            equal_up_to_phase(&c.unitary(), &n.unitary(), 1e-9),
            "compiled circuit does not match:\nlogical {:?}\nnative {:?}",
            c.unitary(),
            n.unitary()
        );
    }

    #[test]
    fn single_qubit_gates_compile() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Ry(-1.9),
            Gate::Rz(2.4),
            Gate::Phase(0.3),
            Gate::U3(1.1, -0.4, 2.7),
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::SqrtW,
        ] {
            let mut c = Circuit::new(1);
            c.push(g, &[0]);
            assert_compiles_exactly(&c);
        }
    }

    #[test]
    fn cnot_identity_holds() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        assert_compiles_exactly(&c);
        // And with control/target flipped.
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[1, 0]);
        assert_compiles_exactly(&c);
    }

    #[test]
    fn two_qubit_gates_compile() {
        for g in [Gate::Cz, Gate::CPhase(0.9), Gate::Rzz(-1.3), Gate::Swap] {
            let mut c = Circuit::new(2);
            c.push(g, &[0, 1]);
            assert_compiles_exactly(&c);
        }
    }

    #[test]
    fn multi_gate_circuit_compiles() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 1])
            .push(Gate::T, &[1])
            .push(Gate::Cnot, &[1, 2])
            .push(Gate::Rz(0.7), &[2])
            .push(Gate::Swap, &[0, 2]);
        assert_compiles_exactly(&c);
    }

    #[test]
    fn cnot_uses_single_zx90() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        let n = compile_to_native(&c);
        let zx_count = n
            .ops()
            .iter()
            .filter(|op| matches!(op, NativeOp::Zx90 { .. }))
            .count();
        assert_eq!(zx_count, 1);
        assert_eq!(n.physical_op_count(), 2); // ZX90 + X90
    }

    #[test]
    fn rz_merging_collapses_diagonals() {
        let mut c = Circuit::new(1);
        c.push(Gate::S, &[0])
            .push(Gate::S, &[0])
            .push(Gate::Z, &[0]);
        let n = compile_to_native(&c);
        // S·S·Z = Z² ≅ I: everything merges to at most one Rz; no pulses.
        assert_eq!(n.physical_op_count(), 0);
        assert!(n.ops().len() <= 1);
        assert!(equal_up_to_phase(&c.unitary(), &n.unitary(), 1e-9));
    }

    #[test]
    fn euler_angles_roundtrip() {
        for (t, p, l) in [
            (0.3, 0.7, -1.1),
            (std::f64::consts::PI, 0.4, 0.0),
            (0.0, 1.2, 0.0),
            (2.8, -2.0, 3.0),
        ] {
            let u = gates::u3(t, p, l);
            let (t2, p2, l2) = euler_angles(&u);
            let u2 = gates::u3(t2, p2, l2);
            assert!(
                equal_up_to_phase(&u, &u2, 1e-9),
                "roundtrip failed for ({t},{p},{l})"
            );
        }
    }

    #[test]
    fn normalized_angle_wraps() {
        assert!((normalized_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!(normalized_angle(-2.0 * PI).abs() < 1e-12);
        assert!((normalized_angle(0.5) - 0.5).abs() < 1e-15);
    }
}
