//! The benchmark circuit families of the paper's evaluation (Sec 7.3).
//!
//! Six near-term algorithm families — Hidden Shift, QFT, QPE, QAOA, Ising
//! Trotter simulation and Google Random Circuits — plus Quantum Volume
//! (used by the tunable-coupler experiment, Fig 25). All generators are
//! deterministic in `(kind, n, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Gate};

const PI: f64 = std::f64::consts::PI;

/// A benchmark family from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// Hidden Shift for a Maiorana–McFarland bent function.
    HiddenShift,
    /// Quantum Fourier Transform.
    Qft,
    /// Quantum Phase Estimation of a phase gate.
    Qpe,
    /// 1-round MaxCut QAOA on a seeded random graph.
    Qaoa,
    /// Trotterized transverse-field Ising evolution.
    Ising,
    /// Google Random Circuits.
    Grc,
    /// Quantum-Volume-style random SU(4) brickwork.
    Qv,
}

impl BenchmarkKind {
    /// The six families of Figures 20–24 (excludes QV, which only appears in
    /// Figure 25).
    pub const CORE: [BenchmarkKind; 6] = [
        BenchmarkKind::HiddenShift,
        BenchmarkKind::Qft,
        BenchmarkKind::Qpe,
        BenchmarkKind::Qaoa,
        BenchmarkKind::Ising,
        BenchmarkKind::Grc,
    ];

    /// Short label matching the paper's figures ("HS", "QFT", …).
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkKind::HiddenShift => "HS",
            BenchmarkKind::Qft => "QFT",
            BenchmarkKind::Qpe => "QPE",
            BenchmarkKind::Qaoa => "QAOA",
            BenchmarkKind::Ising => "Ising",
            BenchmarkKind::Grc => "GRC",
            BenchmarkKind::Qv => "QV",
        }
    }

    /// The qubit counts the paper evaluates for this family.
    pub fn paper_sizes(self) -> &'static [usize] {
        match self {
            BenchmarkKind::HiddenShift => &[4, 6, 12],
            BenchmarkKind::Qft | BenchmarkKind::Qpe => &[4, 6, 9],
            _ => &[4, 6, 9, 12],
        }
    }
}

impl std::fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Generates a benchmark circuit on `n` logical qubits.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// use zz_circuit::bench::{generate, BenchmarkKind};
///
/// let qft = generate(BenchmarkKind::Qft, 4, 7);
/// assert_eq!(qft.qubit_count(), 4);
/// assert!(qft.two_qubit_gate_count() > 0);
/// ```
pub fn generate(kind: BenchmarkKind, n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "benchmarks need at least 2 qubits");
    match kind {
        BenchmarkKind::HiddenShift => hidden_shift(n, seed),
        BenchmarkKind::Qft => qft(n),
        BenchmarkKind::Qpe => qpe(n, seed),
        BenchmarkKind::Qaoa => qaoa(n, seed),
        BenchmarkKind::Ising => ising(n, seed),
        BenchmarkKind::Grc => grc(n, seed),
        BenchmarkKind::Qv => quantum_volume(n, seed),
    }
}

/// The hidden shift of the circuit produced by
/// [`generate`]`(HiddenShift, n, seed)` — the ideal output bitstring.
///
/// For odd `n` the last qubit does not participate in the bent function and
/// its shift bit is fixed to 0.
pub fn hidden_shift_answer(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2) as u8).collect();
    if n % 2 == 1 {
        bits[n - 1] = 0;
    }
    bits
}

/// Hidden Shift with the inner-product bent function
/// `f(x) = Σ x_{2i}·x_{2i+1}` (self-dual), implemented with CZ pairs.
/// The ideal output is exactly `|s⟩` for the hidden shift `s`.
///
/// For odd `n` the last qubit sits outside the bent function: it receives
/// only the outer H pair (H·H = I), so the deterministic output is
/// preserved.
fn hidden_shift(n: usize, seed: u64) -> Circuit {
    let shift = hidden_shift_answer(n, seed);
    let m = (n / 2) * 2; // qubits covered by the bent function
    let mut c = Circuit::new(n);
    let oracle = |c: &mut Circuit| {
        for i in (0..m).step_by(2) {
            c.push(Gate::Cz, &[i, i + 1]);
        }
    };
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    let flip_shifted = |c: &mut Circuit| {
        for (q, &s) in shift.iter().enumerate() {
            if s == 1 {
                c.push(Gate::X, &[q]);
            }
        }
    };
    flip_shifted(&mut c);
    oracle(&mut c);
    flip_shifted(&mut c);
    for q in 0..m {
        c.push(Gate::H, &[q]);
    }
    oracle(&mut c);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c
}

/// Textbook QFT (no terminal swaps).
fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H, &[i]);
        for j in (i + 1)..n {
            let theta = PI / (1u64 << (j - i)) as f64;
            c.push(Gate::CPhase(theta), &[j, i]);
        }
    }
    c
}

/// Inverse QFT on the first `m` qubits of `c`.
fn inverse_qft(c: &mut Circuit, m: usize) {
    for i in (0..m).rev() {
        for j in ((i + 1)..m).rev() {
            let theta = -PI / (1u64 << (j - i)) as f64;
            c.push(Gate::CPhase(theta), &[j, i]);
        }
        c.push(Gate::H, &[i]);
    }
}

/// QPE of `P(2π·φ)` with an (n−1)-bit register; φ is a random (n−1)-bit
/// fraction so the ideal output is a single basis state.
fn qpe(n: usize, seed: u64) -> Circuit {
    let m = n - 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let numerator: u64 = rng.gen_range(1..(1u64 << m));
    let phi = numerator as f64 / (1u64 << m) as f64;
    let mut c = Circuit::new(n);
    c.push(Gate::X, &[n - 1]); // eigenstate |1⟩ of the phase gate
    for q in 0..m {
        c.push(Gate::H, &[q]);
    }
    for k in 0..m {
        // Counting qubit k controls U^{2^k}: the little-endian kickback that
        // matches the swap-less inverse QFT below, so the register ends in
        // the basis state |numerator⟩ exactly.
        let reps = 1u64 << k;
        let theta = 2.0 * PI * phi * reps as f64;
        c.push(Gate::CPhase(theta), &[k, n - 1]);
    }
    inverse_qft(&mut c, m);
    c
}

/// 1-round MaxCut QAOA on a seeded connected random graph.
fn qaoa(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    for u in 0..n {
        for v in (u + 2)..n {
            if rng.gen_bool(0.3) {
                edges.push((u, v));
            }
        }
    }
    let gamma: f64 = rng.gen_range(0.1..PI);
    let beta: f64 = rng.gen_range(0.1..PI);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    for &(u, v) in &edges {
        c.push(Gate::Rzz(gamma), &[u, v]);
    }
    for q in 0..n {
        c.push(Gate::Rx(2.0 * beta), &[q]);
    }
    c
}

/// First-order Trotterized transverse-field Ising chain
/// (`J = h = 1`, `dt = 0.2`, 3 steps).
fn ising(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let dt = 0.2;
    let steps = 3;
    // Slight disorder in the couplings makes the circuit less structured.
    let js: Vec<f64> = (0..n - 1)
        .map(|_| 1.0 + 0.1 * rng.gen_range(-1.0..1.0))
        .collect();
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for (i, &j) in js.iter().enumerate() {
            c.push(Gate::Rzz(2.0 * j * dt), &[i, i + 1]);
        }
        for q in 0..n {
            c.push(Gate::Rx(2.0 * dt), &[q]);
        }
    }
    c
}

/// Google Random Circuits: 8 cycles of random {√X, √Y, √W} single-qubit
/// gates (never repeating on a qubit) and brickwork CZ layers.
fn grc(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let depth = 8;
    let choices = [Gate::SqrtX, Gate::SqrtY, Gate::SqrtW];
    let mut last = vec![usize::MAX; n];
    let mut c = Circuit::new(n);
    for cycle in 0..depth {
        for (q, last_pick) in last.iter_mut().enumerate() {
            let mut pick = rng.gen_range(0..3);
            if pick == *last_pick {
                pick = (pick + 1 + rng.gen_range(0..2usize)) % 3;
            }
            *last_pick = pick;
            c.push(choices[pick], &[q]);
        }
        let start = cycle % 2;
        let mut q = start;
        while q + 1 < n {
            c.push(Gate::Cz, &[q, q + 1]);
            q += 2;
        }
    }
    c
}

/// Quantum-Volume-style brickwork: `n` layers of random two-qubit blocks
/// (two CNOTs with random U3 dressings) on randomly paired qubits.
fn quantum_volume(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    fn random_u3(rng: &mut StdRng, c: &mut Circuit, q: usize) {
        let t = rng_range(rng);
        let p = rng_range(rng);
        let l = rng_range(rng);
        c.push(Gate::U3(t, p, l), &[q]);
    }
    for _layer in 0..n {
        // Random pairing via a Fisher–Yates shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for pair in order.chunks(2) {
            if let &[a, b] = pair {
                random_u3(&mut rng, &mut c, a);
                random_u3(&mut rng, &mut c, b);
                c.push(Gate::Cnot, &[a, b]);
                random_u3(&mut rng, &mut c, a);
                random_u3(&mut rng, &mut c, b);
                c.push(Gate::Cnot, &[b, a]);
                random_u3(&mut rng, &mut c, a);
                random_u3(&mut rng, &mut c, b);
            }
        }
    }
    c
}

fn rng_range(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..2.0 * PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::states::{basis_state, zero_state};

    #[test]
    fn hidden_shift_outputs_the_shift() {
        for n in [2usize, 4, 5, 6] {
            for seed in [1u64, 7, 42] {
                let c = generate(BenchmarkKind::HiddenShift, n, seed);
                let out = c.unitary().mul_vec(&zero_state(n));
                let expected = basis_state(&hidden_shift_answer(n, seed));
                assert!(
                    out.fidelity(&expected) > 1.0 - 1e-9,
                    "HS-{n} seed {seed} did not output its shift"
                );
            }
        }
    }

    #[test]
    fn qpe_recovers_the_phase() {
        // φ is an exact (n−1)-bit fraction, so QPE is deterministic.
        for seed in [3u64, 9] {
            let n = 5;
            let c = generate(BenchmarkKind::Qpe, n, seed);
            let out = c.unitary().mul_vec(&zero_state(n));
            // The most likely outcome should carry (almost) all probability.
            let max_prob = out
                .as_slice()
                .iter()
                .map(|a| a.abs_sq())
                .fold(0.0f64, f64::max);
            assert!(max_prob > 0.99, "QPE output not sharp: {max_prob}");
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        let n = 3;
        let c = generate(BenchmarkKind::Qft, n, 0);
        let u = c.unitary();
        let dim = 1usize << n;
        let omega = 2.0 * PI / dim as f64;
        // QFT without terminal swaps: output bits are reversed.
        let bitrev = |mut x: usize| -> usize {
            let mut y = 0;
            for _ in 0..n {
                y = (y << 1) | (x & 1);
                x >>= 1;
            }
            y
        };
        for r in 0..dim {
            for cidx in 0..dim {
                let expected =
                    zz_linalg::c64::cis(omega * (bitrev(r) * cidx) as f64) / (dim as f64).sqrt();
                assert!(
                    (u[(r, cidx)] - expected).abs() < 1e-9,
                    "QFT entry ({r},{cidx}) mismatch"
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in [
            BenchmarkKind::HiddenShift,
            BenchmarkKind::Qaoa,
            BenchmarkKind::Ising,
            BenchmarkKind::Grc,
            BenchmarkKind::Qv,
        ] {
            let a = generate(kind, 5, 11);
            let b = generate(kind, 5, 11);
            assert_eq!(a, b, "{kind} not deterministic");
            let c = generate(kind, 5, 12);
            assert_ne!(a, c, "{kind} ignores its seed");
        }
    }

    #[test]
    fn all_kinds_generate_valid_circuits() {
        for kind in [
            BenchmarkKind::HiddenShift,
            BenchmarkKind::Qft,
            BenchmarkKind::Qpe,
            BenchmarkKind::Qaoa,
            BenchmarkKind::Ising,
            BenchmarkKind::Grc,
            BenchmarkKind::Qv,
        ] {
            for n in [2usize, 4, 6] {
                let c = generate(kind, n, 5);
                assert_eq!(c.qubit_count(), n);
                assert!(c.gate_count() > 0);
                assert!(c.unitary().is_unitary(1e-9), "{kind}-{n} broken");
            }
        }
    }

    #[test]
    fn paper_sizes_are_sane() {
        for kind in BenchmarkKind::CORE {
            assert!(!kind.paper_sizes().is_empty());
            assert!(kind.paper_sizes().iter().all(|&n| (4..=12).contains(&n)));
        }
    }
}
