//! Greedy SWAP routing onto a device topology.

use zz_graph::{shortest_path, MultiGraph};
use zz_topology::Topology;

use crate::{Circuit, Gate};

/// Routes a logical circuit onto a device: the result acts on the device's
/// physical qubits and every two-qubit gate touches a coupled pair, with
/// SWAP gates inserted along shortest paths where needed.
///
/// Logical qubit `i` starts at the `i`-th qubit of the device's *snake
/// order* (row-major with alternating row direction), which keeps
/// consecutive logical qubits physically adjacent on grids — the dominant
/// interaction pattern of the NISQ benchmarks. The mapping evolves as SWAPs
/// are inserted. Because fidelity is always evaluated by simulating the
/// *routed* circuit both ideally and noisily, the final permutation needs
/// no undoing.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device.
///
/// # Example
///
/// ```
/// use zz_circuit::{route, Circuit, Gate};
/// use zz_topology::Topology;
///
/// let mut c = Circuit::new(4);
/// c.push(Gate::Cnot, &[0, 2]); // diagonally opposite under the snake layout
/// let routed = route(&c, &Topology::grid(2, 2));
/// // A SWAP was inserted, then the CNOT acts on neighbors.
/// assert!(routed.ops().len() > 1);
/// for op in routed.ops() {
///     if op.gate.arity() == 2 {
///         let (u, v) = (op.qubits[0], op.qubits[1]);
///         assert!(Topology::grid(2, 2).coupling_between(u, v).is_some());
///     }
/// }
/// ```
pub fn route(circuit: &Circuit, topo: &Topology) -> Circuit {
    assert!(
        circuit.qubit_count() <= topo.qubit_count(),
        "circuit needs {} qubits but device has {}",
        circuit.qubit_count(),
        topo.qubit_count()
    );
    let n = topo.qubit_count();
    let graph: MultiGraph = topo.to_multigraph();

    // layout[logical] = physical, starting from the snake order.
    let snake = snake_order(topo);
    let mut layout: Vec<usize> = snake[..circuit.qubit_count()].to_vec();
    let mut out = Circuit::new(n);

    for op in circuit.ops() {
        match op.qubits.as_slice() {
            &[q] => {
                out.push(op.gate, &[layout[q]]);
            }
            &[a, b] => {
                let (mut pa, pb) = (layout[a], layout[b]);
                if topo.coupling_between(pa, pb).is_none() {
                    let path =
                        shortest_path(&graph, pa, pb).expect("device topologies are connected");
                    // Walk `a` toward `b`, swapping along the path until
                    // adjacent.
                    for &w in &path.vertices[1..path.vertices.len() - 1] {
                        out.push(Gate::Swap, &[pa, w]);
                        // Update the mapping: whichever logical qubits sit on
                        // pa and w exchange places.
                        for l in layout.iter_mut() {
                            if *l == pa {
                                *l = w;
                            } else if *l == w {
                                *l = pa;
                            }
                        }
                        pa = w;
                    }
                }
                out.push(op.gate, &[layout[a], layout[b]]);
            }
            other => unreachable!("gates act on 1 or 2 qubits, got {other:?}"),
        }
    }
    out
}

/// Device qubits ordered along a "snake": ascending by the y coordinate,
/// with x alternating direction per row, so consecutive entries are
/// adjacent on grid devices.
fn snake_order(topo: &Topology) -> Vec<usize> {
    let mut rows: Vec<(i64, Vec<usize>)> = Vec::new();
    let mut order: Vec<usize> = (0..topo.qubit_count()).collect();
    order.sort_by(|&a, &b| {
        let (ax, ay) = topo.coord(a);
        let (bx, by) = topo.coord(b);
        (ay, ax).partial_cmp(&(by, bx)).expect("finite coordinates")
    });
    for q in order {
        let (_, y) = topo.coord(q);
        let key = (y * 1024.0).round() as i64;
        match rows.last_mut() {
            Some((last, row)) if *last == key => row.push(q),
            _ => rows.push((key, vec![q])),
        }
    }
    let mut out = Vec::with_capacity(topo.qubit_count());
    for (i, (_, mut row)) in rows.into_iter().enumerate() {
        if i % 2 == 1 {
            row.reverse();
        }
        out.extend(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::gates::equal_up_to_phase;

    /// Applies a permutation to the wires of a unitary: returns P† U P where
    /// P maps logical basis states onto their physical positions.
    fn permute_unitary(u: &zz_linalg::Matrix, perm: &[usize], n: usize) -> zz_linalg::Matrix {
        // perm[logical] = physical.
        let dim = 1usize << n;
        let map_index = |i: usize| -> usize {
            let mut j = 0usize;
            for (l, &p) in perm.iter().enumerate().take(n) {
                let bit = (i >> (n - 1 - l)) & 1;
                if bit == 1 {
                    j |= 1 << (n - 1 - p);
                }
            }
            j
        };
        let mut out = zz_linalg::Matrix::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                out[(map_index(r), map_index(c))] = u[(r, c)];
            }
        }
        out
    }

    #[test]
    fn adjacent_gates_pass_through() {
        let topo = Topology::line(3);
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 1]).push(Gate::Cnot, &[1, 2]);
        let routed = route(&c, &topo);
        assert_eq!(routed.ops().len(), 2);
        assert!(routed.unitary().approx_eq(&c.unitary(), 1e-12));
    }

    #[test]
    fn distant_gate_gets_swaps() {
        let topo = Topology::line(3);
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 2]);
        let routed = route(&c, &topo);
        let swaps = routed.ops().iter().filter(|o| o.gate == Gate::Swap).count();
        assert_eq!(swaps, 1);
        for op in routed.ops() {
            if op.gate.arity() == 2 {
                assert!(topo.coupling_between(op.qubits[0], op.qubits[1]).is_some());
            }
        }
    }

    #[test]
    fn routed_circuit_equals_original_up_to_final_permutation() {
        let topo = Topology::grid(2, 3);
        let mut c = Circuit::new(6);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 5])
            .push(Gate::Cnot, &[2, 3])
            .push(Gate::T, &[5])
            .push(Gate::Cnot, &[4, 1]);
        let routed = route(&c, &topo);

        // Recover the final layout by replaying the SWAPs from the snake
        // starting layout.
        let mut layout: Vec<usize> = snake_order(&topo)[..6].to_vec();
        for op in routed.ops() {
            if op.gate == Gate::Swap {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                for l in layout.iter_mut() {
                    if *l == a {
                        *l = b;
                    } else if *l == b {
                        *l = a;
                    }
                }
            }
        }
        // The routed unitary reads logical wire l from its snake start
        // position and leaves it at its final position:
        // routed = P(final) · U_logical · P(snake)†.
        let u_logical = c.unitary();
        let routed_u = routed.unitary();
        let dim = 1usize << 6;
        let map_with = |wires: &[usize], i: usize| -> usize {
            let mut j = 0usize;
            for (l, &w) in wires.iter().enumerate().take(6) {
                if (i >> (5 - l)) & 1 == 1 {
                    j |= 1 << (5 - w);
                }
            }
            j
        };
        let start: Vec<usize> = snake_order(&topo)[..6].to_vec();
        let mut expected = zz_linalg::Matrix::zeros(dim, dim);
        for r in 0..dim {
            for col in 0..dim {
                expected[(map_with(&layout, r), map_with(&start, col))] = u_logical[(r, col)];
            }
        }
        assert!(
            equal_up_to_phase(&routed_u, &expected, 1e-9),
            "routing changed the computation"
        );
        let _ = permute_unitary; // helper retained for future tests
    }

    #[test]
    fn snake_order_keeps_consecutive_qubits_adjacent() {
        for topo in [
            Topology::grid(3, 4),
            Topology::grid(2, 3),
            Topology::line(5),
        ] {
            let snake = snake_order(&topo);
            for w in snake.windows(2) {
                assert!(
                    topo.coupling_between(w[0], w[1]).is_some(),
                    "snake broke adjacency on {} between {} and {}",
                    topo.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn line_structured_circuits_route_without_swaps() {
        // Logical line-neighbor gates must not require SWAPs on a grid.
        let topo = Topology::grid(3, 4);
        let mut c = Circuit::new(12);
        for i in 0..11 {
            c.push(Gate::Cnot, &[i, i + 1]);
        }
        let routed = route(&c, &topo);
        let swaps = routed.ops().iter().filter(|o| o.gate == Gate::Swap).count();
        assert_eq!(swaps, 0, "snake layout should avoid all SWAPs");
    }

    #[test]
    #[should_panic(expected = "circuit needs")]
    fn rejects_oversized_circuit() {
        let mut c = Circuit::new(5);
        c.push(Gate::H, &[4]);
        let _ = route(&c, &Topology::grid(2, 2));
    }
}
