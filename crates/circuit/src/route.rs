//! Greedy SWAP routing onto a device topology.

use std::fmt;

use zz_graph::{shortest_path_with, BfsScratch, MultiGraph};
use zz_topology::Topology;

use crate::{Circuit, Gate};

/// A routing failure: no coupling path exists between two physical qubits.
///
/// [`Topology`] validates connectivity at construction, so this cannot occur
/// for in-tree devices — it exists so a violated invariant (e.g. a buggy
/// pluggable routing backend handing over a disconnected graph) surfaces as
/// a typed error instead of panicking a service worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteError {
    /// The physical qubit the two-qubit gate starts from.
    pub from: usize,
    /// The physical qubit that could not be reached.
    pub to: usize,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no coupling path between physical qubits {} and {} (disconnected device graph)",
            self.from, self.to
        )
    }
}

impl std::error::Error for RouteError {}

/// Routes a logical circuit onto a device: the result acts on the device's
/// physical qubits and every two-qubit gate touches a coupled pair, with
/// SWAP gates inserted along shortest paths where needed.
///
/// Logical qubit `i` starts at the `i`-th qubit of the device's *snake
/// order* (row-major with alternating row direction), which keeps
/// consecutive logical qubits physically adjacent on grids — the dominant
/// interaction pattern of the NISQ benchmarks. The mapping evolves as SWAPs
/// are inserted. Because fidelity is always evaluated by simulating the
/// *routed* circuit both ideally and noisily, the final permutation needs
/// no undoing.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device.
///
/// # Example
///
/// ```
/// use zz_circuit::{route, Circuit, Gate};
/// use zz_topology::Topology;
///
/// let mut c = Circuit::new(4);
/// c.push(Gate::Cnot, &[0, 2]); // diagonally opposite under the snake layout
/// let routed = route(&c, &Topology::grid(2, 2));
/// // A SWAP was inserted, then the CNOT acts on neighbors.
/// assert!(routed.ops().len() > 1);
/// for op in routed.ops() {
///     if op.gate.arity() == 2 {
///         let (u, v) = (op.qubits[0], op.qubits[1]);
///         assert!(Topology::grid(2, 2).coupling_between(u, v).is_some());
///     }
/// }
/// ```
pub fn route(circuit: &Circuit, topo: &Topology) -> Circuit {
    try_route(circuit, topo).expect("device topologies are connected")
}

/// Fallible variant of [`route`]: returns a [`RouteError`] instead of
/// panicking when two physical qubits have no coupling path.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device (a size mismatch
/// is a validation error, not a routing outcome; the pipeline's validate
/// pass rejects it before routing).
pub fn try_route(circuit: &Circuit, topo: &Topology) -> Result<Circuit, RouteError> {
    try_route_with(circuit, topo, &topo.to_multigraph())
}

/// [`try_route`] against a caller-supplied coupling graph of `topo`.
///
/// Building the [`MultiGraph`] is `O(V + E)`; callers routing many circuits
/// onto the same device (the service pipeline) build it once and pass it
/// here, instead of once per call.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device, or if `graph`
/// does not have one vertex per device qubit.
pub fn try_route_with(
    circuit: &Circuit,
    topo: &Topology,
    graph: &MultiGraph,
) -> Result<Circuit, RouteError> {
    assert!(
        circuit.qubit_count() <= topo.qubit_count(),
        "circuit needs {} qubits but device has {}",
        circuit.qubit_count(),
        topo.qubit_count()
    );
    let n = topo.qubit_count();
    assert_eq!(
        graph.vertex_count(),
        n,
        "coupling graph does not match the device"
    );

    // layout[logical] = physical, starting from the snake order; the inverse
    // map makes each SWAP an O(1) update instead of an O(n) scan.
    let snake = snake_order(topo);
    let mut layout: Vec<usize> = snake[..circuit.qubit_count()].to_vec();
    let mut phys_to_logical: Vec<Option<usize>> = vec![None; n];
    for (l, &p) in layout.iter().enumerate() {
        phys_to_logical[p] = Some(l);
    }
    let mut scratch = BfsScratch::new();
    let mut out = Circuit::new(n);

    for op in circuit.ops() {
        match op.qubits.as_slice() {
            &[q] => {
                out.push(op.gate, &[layout[q]]);
            }
            &[a, b] => {
                let (mut pa, pb) = (layout[a], layout[b]);
                if topo.coupling_between(pa, pb).is_none() {
                    let path = shortest_path_with(graph, pa, pb, &mut scratch)
                        .ok_or(RouteError { from: pa, to: pb })?;
                    // Walk `a` toward `b`, swapping along the path until
                    // adjacent.
                    for &w in &path.vertices[1..path.vertices.len() - 1] {
                        out.push(Gate::Swap, &[pa, w]);
                        // Whichever logical qubits sit on pa and w exchange
                        // places.
                        let (la, lw) = (phys_to_logical[pa], phys_to_logical[w]);
                        if let Some(l) = la {
                            layout[l] = w;
                        }
                        if let Some(l) = lw {
                            layout[l] = pa;
                        }
                        phys_to_logical[pa] = lw;
                        phys_to_logical[w] = la;
                        pa = w;
                    }
                }
                out.push(op.gate, &[layout[a], layout[b]]);
            }
            other => unreachable!("gates act on 1 or 2 qubits, got {other:?}"),
        }
    }
    Ok(out)
}

/// Device qubits ordered along a "snake": ascending by the y coordinate,
/// with x alternating direction per row, so consecutive entries are
/// adjacent on grid devices.
fn snake_order(topo: &Topology) -> Vec<usize> {
    let mut rows: Vec<(i64, Vec<usize>)> = Vec::new();
    let mut order: Vec<usize> = (0..topo.qubit_count()).collect();
    order.sort_by(|&a, &b| {
        let (ax, ay) = topo.coord(a);
        let (bx, by) = topo.coord(b);
        (ay, ax).partial_cmp(&(by, bx)).expect("finite coordinates")
    });
    for q in order {
        let (_, y) = topo.coord(q);
        let key = (y * 1024.0).round() as i64;
        match rows.last_mut() {
            Some((last, row)) if *last == key => row.push(q),
            _ => rows.push((key, vec![q])),
        }
    }
    let mut out = Vec::with_capacity(topo.qubit_count());
    for (i, (_, mut row)) in rows.into_iter().enumerate() {
        if i % 2 == 1 {
            row.reverse();
        }
        out.extend(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_quantum::gates::equal_up_to_phase;

    /// Applies a permutation to the wires of a unitary: returns P† U P where
    /// P maps logical basis states onto their physical positions.
    fn permute_unitary(u: &zz_linalg::Matrix, perm: &[usize], n: usize) -> zz_linalg::Matrix {
        // perm[logical] = physical.
        let dim = 1usize << n;
        let map_index = |i: usize| -> usize {
            let mut j = 0usize;
            for (l, &p) in perm.iter().enumerate().take(n) {
                let bit = (i >> (n - 1 - l)) & 1;
                if bit == 1 {
                    j |= 1 << (n - 1 - p);
                }
            }
            j
        };
        let mut out = zz_linalg::Matrix::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                out[(map_index(r), map_index(c))] = u[(r, c)];
            }
        }
        out
    }

    #[test]
    fn adjacent_gates_pass_through() {
        let topo = Topology::line(3);
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 1]).push(Gate::Cnot, &[1, 2]);
        let routed = route(&c, &topo);
        assert_eq!(routed.ops().len(), 2);
        assert!(routed.unitary().approx_eq(&c.unitary(), 1e-12));
    }

    #[test]
    fn distant_gate_gets_swaps() {
        let topo = Topology::line(3);
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot, &[0, 2]);
        let routed = route(&c, &topo);
        let swaps = routed.ops().iter().filter(|o| o.gate == Gate::Swap).count();
        assert_eq!(swaps, 1);
        for op in routed.ops() {
            if op.gate.arity() == 2 {
                assert!(topo.coupling_between(op.qubits[0], op.qubits[1]).is_some());
            }
        }
    }

    #[test]
    fn routed_circuit_equals_original_up_to_final_permutation() {
        let topo = Topology::grid(2, 3);
        let mut c = Circuit::new(6);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 5])
            .push(Gate::Cnot, &[2, 3])
            .push(Gate::T, &[5])
            .push(Gate::Cnot, &[4, 1]);
        let routed = route(&c, &topo);

        // Recover the final layout by replaying the SWAPs from the snake
        // starting layout.
        let mut layout: Vec<usize> = snake_order(&topo)[..6].to_vec();
        for op in routed.ops() {
            if op.gate == Gate::Swap {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                for l in layout.iter_mut() {
                    if *l == a {
                        *l = b;
                    } else if *l == b {
                        *l = a;
                    }
                }
            }
        }
        // The routed unitary reads logical wire l from its snake start
        // position and leaves it at its final position:
        // routed = P(final) · U_logical · P(snake)†.
        let u_logical = c.unitary();
        let routed_u = routed.unitary();
        let dim = 1usize << 6;
        let map_with = |wires: &[usize], i: usize| -> usize {
            let mut j = 0usize;
            for (l, &w) in wires.iter().enumerate().take(6) {
                if (i >> (5 - l)) & 1 == 1 {
                    j |= 1 << (5 - w);
                }
            }
            j
        };
        let start: Vec<usize> = snake_order(&topo)[..6].to_vec();
        let mut expected = zz_linalg::Matrix::zeros(dim, dim);
        for r in 0..dim {
            for col in 0..dim {
                expected[(map_with(&layout, r), map_with(&start, col))] = u_logical[(r, col)];
            }
        }
        assert!(
            equal_up_to_phase(&routed_u, &expected, 1e-9),
            "routing changed the computation"
        );
        let _ = permute_unitary; // helper retained for future tests
    }

    #[test]
    fn snake_order_keeps_consecutive_qubits_adjacent() {
        for topo in [
            Topology::grid(3, 4),
            Topology::grid(2, 3),
            Topology::line(5),
        ] {
            let snake = snake_order(&topo);
            for w in snake.windows(2) {
                assert!(
                    topo.coupling_between(w[0], w[1]).is_some(),
                    "snake broke adjacency on {} between {} and {}",
                    topo.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn line_structured_circuits_route_without_swaps() {
        // Logical line-neighbor gates must not require SWAPs on a grid.
        let topo = Topology::grid(3, 4);
        let mut c = Circuit::new(12);
        for i in 0..11 {
            c.push(Gate::Cnot, &[i, i + 1]);
        }
        let routed = route(&c, &topo);
        let swaps = routed.ops().iter().filter(|o| o.gate == Gate::Swap).count();
        assert_eq!(swaps, 0, "snake layout should avoid all SWAPs");
    }

    #[test]
    #[should_panic(expected = "circuit needs")]
    fn rejects_oversized_circuit() {
        let mut c = Circuit::new(5);
        c.push(Gate::H, &[4]);
        let _ = route(&c, &Topology::grid(2, 2));
    }
}
