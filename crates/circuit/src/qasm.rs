//! OpenQASM 2.0 export and import.
//!
//! Export lets compiled circuits be inspected with standard tooling
//! (Qiskit, quirk-style visualizers); native circuits export with `rzx`
//! declared as an opaque gate, since OpenQASM 2.0 has no built-in
//! cross-resonance primitive. Import ([`from_qasm`]) parses the
//! flat-circuit subset of OpenQASM 2.0 that [`to_qasm`] emits — one
//! quantum register, qelib gate applications with constant angle
//! expressions (`pi/2`, `-3*pi/4`, numeric literals) — and reports every
//! malformed input as a typed [`QasmError`] carrying the offending line;
//! no input panics.

use std::fmt::Write as _;

use crate::native::{NativeCircuit, NativeOp};
use crate::{Circuit, Gate};

/// Serializes a logical circuit as OpenQASM 2.0.
///
/// # Example
///
/// ```
/// use zz_circuit::{Circuit, Gate, qasm::to_qasm};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
/// let text = to_qasm(&bell);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.qubit_count());
    for op in circuit.ops() {
        let qs = &op.qubits;
        let line = match op.gate {
            Gate::H => format!("h q[{}];", qs[0]),
            Gate::X => format!("x q[{}];", qs[0]),
            Gate::Y => format!("y q[{}];", qs[0]),
            Gate::Z => format!("z q[{}];", qs[0]),
            Gate::S => format!("s q[{}];", qs[0]),
            Gate::Sdg => format!("sdg q[{}];", qs[0]),
            Gate::T => format!("t q[{}];", qs[0]),
            Gate::Tdg => format!("tdg q[{}];", qs[0]),
            Gate::Rx(a) => format!("rx({a}) q[{}];", qs[0]),
            Gate::Ry(a) => format!("ry({a}) q[{}];", qs[0]),
            Gate::Rz(a) => format!("rz({a}) q[{}];", qs[0]),
            Gate::Phase(a) => format!("u1({a}) q[{}];", qs[0]),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) q[{}];", qs[0]),
            Gate::SqrtX => format!("sx q[{}];", qs[0]),
            Gate::SqrtY => format!("ry(pi/2) q[{}]; // sqrt(Y) up to phase", qs[0]),
            Gate::SqrtW => format!("u3(pi/2,-pi/4,pi/4) q[{}]; // sqrt(W) up to phase", qs[0]),
            Gate::Cnot => format!("cx q[{}],q[{}];", qs[0], qs[1]),
            Gate::Cz => format!("cz q[{}],q[{}];", qs[0], qs[1]),
            Gate::CPhase(a) => format!("cu1({a}) q[{}],q[{}];", qs[0], qs[1]),
            Gate::Rzz(a) => format!("rzz({a}) q[{}],q[{}];", qs[0], qs[1]),
            Gate::Swap => format!("swap q[{}],q[{}];", qs[0], qs[1]),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Serializes a native circuit as OpenQASM 2.0 (with `rzx` as an opaque
/// gate and identity pulses as `id`).
pub fn native_to_qasm(circuit: &NativeCircuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str("opaque rzx(theta) a,b;\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.qubit_count());
    for op in circuit.ops() {
        let line = match *op {
            NativeOp::Rz { qubit, theta } => format!("rz({theta}) q[{qubit}];"),
            NativeOp::X90 { qubit } => format!("sx q[{qubit}]; // X90 up to phase"),
            NativeOp::Zx90 { control, target } => {
                format!("rzx(pi/2) q[{control}],q[{target}];")
            }
            NativeOp::Id { qubit } => format!("id q[{qubit}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Why an OpenQASM 2.0 text could not be parsed. Every variant carries
/// the 1-based source line it was detected on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QasmError {
    /// The text does not start with an `OPENQASM 2.0;` declaration.
    MissingHeader,
    /// A statement uses a feature outside the supported flat-circuit
    /// subset (gate definitions, measurement, classical control,
    /// whole-register broadcast, a second `qreg`, …).
    Unsupported {
        /// 1-based source line.
        line: usize,
        /// The construct that is not supported.
        what: String,
    },
    /// A statement does not parse (bad operand syntax, an unterminated
    /// statement, a malformed angle expression, …).
    Malformed {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A gate application names a gate the importer does not know.
    UnknownGate {
        /// 1-based source line.
        line: usize,
        /// The unknown gate's name.
        name: String,
    },
    /// A gate application references a qubit outside the register.
    QubitOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The out-of-range index.
        qubit: usize,
        /// The register size.
        count: usize,
    },
    /// A two-qubit gate repeats an operand.
    RepeatedQubit {
        /// 1-based source line.
        line: usize,
        /// The repeated index.
        qubit: usize,
    },
    /// A gate application appears before any `qreg` declaration.
    NoRegister {
        /// 1-based source line.
        line: usize,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::MissingHeader => {
                write!(f, "missing OPENQASM 2.0; header")
            }
            QasmError::Unsupported { line, what } => {
                write!(f, "line {line}: unsupported construct: {what}")
            }
            QasmError::Malformed { line, detail } => {
                write!(f, "line {line}: malformed statement: {detail}")
            }
            QasmError::UnknownGate { line, name } => {
                write!(f, "line {line}: unknown gate '{name}'")
            }
            QasmError::QubitOutOfRange { line, qubit, count } => {
                write!(
                    f,
                    "line {line}: qubit {qubit} out of range (register has {count})"
                )
            }
            QasmError::RepeatedQubit { line, qubit } => {
                write!(f, "line {line}: two-qubit gate repeats qubit {qubit}")
            }
            QasmError::NoRegister { line } => {
                write!(
                    f,
                    "line {line}: gate application before any qreg declaration"
                )
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Parses the flat-circuit OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Supported: the `OPENQASM 2.0;` header, `include`, one `qreg`, `creg`
/// and `barrier` (accepted and ignored), `id` (an explicit identity —
/// accepted and ignored), `//` comments, and applications of the qelib
/// gates [`to_qasm`] writes (`h x y z s sdg t tdg rx ry rz u1/p u3 sx
/// cx cz cu1/cp rzz swap`) with constant angle expressions over numeric
/// literals, `pi`, `+ - * /` and parentheses. Each statement must fit
/// on one line. Everything else — gate definitions, measurement,
/// classical control, whole-register broadcast — is a typed
/// [`QasmError`].
///
/// # Errors
///
/// Returns a [`QasmError`] locating the first offending line; malformed
/// input never panics.
///
/// # Example
///
/// ```
/// use zz_circuit::qasm::{from_qasm, to_qasm};
/// use zz_circuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
/// let back = from_qasm(&to_qasm(&bell)).expect("parses");
/// assert_eq!(back, bell);
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut statements = Vec::new(); // (line, statement text)
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split("//").next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut rest = content;
        while let Some((stmt, tail)) = rest.split_once(';') {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                statements.push((line, stmt.to_string()));
            }
            rest = tail.trim();
        }
        if !rest.is_empty() {
            // `to_qasm` terminates every statement on its own line; a
            // dangling fragment is either a construct spanning lines
            // (gate bodies) or a truncated file.
            return Err(QasmError::Malformed {
                line,
                detail: format!("statement does not end with ';': '{rest}'"),
            });
        }
    }

    let mut circuit: Option<Circuit> = None;
    for (line, stmt) in statements {
        if !saw_header {
            let version = stmt
                .strip_prefix("OPENQASM")
                .map(str::trim)
                .ok_or(QasmError::MissingHeader)?;
            if version != "2.0" {
                return Err(QasmError::Unsupported {
                    line,
                    what: format!("OPENQASM version {version}"),
                });
            }
            saw_header = true;
            continue;
        }
        let keyword = stmt.split(['(', ' ']).next().unwrap_or("");
        match keyword {
            "include" | "creg" | "barrier" | "id" => continue,
            "OPENQASM" => {
                return Err(QasmError::Malformed {
                    line,
                    detail: "duplicate OPENQASM header".into(),
                })
            }
            "qreg" => {
                if circuit.is_some() {
                    return Err(QasmError::Unsupported {
                        line,
                        what: "a second quantum register".into(),
                    });
                }
                let (_, size) = parse_indexed(stmt["qreg".len()..].trim(), line)?;
                circuit = Some(Circuit::new(size));
            }
            "gate" | "opaque" | "measure" | "reset" | "if" => {
                return Err(QasmError::Unsupported {
                    line,
                    what: format!("'{keyword}' statements"),
                });
            }
            _ => {
                let circuit = circuit.as_mut().ok_or(QasmError::NoRegister { line })?;
                apply_gate(circuit, &stmt, line)?;
            }
        }
    }
    if !saw_header {
        return Err(QasmError::MissingHeader);
    }
    circuit.ok_or(QasmError::NoRegister { line: 1 })
}

/// Parses `name[index]`, returning the name and index.
fn parse_indexed(text: &str, line: usize) -> Result<(&str, usize), QasmError> {
    let malformed = |detail: String| QasmError::Malformed { line, detail };
    let (name, rest) = text
        .split_once('[')
        .ok_or_else(|| malformed(format!("expected name[index], got '{text}'")))?;
    let index = rest
        .strip_suffix(']')
        .and_then(|digits| digits.trim().parse::<usize>().ok())
        .ok_or_else(|| malformed(format!("bad index in '{text}'")))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(malformed(format!("missing register name in '{text}'")));
    }
    Ok((name, index))
}

/// Parses and appends one gate-application statement.
fn apply_gate(circuit: &mut Circuit, stmt: &str, line: usize) -> Result<(), QasmError> {
    let malformed = |detail: String| QasmError::Malformed { line, detail };

    // Split `name(args) operands` / `name operands`.
    let (head, operands) = match stmt.find('(') {
        Some(open) => {
            let close = stmt
                .rfind(')')
                .ok_or_else(|| malformed("unclosed '(' in gate arguments".into()))?;
            if close < open {
                return Err(malformed("')' before '(' in gate arguments".into()));
            }
            (
                (stmt[..open].trim(), Some(&stmt[open + 1..close])),
                stmt[close + 1..].trim(),
            )
        }
        None => {
            let (name, operands) = stmt
                .split_once(' ')
                .ok_or_else(|| malformed(format!("gate '{stmt}' has no operands")))?;
            ((name.trim(), None), operands.trim())
        }
    };
    let (name, args_text) = head;

    let mut args = Vec::new();
    if let Some(args_text) = args_text {
        for arg in args_text.split(',') {
            args.push(eval_expr(arg, line)?);
        }
    }

    let mut qubits = Vec::new();
    if operands.is_empty() {
        return Err(malformed(format!("gate '{name}' has no operands")));
    }
    for operand in operands.split(',') {
        let operand = operand.trim();
        if !operand.contains('[') {
            // `h q;` — whole-register broadcast.
            return Err(QasmError::Unsupported {
                line,
                what: format!("whole-register operand '{operand}'"),
            });
        }
        let (_, index) = parse_indexed(operand, line)?;
        qubits.push(index);
    }

    let gate = gate_of(name, &args, line)?;
    if qubits.len() != gate.arity() {
        return Err(malformed(format!(
            "gate '{name}' expects {} qubit(s), got {}",
            gate.arity(),
            qubits.len()
        )));
    }
    for &q in &qubits {
        if q >= circuit.qubit_count() {
            return Err(QasmError::QubitOutOfRange {
                line,
                qubit: q,
                count: circuit.qubit_count(),
            });
        }
    }
    if qubits.len() == 2 && qubits[0] == qubits[1] {
        return Err(QasmError::RepeatedQubit {
            line,
            qubit: qubits[0],
        });
    }
    circuit.push(gate, &qubits);
    Ok(())
}

/// Maps a qelib gate name plus evaluated arguments to a [`Gate`].
fn gate_of(name: &str, args: &[f64], line: usize) -> Result<Gate, QasmError> {
    let want = |n: usize| -> Result<(), QasmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(QasmError::Malformed {
                line,
                detail: format!("gate '{name}' expects {n} argument(s), got {}", args.len()),
            })
        }
    };
    let gate = match name {
        "h" => Gate::H,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::SqrtX,
        "rx" => {
            want(1)?;
            Gate::Rx(args[0])
        }
        "ry" => {
            want(1)?;
            Gate::Ry(args[0])
        }
        "rz" => {
            want(1)?;
            Gate::Rz(args[0])
        }
        "u1" | "p" => {
            want(1)?;
            Gate::Phase(args[0])
        }
        "u3" => {
            want(3)?;
            Gate::U3(args[0], args[1], args[2])
        }
        "cx" => Gate::Cnot,
        "cz" => Gate::Cz,
        "cu1" | "cp" => {
            want(1)?;
            Gate::CPhase(args[0])
        }
        "rzz" => {
            want(1)?;
            Gate::Rzz(args[0])
        }
        "swap" => Gate::Swap,
        _ => {
            return Err(QasmError::UnknownGate {
                line,
                name: name.to_string(),
            })
        }
    };
    if args.is_empty()
        || matches!(
            name,
            "rx" | "ry" | "rz" | "u1" | "p" | "u3" | "cu1" | "cp" | "rzz"
        )
    {
        Ok(gate)
    } else {
        Err(QasmError::Malformed {
            line,
            detail: format!("gate '{name}' takes no arguments, got {}", args.len()),
        })
    }
}

/// Evaluates a constant angle expression: numeric literals, `pi`,
/// `+ - * /`, unary minus and parentheses — the grammar qelib headers
/// (and [`to_qasm`]) use for angles.
fn eval_expr(text: &str, line: usize) -> Result<f64, QasmError> {
    let malformed = |detail: String| QasmError::Malformed { line, detail };
    let tokens = tokenize_expr(text).map_err(&malformed)?;
    if tokens.is_empty() {
        return Err(malformed("empty angle expression".into()));
    }
    let mut parser = ExprParser {
        tokens: &tokens,
        pos: 0,
    };
    let value = parser.sum().map_err(&malformed)?;
    if parser.pos != tokens.len() {
        return Err(malformed(format!(
            "trailing tokens in angle '{}'",
            text.trim()
        )));
    }
    Ok(value)
}

#[derive(Clone, Debug, PartialEq)]
enum ExprToken {
    Number(f64),
    Pi,
    Plus,
    Minus,
    Star,
    Slash,
    Open,
    Close,
}

fn tokenize_expr(text: &str) -> Result<Vec<ExprToken>, String> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(ExprToken::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(ExprToken::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(ExprToken::Star);
                i += 1;
            }
            '/' => {
                tokens.push(ExprToken::Slash);
                i += 1;
            }
            '(' => {
                tokens.push(ExprToken::Open);
                i += 1;
            }
            ')' => {
                tokens.push(ExprToken::Close);
                i += 1;
            }
            'p' | 'P' => {
                if bytes
                    .get(i + 1)
                    .is_some_and(|b| b.eq_ignore_ascii_case(&b'i'))
                {
                    tokens.push(ExprToken::Pi);
                    i += 2;
                } else {
                    return Err(format!("unexpected character 'p' in angle '{text}'"));
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    let scientific = (d == '+' || d == '-')
                        && matches!(bytes[i - 1] as char, 'e' | 'E')
                        && i > start;
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || scientific {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let literal = &text[start..i];
                let value = literal
                    .parse::<f64>()
                    .map_err(|_| format!("bad numeric literal '{literal}'"))?;
                tokens.push(ExprToken::Number(value));
            }
            other => return Err(format!("unexpected character '{other}' in angle '{text}'")),
        }
    }
    Ok(tokens)
}

/// Recursive-descent evaluator over [`ExprToken`]s:
/// `sum := product (('+'|'-') product)*`,
/// `product := atom (('*'|'/') atom)*`,
/// `atom := number | pi | '-' atom | '(' sum ')'`.
struct ExprParser<'a> {
    tokens: &'a [ExprToken],
    pos: usize,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&ExprToken> {
        self.tokens.get(self.pos)
    }

    fn sum(&mut self) -> Result<f64, String> {
        let mut value = self.product()?;
        while let Some(op) = self.peek() {
            match op {
                ExprToken::Plus => {
                    self.pos += 1;
                    value += self.product()?;
                }
                ExprToken::Minus => {
                    self.pos += 1;
                    value -= self.product()?;
                }
                _ => break,
            }
        }
        Ok(value)
    }

    fn product(&mut self) -> Result<f64, String> {
        let mut value = self.atom()?;
        while let Some(op) = self.peek() {
            match op {
                ExprToken::Star => {
                    self.pos += 1;
                    value *= self.atom()?;
                }
                ExprToken::Slash => {
                    self.pos += 1;
                    value /= self.atom()?;
                }
                _ => break,
            }
        }
        Ok(value)
    }

    fn atom(&mut self) -> Result<f64, String> {
        match self.peek() {
            Some(ExprToken::Number(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            Some(ExprToken::Pi) => {
                self.pos += 1;
                Ok(PI)
            }
            Some(ExprToken::Minus) => {
                self.pos += 1;
                Ok(-self.atom()?)
            }
            Some(ExprToken::Open) => {
                self.pos += 1;
                let value = self.sum()?;
                match self.peek() {
                    Some(ExprToken::Close) => {
                        self.pos += 1;
                        Ok(value)
                    }
                    _ => Err("unclosed '(' in angle expression".into()),
                }
            }
            _ => Err("expected a number, 'pi', '-' or '('".into()),
        }
    }
}

const PI: f64 = std::f64::consts::PI;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::compile_to_native;

    #[test]
    fn header_and_register_are_present() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn every_gate_variant_serializes() {
        let mut c = Circuit::new(2);
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.1),
            Gate::Ry(0.2),
            Gate::Rz(0.3),
            Gate::Phase(0.4),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::SqrtW,
        ] {
            c.push(g, &[0]);
        }
        for g in [
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(0.5),
            Gate::Rzz(0.6),
            Gate::Swap,
        ] {
            c.push(g, &[0, 1]);
        }
        let q = to_qasm(&c);
        assert_eq!(q.lines().count(), 3 + c.gate_count());
        assert!(q.contains("cu1(0.5)"));
    }

    #[test]
    fn native_circuits_declare_rzx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        let q = native_to_qasm(&compile_to_native(&c));
        assert!(q.contains("opaque rzx"));
        assert!(q.contains("rzx(pi/2) q[0],q[1];"));
    }

    #[test]
    fn benchmark_circuits_export() {
        let c = crate::bench::generate(crate::bench::BenchmarkKind::Qft, 4, 1);
        let q = to_qasm(&c);
        assert!(q.lines().count() > 10);
    }
}
