//! OpenQASM 2.0 export.
//!
//! Lets compiled circuits be inspected with standard tooling (Qiskit,
//! quirk-style visualizers). Native circuits export with `rzx` declared as
//! an opaque gate, since OpenQASM 2.0 has no built-in cross-resonance
//! primitive.

use std::fmt::Write as _;

use crate::native::{NativeCircuit, NativeOp};
use crate::{Circuit, Gate};

/// Serializes a logical circuit as OpenQASM 2.0.
///
/// # Example
///
/// ```
/// use zz_circuit::{Circuit, Gate, qasm::to_qasm};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
/// let text = to_qasm(&bell);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.qubit_count());
    for op in circuit.ops() {
        let qs = &op.qubits;
        let line = match op.gate {
            Gate::H => format!("h q[{}];", qs[0]),
            Gate::X => format!("x q[{}];", qs[0]),
            Gate::Y => format!("y q[{}];", qs[0]),
            Gate::Z => format!("z q[{}];", qs[0]),
            Gate::S => format!("s q[{}];", qs[0]),
            Gate::Sdg => format!("sdg q[{}];", qs[0]),
            Gate::T => format!("t q[{}];", qs[0]),
            Gate::Tdg => format!("tdg q[{}];", qs[0]),
            Gate::Rx(a) => format!("rx({a}) q[{}];", qs[0]),
            Gate::Ry(a) => format!("ry({a}) q[{}];", qs[0]),
            Gate::Rz(a) => format!("rz({a}) q[{}];", qs[0]),
            Gate::Phase(a) => format!("u1({a}) q[{}];", qs[0]),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) q[{}];", qs[0]),
            Gate::SqrtX => format!("sx q[{}];", qs[0]),
            Gate::SqrtY => format!("ry(pi/2) q[{}]; // sqrt(Y) up to phase", qs[0]),
            Gate::SqrtW => format!("u3(pi/2,-pi/4,pi/4) q[{}]; // sqrt(W) up to phase", qs[0]),
            Gate::Cnot => format!("cx q[{}],q[{}];", qs[0], qs[1]),
            Gate::Cz => format!("cz q[{}],q[{}];", qs[0], qs[1]),
            Gate::CPhase(a) => format!("cu1({a}) q[{}],q[{}];", qs[0], qs[1]),
            Gate::Rzz(a) => format!("rzz({a}) q[{}],q[{}];", qs[0], qs[1]),
            Gate::Swap => format!("swap q[{}],q[{}];", qs[0], qs[1]),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Serializes a native circuit as OpenQASM 2.0 (with `rzx` as an opaque
/// gate and identity pulses as `id`).
pub fn native_to_qasm(circuit: &NativeCircuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str("opaque rzx(theta) a,b;\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.qubit_count());
    for op in circuit.ops() {
        let line = match *op {
            NativeOp::Rz { qubit, theta } => format!("rz({theta}) q[{qubit}];"),
            NativeOp::X90 { qubit } => format!("sx q[{qubit}]; // X90 up to phase"),
            NativeOp::Zx90 { control, target } => {
                format!("rzx(pi/2) q[{control}],q[{target}];")
            }
            NativeOp::Id { qubit } => format!("id q[{qubit}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::compile_to_native;

    #[test]
    fn header_and_register_are_present() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn every_gate_variant_serializes() {
        let mut c = Circuit::new(2);
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.1),
            Gate::Ry(0.2),
            Gate::Rz(0.3),
            Gate::Phase(0.4),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::SqrtW,
        ] {
            c.push(g, &[0]);
        }
        for g in [
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(0.5),
            Gate::Rzz(0.6),
            Gate::Swap,
        ] {
            c.push(g, &[0, 1]);
        }
        let q = to_qasm(&c);
        assert_eq!(q.lines().count(), 3 + c.gate_count());
        assert!(q.contains("cu1(0.5)"));
    }

    #[test]
    fn native_circuits_declare_rzx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0, 1]);
        let q = native_to_qasm(&compile_to_native(&c));
        assert!(q.contains("opaque rzx"));
        assert!(q.contains("rzx(pi/2) q[0],q[1];"));
    }

    #[test]
    fn benchmark_circuits_export() {
        let c = crate::bench::generate(crate::bench::BenchmarkKind::Qft, 4, 1);
        let q = to_qasm(&c);
        assert!(q.lines().count() > 10);
    }
}
