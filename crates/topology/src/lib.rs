//! Planar quantum-device topologies and their dual graphs.
//!
//! A device topology is a connected planar graph with a straight-line
//! embedding: vertices are qubits (with 2-D coordinates) and edges are the
//! fixed couplings that mediate ZZ crosstalk. From the embedding this crate
//! derives:
//!
//! * the **rotation system** (neighbors in counter-clockwise order),
//! * the **faces** of the embedding by dart tracing ([`Topology::faces`]),
//! * the **dual multigraph** ([`Topology::dual`]), in which each face is a
//!   vertex and each coupling becomes a dual edge — self-loops for bridges
//!   and parallel edges included, with dual edge ids equal to primal edge
//!   ids so pairings map straight back to couplings.
//!
//! The α-optimal suppression algorithm (`zz-sched`) runs on these duals.
//!
//! # Example
//!
//! ```
//! use zz_topology::Topology;
//!
//! let grid = Topology::grid(3, 4);
//! assert_eq!(grid.qubit_count(), 12);
//! assert_eq!(grid.coupling_count(), 17);
//! // Euler's formula: V − E + F = 2 for connected planar graphs.
//! assert_eq!(12 + grid.faces().len(), 2 + 17);
//! assert!(grid.is_bipartite());
//! ```

#![warn(missing_docs)]

mod dual;
mod faces;
mod topology;

pub use dual::Dual;
pub use faces::{Face, FaceRef, FaceStore};
pub use topology::{Topology, TopologyError};
