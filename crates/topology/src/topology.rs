//! The device topology type.

use std::collections::VecDeque;
use std::fmt;

use zz_graph::MultiGraph;

use crate::dual::Dual;
use crate::faces::{trace_faces, Face, FaceStore};

/// Errors produced when constructing a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a qubit index ≥ the qubit count.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
    },
    /// An edge connected a qubit to itself.
    SelfCoupling {
        /// The qubit with the self-coupling.
        qubit: usize,
    },
    /// The same coupling was listed twice.
    DuplicateCoupling {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The coupling graph is not connected.
    Disconnected,
    /// Two qubits share the same coordinates (no valid embedding).
    CoincidentCoordinates {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::QubitOutOfRange { qubit } => {
                write!(f, "coupling references qubit {qubit} outside the device")
            }
            TopologyError::SelfCoupling { qubit } => {
                write!(f, "qubit {qubit} cannot couple to itself")
            }
            TopologyError::DuplicateCoupling { u, v } => {
                write!(f, "coupling {u}-{v} listed more than once")
            }
            TopologyError::Disconnected => write!(f, "coupling graph is not connected"),
            TopologyError::CoincidentCoordinates { a, b } => {
                write!(f, "qubits {a} and {b} share coordinates")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A connected planar device topology with a straight-line embedding.
///
/// See the [crate-level docs](crate) for the role this plays in the
/// suppression algorithm; constructors for the devices used in the paper's
/// evaluation are provided ([`Topology::grid`], [`Topology::line`],
/// [`Topology::ibmq_vigo`]), plus scale-oriented ones for the 100–1000+
/// qubit regime ([`Topology::heavy_hex`], and [`Topology::grid`] with large
/// dimensions).
///
/// The rotation system and faces are stored flat ([`u32`] CSR arrays, same
/// policy as `zz_graph::MultiGraph`), so a 1000-qubit topology costs a
/// handful of allocations rather than thousands.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    name: String,
    coords: Vec<(f64, f64)>,
    edges: Vec<(usize, usize)>,
    /// CSR offsets into `rot_packed`: the CCW neighbor list of qubit `q` is
    /// `rot_packed[rot_offsets[q]..rot_offsets[q + 1]]`.
    rot_offsets: Vec<u32>,
    /// Neighbors in counter-clockwise order as `(neighbor, edge id)`.
    rot_packed: Vec<(u32, u32)>,
    faces: FaceStore,
    outer_face: usize,
}

impl Topology {
    /// Builds a topology from qubit coordinates and couplings.
    ///
    /// The embedding is taken at face value: couplings must not cross when
    /// drawn as straight lines (all built-in constructors satisfy this; it
    /// is not re-verified here).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if a coupling is out of range, a
    /// self-loop, duplicated, if the graph is disconnected, or if two qubits
    /// coincide geometrically.
    pub fn new(
        name: impl Into<String>,
        coords: Vec<(f64, f64)>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Self, TopologyError> {
        let n = coords.len();
        assert!(
            n < u32::MAX as usize && edges.len() < u32::MAX as usize,
            "qubit and coupling counts must fit in u32 indices"
        );
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            if u >= n {
                return Err(TopologyError::QubitOutOfRange { qubit: u });
            }
            if v >= n {
                return Err(TopologyError::QubitOutOfRange { qubit: v });
            }
            if u == v {
                return Err(TopologyError::SelfCoupling { qubit: u });
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(TopologyError::DuplicateCoupling { u, v });
            }
        }
        // Coincidence check via sort (the earlier all-pairs scan was O(n²),
        // noticeable at 1000 qubits). `total_cmp` gives a total order; actual
        // equality is still decided by `==` on adjacent entries, so -0.0 and
        // 0.0 compare coincident exactly as before.
        let mut by_coord: Vec<usize> = (0..n).collect();
        by_coord.sort_by(|&a, &b| {
            coords[a]
                .0
                .total_cmp(&coords[b].0)
                .then(coords[a].1.total_cmp(&coords[b].1))
        });
        for w in by_coord.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            if coords[a] == coords[b] {
                return Err(TopologyError::CoincidentCoordinates { a, b });
            }
        }

        // Normalize edges to (min, max) and build the rotation system.
        let edges: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let mut rotation: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (id, &(u, v)) in edges.iter().enumerate() {
            rotation[u].push((v, id));
            rotation[v].push((u, id));
        }
        for (u, nbrs) in rotation.iter_mut().enumerate() {
            let (ux, uy) = coords[u];
            nbrs.sort_by(|&(a, _), &(b, _)| {
                let ang = |q: usize| {
                    let (x, y) = coords[q];
                    (y - uy).atan2(x - ux)
                };
                ang(a).partial_cmp(&ang(b)).expect("finite coordinates")
            });
        }

        // Connectivity check (BFS).
        if n > 0 {
            let mut visited = vec![false; n];
            visited[0] = true;
            let mut queue = VecDeque::from([0usize]);
            let mut count = 1;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &rotation[u] {
                    if !visited[v] {
                        visited[v] = true;
                        count += 1;
                        queue.push_back(v);
                    }
                }
            }
            if count != n {
                return Err(TopologyError::Disconnected);
            }
        }

        let faces = trace_faces(&rotation, &edges);
        let outer_face = find_outer_face(&faces, &coords);

        // Flatten the rotation system into CSR form; the nested Vecs above
        // are construction-time scaffolding only.
        let mut rot_offsets = Vec::with_capacity(n + 1);
        let mut rot_packed = Vec::with_capacity(2 * edges.len());
        rot_offsets.push(0u32);
        for nbrs in &rotation {
            rot_packed.extend(nbrs.iter().map(|&(v, e)| (v as u32, e as u32)));
            rot_offsets.push(rot_packed.len() as u32);
        }

        Ok(Topology {
            name: name.into(),
            coords,
            edges,
            rot_offsets,
            rot_packed,
            faces: FaceStore::from_faces(&faces),
            outer_face,
        })
    }

    /// A `rows × cols` grid device — the paper's evaluation topology
    /// (3×4 for 12 qubits). Qubit `r·cols + c` sits at `(c, r)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                coords.push((c as f64, r as f64));
            }
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Topology::new(format!("grid-{rows}x{cols}"), coords, edges)
            .expect("grid construction is always valid")
    }

    /// A 1-D chain of `n` qubits (the Ramsey experiment device is `line(3)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "line needs at least one qubit");
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::new(format!("line-{n}"), coords, edges)
            .expect("line construction is always valid")
    }

    /// The 5-qubit IBMQ Vigo device of the paper's Figure 1.
    pub fn ibmq_vigo() -> Self {
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (1.0, 1.0), (1.0, 2.0)];
        let edges = vec![(0, 1), (1, 2), (1, 3), (3, 4)];
        Topology::new("ibmq-vigo", coords, edges).expect("vigo construction is always valid")
    }

    /// A heavy-hex patch (the lattice of current IBM Quantum devices): two
    /// five-qubit rows joined by bridge qubits at columns 0, 2 and 4,
    /// forming two hexagonal cells with degree-3 junctions. Bipartite and
    /// planar, so the complete-suppression result applies.
    pub fn heavy_hex_cell() -> Self {
        // Row 0: qubits 0..=4 at y = 0; bridges: 5, 6, 7 at y = 1 under
        // columns 0/2/4; row 1: qubits 8..=12 at y = 2.
        let mut coords = Vec::new();
        for c in 0..5 {
            coords.push((c as f64, 0.0));
        }
        coords.push((0.0, 1.0));
        coords.push((2.0, 1.0));
        coords.push((4.0, 1.0));
        for c in 0..5 {
            coords.push((c as f64, 2.0));
        }
        let mut edges = vec![];
        for c in 0..4usize {
            edges.push((c, c + 1)); // top row
            edges.push((8 + c, 8 + c + 1)); // bottom row
        }
        edges.push((0, 5));
        edges.push((5, 8));
        edges.push((2, 6));
        edges.push((6, 10));
        edges.push((4, 7));
        edges.push((7, 12));
        Topology::new("heavy-hex-cell", coords, edges).expect("construction is always valid")
    }

    /// A distance-`d` heavy-hex lattice — the topology family of large IBM
    /// Quantum devices, and the scale target of this repository's compile
    /// path (route + schedule run on it; statevector evaluation does not).
    ///
    /// `d` qubit rows of `2d − 1` qubits each are joined by bridge qubits:
    /// even gaps bridge at columns `x ≡ 0 (mod 4)`, odd gaps at
    /// `x ≡ 2 (mod 4)`, producing the hexagonal 12-coupling cells of the
    /// heavy-hex lattice. The result is planar, bipartite (so the paper's
    /// complete-suppression theorem applies), and max-degree 3.
    /// `heavy_hex(21)` has 1071 qubits.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn heavy_hex(d: usize) -> Self {
        assert!(d > 0, "heavy-hex distance must be positive");
        let width = 2 * d - 1;
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        // Row qubits: row r occupies ids r·width .. (r+1)·width at y = 2r.
        for r in 0..d {
            for x in 0..width {
                coords.push((x as f64, (2 * r) as f64));
            }
        }
        for r in 0..d {
            for x in 1..width {
                edges.push((r * width + x - 1, r * width + x));
            }
        }
        // Bridge qubits, numbered after all row qubits, gap by gap.
        for r in 0..d - 1 {
            let phase = if r % 2 == 0 { 0 } else { 2 };
            for x in (phase..width).step_by(4) {
                let b = coords.len();
                coords.push((x as f64, (2 * r + 1) as f64));
                edges.push((r * width + x, b));
                edges.push((b, (r + 1) * width + x));
            }
        }
        Topology::new(format!("heavy-hex-{d}"), coords, edges)
            .expect("heavy-hex construction is always valid")
    }

    /// A 3×3 grid with one diagonal coupling added — a small non-bipartite
    /// device exhibiting the NQ/NC trade-off of the paper's Figure 10.
    pub fn grid_with_diagonal() -> Self {
        let mut coords = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                coords.push((c as f64, r as f64));
            }
        }
        let mut edges = Vec::new();
        for r in 0..3usize {
            for c in 0..3usize {
                let q = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((q, q + 1));
                }
                if r + 1 < 3 {
                    edges.push((q, q + 3));
                }
            }
        }
        edges.push((0, 4)); // diagonal: creates two triangular faces
        Topology::new("grid3x3+diag", coords, edges).expect("construction is always valid")
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of couplings.
    pub fn coupling_count(&self) -> usize {
        self.edges.len()
    }

    /// The couplings as `(u, v)` pairs with `u < v`; the index in this slice
    /// is the coupling's edge id.
    pub fn couplings(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Embedding coordinates of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn coord(&self, q: usize) -> (f64, f64) {
        self.coords[q]
    }

    /// Neighbors of qubit `q` in counter-clockwise order, as
    /// `(neighbor, edge id)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rotation(q)
            .iter()
            .map(|&(v, e)| (v as usize, e as usize))
    }

    /// The CCW incidence slice of qubit `q` in the flat rotation system.
    #[inline]
    fn rotation(&self, q: usize) -> &[(u32, u32)] {
        &self.rot_packed[self.rot_offsets[q] as usize..self.rot_offsets[q + 1] as usize]
    }

    /// Degree of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn degree(&self, q: usize) -> usize {
        (self.rot_offsets[q + 1] - self.rot_offsets[q]) as usize
    }

    /// Maximum degree over all qubits (used by the paper's suppression
    /// requirement `NQ < max_degree`).
    pub fn max_degree(&self) -> usize {
        (0..self.qubit_count())
            .map(|q| self.degree(q))
            .max()
            .unwrap_or(0)
    }

    /// The edge id of the coupling between `u` and `v`, if present.
    ///
    /// `O(deg)` via the rotation system (the earlier linear scan over all
    /// couplings was a hot spot when lowering large circuits).
    pub fn coupling_between(&self, u: usize, v: usize) -> Option<usize> {
        if u >= self.qubit_count() || v >= self.qubit_count() || u == v {
            return None;
        }
        self.rotation(u)
            .iter()
            .find(|&&(w, _)| w as usize == v)
            .map(|&(_, e)| e as usize)
    }

    /// The faces of the planar embedding (the outer face included).
    pub fn faces(&self) -> &FaceStore {
        &self.faces
    }

    /// Index (into [`Topology::faces`]) of the outer face.
    pub fn outer_face(&self) -> usize {
        self.outer_face
    }

    /// Builds the dual multigraph of the embedding.
    pub fn dual(&self) -> Dual {
        Dual::of(self)
    }

    /// The primal graph as a [`MultiGraph`] (edge ids preserved).
    pub fn to_multigraph(&self) -> MultiGraph {
        MultiGraph::from_edges(self.qubit_count(), &self.edges)
    }

    /// BFS distances from qubit `q` to every qubit, computed directly on the
    /// rotation system (no intermediate graph build).
    ///
    /// This is the at-scale replacement for [`Topology::distance_matrix`]:
    /// schedulers query distance rows on demand instead of materializing the
    /// full `O(n²)` matrix up front.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn distances_from(&self, q: usize) -> Vec<usize> {
        let n = self.qubit_count();
        assert!(q < n, "qubit out of range");
        let mut dist = vec![usize::MAX; n];
        dist[q] = 0;
        let mut queue = VecDeque::with_capacity(n);
        queue.push_back(q as u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &(v, _) in self.rotation(u as usize) {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs BFS distances between qubits.
    ///
    /// `O(n²)` memory — fine for paper-scale devices; large-device callers
    /// should use [`Topology::distances_from`] on demand instead.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.qubit_count())
            .map(|q| self.distances_from(q))
            .collect()
    }

    /// Returns `true` if the coupling graph is bipartite (two-colorable) —
    /// the class of devices on which complete suppression is achievable
    /// (paper Sec 5.1).
    pub fn is_bipartite(&self) -> bool {
        let constraints: Vec<_> = self
            .edges
            .iter()
            .map(|&(u, v)| zz_graph::ColorConstraint::differ(u, v))
            .collect();
        zz_graph::two_color(self.qubit_count(), &constraints).is_some()
    }
}

/// The outer face is the one with the most negative signed area (interior
/// faces of a counter-clockwise rotation system trace positive loops); for
/// tree-like topologies the single face (area 0) is the outer face.
fn find_outer_face(faces: &[Face], coords: &[(f64, f64)]) -> usize {
    let mut best = 0;
    let mut best_area = f64::INFINITY;
    for (i, face) in faces.iter().enumerate() {
        let vs = &face.vertices;
        let mut area = 0.0;
        for k in 0..vs.len() {
            let (x1, y1) = coords[vs[k]];
            let (x2, y2) = coords[vs[(k + 1) % vs.len()]];
            area += x1 * y2 - x2 * y1;
        }
        if area / 2.0 < best_area {
            best_area = area / 2.0;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.qubit_count(), 12);
        assert_eq!(g.coupling_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_bipartite());
    }

    #[test]
    fn euler_formula_holds() {
        for t in [
            Topology::grid(2, 2),
            Topology::grid(3, 4),
            Topology::line(5),
            Topology::ibmq_vigo(),
            Topology::grid_with_diagonal(),
        ] {
            let v = t.qubit_count();
            let e = t.coupling_count();
            let f = t.faces().len();
            assert_eq!(v + f, e + 2, "Euler failed for {}", t.name());
        }
    }

    #[test]
    fn line_has_single_face() {
        let l = Topology::line(4);
        assert_eq!(l.faces().len(), 1);
        assert_eq!(l.outer_face(), 0);
    }

    #[test]
    fn grid_faces_are_squares_plus_outer() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.faces().len(), 7); // 6 interior squares + outer
        let interior: Vec<_> = g
            .faces()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != g.outer_face())
            .map(|(_, f)| f.edge_count())
            .collect();
        assert_eq!(interior.len(), 6);
        assert!(
            interior.iter().all(|&l| l == 4),
            "interior faces are 4-cycles: {interior:?}"
        );
        assert_eq!(g.faces().face(g.outer_face()).edge_count(), 10); // boundary length
    }

    #[test]
    fn diagonal_creates_triangles() {
        let t = Topology::grid_with_diagonal();
        let tri_count = t
            .faces()
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != t.outer_face() && f.edge_count() == 3)
            .count();
        assert_eq!(tri_count, 2);
        assert!(!t.is_bipartite());
    }

    #[test]
    fn heavy_hex_cell_properties() {
        let h = Topology::heavy_hex_cell();
        assert_eq!(h.qubit_count(), 13);
        assert_eq!(h.coupling_count(), 14);
        assert!(h.is_bipartite());
        // Two hexagonal interior faces + the outer face.
        assert_eq!(h.faces().len(), 3);
        assert_eq!(h.qubit_count() + h.faces().len(), h.coupling_count() + 2);
        assert_eq!(h.max_degree(), 3);
        // The middle-column junctions are the degree-3 qubits.
        assert_eq!(h.degree(2), 3);
        assert_eq!(h.degree(10), 3);
    }

    #[test]
    fn heavy_hex_lattice_properties() {
        let h = Topology::heavy_hex(3);
        // 3 rows × 5 qubits + 3 bridges (gap 0 at x = 0, 4; gap 1 at x = 2).
        assert_eq!(h.qubit_count(), 18);
        assert_eq!(h.coupling_count(), 18);
        assert!(h.is_bipartite());
        assert_eq!(h.max_degree(), 3);
        // Euler: one hexagonal interior cell + the outer face.
        assert_eq!(h.faces().len(), 2);
        assert_eq!(h.qubit_count() + h.faces().len(), h.coupling_count() + 2);
    }

    #[test]
    fn heavy_hex_reaches_1000_qubits() {
        let h = Topology::heavy_hex(21);
        assert_eq!(h.qubit_count(), 1071);
        assert!(h.is_bipartite());
        assert_eq!(h.max_degree(), 3);
        // Spot-check the on-demand distance query against the geometry:
        // opposite corners of a 41-wide, 21-row lattice.
        let d = h.distances_from(0);
        assert_eq!(d[40], 40);
        assert!(d.iter().all(|&x| x != usize::MAX), "lattice is connected");
    }

    #[test]
    fn distances_from_matches_matrix() {
        for t in [
            Topology::grid(3, 4),
            Topology::heavy_hex(2),
            Topology::ibmq_vigo(),
        ] {
            let m = t.distance_matrix();
            for (q, row) in m.iter().enumerate() {
                assert_eq!(t.distances_from(q), *row, "row {q} of {}", t.name());
            }
        }
    }

    #[test]
    fn vigo_is_a_tree() {
        let v = Topology::ibmq_vigo();
        assert_eq!(v.faces().len(), 1);
        assert!(v.is_bipartite());
        assert_eq!(v.coupling_between(1, 3), Some(2));
        assert_eq!(v.coupling_between(0, 4), None);
    }

    #[test]
    fn distance_matrix_grid() {
        let g = Topology::grid(2, 2);
        let d = g.distance_matrix();
        assert_eq!(d[0][3], 2);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[0][0], 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0)], vec![(0, 1)]).err(),
            Some(TopologyError::QubitOutOfRange { qubit: 1 })
        );
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0), (1.0, 0.0)], vec![(0, 0)]).err(),
            Some(TopologyError::SelfCoupling { qubit: 0 })
        );
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0), (1.0, 0.0)], vec![(0, 1), (1, 0)]).err(),
            Some(TopologyError::DuplicateCoupling { u: 1, v: 0 })
        );
        assert_eq!(
            Topology::new(
                "bad",
                vec![(0.0, 0.0), (1.0, 0.0), (5.0, 5.0)],
                vec![(0, 1)]
            )
            .err(),
            Some(TopologyError::Disconnected)
        );
    }

    #[test]
    fn each_coupling_borders_two_face_slots() {
        let g = Topology::grid(3, 3);
        let mut incidence = vec![0usize; g.coupling_count()];
        for f in g.faces().iter() {
            for e in f.edges() {
                incidence[e] += 1;
            }
        }
        assert!(incidence.iter().all(|&c| c == 2));
    }
}
