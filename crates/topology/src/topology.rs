//! The device topology type.

use std::collections::VecDeque;
use std::fmt;

use zz_graph::MultiGraph;

use crate::dual::Dual;
use crate::faces::{trace_faces, Face};

/// Errors produced when constructing a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a qubit index ≥ the qubit count.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
    },
    /// An edge connected a qubit to itself.
    SelfCoupling {
        /// The qubit with the self-coupling.
        qubit: usize,
    },
    /// The same coupling was listed twice.
    DuplicateCoupling {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The coupling graph is not connected.
    Disconnected,
    /// Two qubits share the same coordinates (no valid embedding).
    CoincidentCoordinates {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::QubitOutOfRange { qubit } => {
                write!(f, "coupling references qubit {qubit} outside the device")
            }
            TopologyError::SelfCoupling { qubit } => {
                write!(f, "qubit {qubit} cannot couple to itself")
            }
            TopologyError::DuplicateCoupling { u, v } => {
                write!(f, "coupling {u}-{v} listed more than once")
            }
            TopologyError::Disconnected => write!(f, "coupling graph is not connected"),
            TopologyError::CoincidentCoordinates { a, b } => {
                write!(f, "qubits {a} and {b} share coordinates")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A connected planar device topology with a straight-line embedding.
///
/// See the [crate-level docs](crate) for the role this plays in the
/// suppression algorithm; constructors for the devices used in the paper's
/// evaluation are provided ([`Topology::grid`], [`Topology::line`],
/// [`Topology::ibmq_vigo`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    name: String,
    coords: Vec<(f64, f64)>,
    edges: Vec<(usize, usize)>,
    /// Neighbors of each vertex in counter-clockwise order: `(neighbor, edge id)`.
    rotation: Vec<Vec<(usize, usize)>>,
    faces: Vec<Face>,
    outer_face: usize,
}

impl Topology {
    /// Builds a topology from qubit coordinates and couplings.
    ///
    /// The embedding is taken at face value: couplings must not cross when
    /// drawn as straight lines (all built-in constructors satisfy this; it
    /// is not re-verified here).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if a coupling is out of range, a
    /// self-loop, duplicated, if the graph is disconnected, or if two qubits
    /// coincide geometrically.
    pub fn new(
        name: impl Into<String>,
        coords: Vec<(f64, f64)>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Self, TopologyError> {
        let n = coords.len();
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            if u >= n {
                return Err(TopologyError::QubitOutOfRange { qubit: u });
            }
            if v >= n {
                return Err(TopologyError::QubitOutOfRange { qubit: v });
            }
            if u == v {
                return Err(TopologyError::SelfCoupling { qubit: u });
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(TopologyError::DuplicateCoupling { u, v });
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if coords[a] == coords[b] {
                    return Err(TopologyError::CoincidentCoordinates { a, b });
                }
            }
        }

        // Normalize edges to (min, max) and build the rotation system.
        let edges: Vec<(usize, usize)> = edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let mut rotation: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (id, &(u, v)) in edges.iter().enumerate() {
            rotation[u].push((v, id));
            rotation[v].push((u, id));
        }
        for (u, nbrs) in rotation.iter_mut().enumerate() {
            let (ux, uy) = coords[u];
            nbrs.sort_by(|&(a, _), &(b, _)| {
                let ang = |q: usize| {
                    let (x, y) = coords[q];
                    (y - uy).atan2(x - ux)
                };
                ang(a).partial_cmp(&ang(b)).expect("finite coordinates")
            });
        }

        // Connectivity check (BFS).
        if n > 0 {
            let mut visited = vec![false; n];
            visited[0] = true;
            let mut queue = VecDeque::from([0usize]);
            let mut count = 1;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &rotation[u] {
                    if !visited[v] {
                        visited[v] = true;
                        count += 1;
                        queue.push_back(v);
                    }
                }
            }
            if count != n {
                return Err(TopologyError::Disconnected);
            }
        }

        let faces = trace_faces(&rotation, &edges);
        let outer_face = find_outer_face(&faces, &coords);
        Ok(Topology {
            name: name.into(),
            coords,
            edges,
            rotation,
            faces,
            outer_face,
        })
    }

    /// A `rows × cols` grid device — the paper's evaluation topology
    /// (3×4 for 12 qubits). Qubit `r·cols + c` sits at `(c, r)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                coords.push((c as f64, r as f64));
            }
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Topology::new(format!("grid-{rows}x{cols}"), coords, edges)
            .expect("grid construction is always valid")
    }

    /// A 1-D chain of `n` qubits (the Ramsey experiment device is `line(3)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "line needs at least one qubit");
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::new(format!("line-{n}"), coords, edges)
            .expect("line construction is always valid")
    }

    /// The 5-qubit IBMQ Vigo device of the paper's Figure 1.
    pub fn ibmq_vigo() -> Self {
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (1.0, 1.0), (1.0, 2.0)];
        let edges = vec![(0, 1), (1, 2), (1, 3), (3, 4)];
        Topology::new("ibmq-vigo", coords, edges).expect("vigo construction is always valid")
    }

    /// A heavy-hex patch (the lattice of current IBM Quantum devices): two
    /// five-qubit rows joined by bridge qubits at columns 0, 2 and 4,
    /// forming two hexagonal cells with degree-3 junctions. Bipartite and
    /// planar, so the complete-suppression result applies.
    pub fn heavy_hex_cell() -> Self {
        // Row 0: qubits 0..=4 at y = 0; bridges: 5, 6, 7 at y = 1 under
        // columns 0/2/4; row 1: qubits 8..=12 at y = 2.
        let mut coords = Vec::new();
        for c in 0..5 {
            coords.push((c as f64, 0.0));
        }
        coords.push((0.0, 1.0));
        coords.push((2.0, 1.0));
        coords.push((4.0, 1.0));
        for c in 0..5 {
            coords.push((c as f64, 2.0));
        }
        let mut edges = vec![];
        for c in 0..4usize {
            edges.push((c, c + 1)); // top row
            edges.push((8 + c, 8 + c + 1)); // bottom row
        }
        edges.push((0, 5));
        edges.push((5, 8));
        edges.push((2, 6));
        edges.push((6, 10));
        edges.push((4, 7));
        edges.push((7, 12));
        Topology::new("heavy-hex-cell", coords, edges).expect("construction is always valid")
    }

    /// A 3×3 grid with one diagonal coupling added — a small non-bipartite
    /// device exhibiting the NQ/NC trade-off of the paper's Figure 10.
    pub fn grid_with_diagonal() -> Self {
        let mut coords = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                coords.push((c as f64, r as f64));
            }
        }
        let mut edges = Vec::new();
        for r in 0..3usize {
            for c in 0..3usize {
                let q = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((q, q + 1));
                }
                if r + 1 < 3 {
                    edges.push((q, q + 3));
                }
            }
        }
        edges.push((0, 4)); // diagonal: creates two triangular faces
        Topology::new("grid3x3+diag", coords, edges).expect("construction is always valid")
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of couplings.
    pub fn coupling_count(&self) -> usize {
        self.edges.len()
    }

    /// The couplings as `(u, v)` pairs with `u < v`; the index in this slice
    /// is the coupling's edge id.
    pub fn couplings(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Embedding coordinates of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn coord(&self, q: usize) -> (f64, f64) {
        self.coords[q]
    }

    /// Neighbors of qubit `q` in counter-clockwise order, as
    /// `(neighbor, edge id)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: usize) -> &[(usize, usize)] {
        &self.rotation[q]
    }

    /// Degree of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn degree(&self, q: usize) -> usize {
        self.rotation[q].len()
    }

    /// Maximum degree over all qubits (used by the paper's suppression
    /// requirement `NQ < max_degree`).
    pub fn max_degree(&self) -> usize {
        (0..self.qubit_count())
            .map(|q| self.degree(q))
            .max()
            .unwrap_or(0)
    }

    /// The edge id of the coupling between `u` and `v`, if present.
    pub fn coupling_between(&self, u: usize, v: usize) -> Option<usize> {
        let key = (u.min(v), u.max(v));
        self.edges.iter().position(|&e| e == key)
    }

    /// The faces of the planar embedding (the outer face included).
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Index (into [`Topology::faces`]) of the outer face.
    pub fn outer_face(&self) -> usize {
        self.outer_face
    }

    /// Builds the dual multigraph of the embedding.
    pub fn dual(&self) -> Dual {
        Dual::of(self)
    }

    /// The primal graph as a [`MultiGraph`] (edge ids preserved).
    pub fn to_multigraph(&self) -> MultiGraph {
        let mut g = MultiGraph::new(self.qubit_count());
        for &(u, v) in &self.edges {
            g.add_edge(u, v);
        }
        g
    }

    /// All-pairs BFS distances between qubits.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let g = self.to_multigraph();
        (0..self.qubit_count())
            .map(|q| zz_graph::bfs_distances(&g, q))
            .collect()
    }

    /// Returns `true` if the coupling graph is bipartite (two-colorable) —
    /// the class of devices on which complete suppression is achievable
    /// (paper Sec 5.1).
    pub fn is_bipartite(&self) -> bool {
        let constraints: Vec<_> = self
            .edges
            .iter()
            .map(|&(u, v)| zz_graph::ColorConstraint::differ(u, v))
            .collect();
        zz_graph::two_color(self.qubit_count(), &constraints).is_some()
    }
}

/// The outer face is the one with the most negative signed area (interior
/// faces of a counter-clockwise rotation system trace positive loops); for
/// tree-like topologies the single face (area 0) is the outer face.
fn find_outer_face(faces: &[Face], coords: &[(f64, f64)]) -> usize {
    let mut best = 0;
    let mut best_area = f64::INFINITY;
    for (i, face) in faces.iter().enumerate() {
        let vs = &face.vertices;
        let mut area = 0.0;
        for k in 0..vs.len() {
            let (x1, y1) = coords[vs[k]];
            let (x2, y2) = coords[vs[(k + 1) % vs.len()]];
            area += x1 * y2 - x2 * y1;
        }
        if area / 2.0 < best_area {
            best_area = area / 2.0;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.qubit_count(), 12);
        assert_eq!(g.coupling_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_bipartite());
    }

    #[test]
    fn euler_formula_holds() {
        for t in [
            Topology::grid(2, 2),
            Topology::grid(3, 4),
            Topology::line(5),
            Topology::ibmq_vigo(),
            Topology::grid_with_diagonal(),
        ] {
            let v = t.qubit_count();
            let e = t.coupling_count();
            let f = t.faces().len();
            assert_eq!(v + f, e + 2, "Euler failed for {}", t.name());
        }
    }

    #[test]
    fn line_has_single_face() {
        let l = Topology::line(4);
        assert_eq!(l.faces().len(), 1);
        assert_eq!(l.outer_face(), 0);
    }

    #[test]
    fn grid_faces_are_squares_plus_outer() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.faces().len(), 7); // 6 interior squares + outer
        let interior: Vec<_> = g
            .faces()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != g.outer_face())
            .map(|(_, f)| f.edges.len())
            .collect();
        assert_eq!(interior.len(), 6);
        assert!(
            interior.iter().all(|&l| l == 4),
            "interior faces are 4-cycles: {interior:?}"
        );
        assert_eq!(g.faces()[g.outer_face()].edges.len(), 10); // boundary length
    }

    #[test]
    fn diagonal_creates_triangles() {
        let t = Topology::grid_with_diagonal();
        let tri_count = t
            .faces()
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != t.outer_face() && f.edges.len() == 3)
            .count();
        assert_eq!(tri_count, 2);
        assert!(!t.is_bipartite());
    }

    #[test]
    fn heavy_hex_cell_properties() {
        let h = Topology::heavy_hex_cell();
        assert_eq!(h.qubit_count(), 13);
        assert_eq!(h.coupling_count(), 14);
        assert!(h.is_bipartite());
        // Two hexagonal interior faces + the outer face.
        assert_eq!(h.faces().len(), 3);
        assert_eq!(h.qubit_count() + h.faces().len(), h.coupling_count() + 2);
        assert_eq!(h.max_degree(), 3);
        // The middle-column junctions are the degree-3 qubits.
        assert_eq!(h.degree(2), 3);
        assert_eq!(h.degree(10), 3);
    }

    #[test]
    fn vigo_is_a_tree() {
        let v = Topology::ibmq_vigo();
        assert_eq!(v.faces().len(), 1);
        assert!(v.is_bipartite());
        assert_eq!(v.coupling_between(1, 3), Some(2));
        assert_eq!(v.coupling_between(0, 4), None);
    }

    #[test]
    fn distance_matrix_grid() {
        let g = Topology::grid(2, 2);
        let d = g.distance_matrix();
        assert_eq!(d[0][3], 2);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[0][0], 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0)], vec![(0, 1)]).err(),
            Some(TopologyError::QubitOutOfRange { qubit: 1 })
        );
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0), (1.0, 0.0)], vec![(0, 0)]).err(),
            Some(TopologyError::SelfCoupling { qubit: 0 })
        );
        assert_eq!(
            Topology::new("bad", vec![(0.0, 0.0), (1.0, 0.0)], vec![(0, 1), (1, 0)]).err(),
            Some(TopologyError::DuplicateCoupling { u: 1, v: 0 })
        );
        assert_eq!(
            Topology::new(
                "bad",
                vec![(0.0, 0.0), (1.0, 0.0), (5.0, 5.0)],
                vec![(0, 1)]
            )
            .err(),
            Some(TopologyError::Disconnected)
        );
    }

    #[test]
    fn each_coupling_borders_two_face_slots() {
        let g = Topology::grid(3, 3);
        let mut incidence = vec![0usize; g.coupling_count()];
        for f in g.faces() {
            for &e in &f.edges {
                incidence[e] += 1;
            }
        }
        assert!(incidence.iter().all(|&c| c == 2));
    }
}
