//! The dual multigraph of a planar embedding.

use zz_graph::MultiGraph;

use crate::Topology;

/// The dual of a device topology: one vertex per face, one edge per primal
/// coupling (connecting the two faces the coupling borders).
///
/// Dual edge ids **equal** primal edge ids, so an odd-vertex pairing found
/// in the dual maps back to couplings without bookkeeping. Bridges become
/// self-loops; two faces sharing several couplings yield parallel edges —
/// both are handled by [`MultiGraph`].
///
/// # Example
///
/// ```
/// use zz_topology::Topology;
///
/// let grid = Topology::grid(3, 4);
/// let dual = grid.dual();
/// assert_eq!(dual.graph().vertex_count(), 7);  // 6 squares + outer face
/// assert_eq!(dual.graph().edge_count(), 17);   // one per coupling
/// // A bipartite grid has no odd faces: complete suppression is possible.
/// assert!(dual.graph().odd_vertices().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Dual {
    graph: MultiGraph,
    /// For each primal edge id, the two incident faces.
    incident_faces: Vec<(usize, usize)>,
    outer_face: usize,
}

impl Dual {
    /// Constructs the dual of `topo`.
    pub(crate) fn of(topo: &Topology) -> Self {
        let face_count = topo.faces().len();
        // Collect the exactly-two incident face slots of each primal edge
        // (a flat pair array — every dart belongs to one face).
        const EMPTY: usize = usize::MAX;
        let mut incident_faces = vec![(EMPTY, EMPTY); topo.coupling_count()];
        for (fid, face) in topo.faces().iter().enumerate() {
            for e in face.edges() {
                let slot = &mut incident_faces[e];
                if slot.0 == EMPTY {
                    slot.0 = fid;
                } else {
                    debug_assert_eq!(slot.1, EMPTY, "edge {e} incident to >2 face slots");
                    slot.1 = fid;
                }
            }
        }
        debug_assert!(
            incident_faces
                .iter()
                .all(|&(a, b)| a != EMPTY && b != EMPTY),
            "every edge borders exactly two face slots"
        );
        // Dual edge ids mirror primal edge ids because the pair list is in
        // primal edge-id order.
        let graph = MultiGraph::from_edges(face_count, &incident_faces);
        Dual {
            graph,
            incident_faces,
            outer_face: topo.outer_face(),
        }
    }

    /// The dual as a multigraph (vertices = faces, edge ids = coupling ids).
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The two faces incident to primal edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn incident_faces(&self, e: usize) -> (usize, usize) {
        self.incident_faces[e]
    }

    /// The dual vertex corresponding to the outer face.
    pub fn outer_face(&self) -> usize {
        self.outer_face
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_dual_is_all_self_loops() {
        let dual = Topology::line(4).dual();
        assert_eq!(dual.graph().vertex_count(), 1);
        assert_eq!(dual.graph().edge_count(), 3);
        for e in 0..3 {
            let (f1, f2) = dual.incident_faces(e);
            assert_eq!(f1, f2);
        }
        assert!(dual.graph().odd_vertices().is_empty());
    }

    #[test]
    fn square_dual_has_parallel_edges() {
        let dual = Topology::grid(2, 2).dual();
        // 1 interior face + outer face; all 4 couplings connect them.
        assert_eq!(dual.graph().vertex_count(), 2);
        assert_eq!(dual.graph().edge_count(), 4);
        assert_eq!(dual.graph().degree(0), 4);
        assert_eq!(dual.graph().degree(1), 4);
    }

    #[test]
    fn diagonal_grid_dual_has_odd_vertices() {
        let dual = Topology::grid_with_diagonal().dual();
        // Two triangles (degree 3) are odd; the paper's Figure 11 pairs them.
        let odd = dual.graph().odd_vertices();
        assert_eq!(odd.len(), 2);
        for &f in &odd {
            assert_eq!(dual.graph().degree(f), 3);
        }
    }

    #[test]
    fn dual_degrees_equal_face_boundary_lengths() {
        let topo = Topology::grid(3, 4);
        let dual = topo.dual();
        for (fid, face) in topo.faces().iter().enumerate() {
            assert_eq!(dual.graph().degree(fid), face.edge_count());
        }
    }
}
