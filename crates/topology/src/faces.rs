//! Face tracing from a rotation system.
//!
//! A planar embedding is fully determined combinatorially by its *rotation
//! system* — the cyclic counter-clockwise order of neighbors around each
//! vertex. The faces are the orbits of the dart permutation
//! `next(u→v) = (v→w)` where `w` precedes `u` in the CCW order around `v`
//! (equivalently, `w` follows `u` in clockwise order), which walks each face
//! boundary with the face interior on one fixed side.

/// A face of a planar embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Face {
    /// The boundary vertices in traversal order. For a bridge (tree edge)
    /// the same vertex may appear multiple times.
    pub vertices: Vec<usize>,
    /// The boundary edge ids in traversal order; a bridge appears twice.
    pub edges: Vec<usize>,
}

/// Traces all faces of the embedding given the CCW rotation system and the
/// edge list.
///
/// Every dart (directed edge) belongs to exactly one face, so every
/// undirected edge is incident to exactly two face slots (possibly the same
/// face twice, for bridges).
pub(crate) fn trace_faces(rotation: &[Vec<(usize, usize)>], edges: &[(usize, usize)]) -> Vec<Face> {
    let edge_count = edges.len();
    // Dart id: 2*edge + 0 for (min→max), +1 for (max→min).
    let dart_of = |from: usize, edge_id: usize| -> usize {
        let (u, _v) = edges[edge_id];
        if from == u {
            2 * edge_id
        } else {
            2 * edge_id + 1
        }
    };
    let dart_target = |dart: usize| -> usize {
        let (u, v) = edges[dart / 2];
        if dart.is_multiple_of(2) {
            v
        } else {
            u
        }
    };
    let dart_source = |dart: usize| -> usize {
        let (u, v) = edges[dart / 2];
        if dart.is_multiple_of(2) {
            u
        } else {
            v
        }
    };

    let mut visited = vec![false; 2 * edge_count];
    let mut faces = Vec::new();

    for start in 0..2 * edge_count {
        if visited[start] {
            continue;
        }
        let mut face_vertices = Vec::new();
        let mut face_edges = Vec::new();
        let mut dart = start;
        loop {
            visited[dart] = true;
            face_vertices.push(dart_source(dart));
            face_edges.push(dart / 2);
            // next(u→v): find u in v's CCW neighbor list; take the *previous*
            // entry (clockwise successor), traversing the face boundary.
            let v = dart_target(dart);
            let u = dart_source(dart);
            let nbrs = &rotation[v];
            let pos = nbrs
                .iter()
                .position(|&(w, e)| w == u && e == dart / 2)
                .expect("rotation system is consistent with the edge list");
            let prev = (pos + nbrs.len() - 1) % nbrs.len();
            let (w, next_edge) = nbrs[prev];
            let _ = w;
            dart = dart_of(v, next_edge);
            if dart == start {
                break;
            }
        }
        faces.push(Face {
            vertices: face_vertices,
            edges: face_edges,
        });
    }

    // Isolated single vertex (no edges): one outer face with that vertex.
    if edge_count == 0 && !rotation.is_empty() {
        faces.push(Face {
            vertices: vec![0],
            edges: vec![],
        });
    }
    faces
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a rotation system sorted CCW by coordinates (mirrors
    /// `Topology::new` without validation).
    fn rotation_from(coords: &[(f64, f64)], edges: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
        let mut rotation: Vec<Vec<(usize, usize)>> = vec![Vec::new(); coords.len()];
        for (id, &(u, v)) in edges.iter().enumerate() {
            rotation[u].push((v, id));
            rotation[v].push((u, id));
        }
        for (u, nbrs) in rotation.iter_mut().enumerate() {
            let (ux, uy) = coords[u];
            nbrs.sort_by(|&(a, _), &(b, _)| {
                let ang = |q: usize| {
                    let (x, y) = coords[q];
                    (y - uy).atan2(x - ux)
                };
                ang(a).partial_cmp(&ang(b)).expect("finite")
            });
        }
        rotation
    }

    #[test]
    fn triangle_has_two_faces() {
        let coords = [(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)];
        let edges = [(0, 1), (1, 2), (0, 2)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 2);
        assert!(faces.iter().all(|f| f.edges.len() == 3));
    }

    #[test]
    fn single_edge_one_face_with_edge_twice() {
        let coords = [(0.0, 0.0), (1.0, 0.0)];
        let edges = [(0, 1)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 1);
        assert_eq!(faces[0].edges, vec![0, 0]);
    }

    #[test]
    fn star_tree_single_face_walks_all_darts() {
        // Center 0 with three leaves.
        let coords = [(0.0, 0.0), (1.0, 0.0), (-0.5, 1.0), (-0.5, -1.0)];
        let edges = [(0, 1), (0, 2), (0, 3)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 1);
        assert_eq!(faces[0].edges.len(), 6); // each edge twice
    }
}
