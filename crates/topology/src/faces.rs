//! Face tracing from a rotation system.
//!
//! A planar embedding is fully determined combinatorially by its *rotation
//! system* — the cyclic counter-clockwise order of neighbors around each
//! vertex. The faces are the orbits of the dart permutation
//! `next(u→v) = (v→w)` where `w` precedes `u` in the CCW order around `v`
//! (equivalently, `w` follows `u` in clockwise order), which walks each face
//! boundary with the face interior on one fixed side.

/// A face of a planar embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Face {
    /// The boundary vertices in traversal order. For a bridge (tree edge)
    /// the same vertex may appear multiple times.
    pub vertices: Vec<usize>,
    /// The boundary edge ids in traversal order; a bridge appears twice.
    pub edges: Vec<usize>,
}

/// Flat storage for all faces of an embedding.
///
/// Boundary vertices and edges of every face live in two shared `u32`
/// arrays indexed by per-face offsets, replacing the earlier
/// one-`Vec`-per-face layout — on a 1000-qubit device that is two
/// allocations instead of two thousand. Faces are read through [`FaceRef`]
/// views.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaceStore {
    /// Offsets into `vertices`; face `i` owns `v_offsets[i]..v_offsets[i+1]`.
    v_offsets: Vec<u32>,
    /// Offsets into `edges` (kept separately: a zero-edge isolated-vertex
    /// face still records one boundary vertex).
    e_offsets: Vec<u32>,
    vertices: Vec<u32>,
    edges: Vec<u32>,
}

impl FaceStore {
    pub(crate) fn from_faces(faces: &[Face]) -> Self {
        let mut store = FaceStore {
            v_offsets: Vec::with_capacity(faces.len() + 1),
            e_offsets: Vec::with_capacity(faces.len() + 1),
            vertices: Vec::new(),
            edges: Vec::new(),
        };
        store.v_offsets.push(0);
        store.e_offsets.push(0);
        for face in faces {
            store
                .vertices
                .extend(face.vertices.iter().map(|&v| v as u32));
            store.edges.extend(face.edges.iter().map(|&e| e as u32));
            store.v_offsets.push(store.vertices.len() as u32);
            store.e_offsets.push(store.edges.len() as u32);
        }
        store
    }

    /// Number of faces (the outer face included).
    pub fn len(&self) -> usize {
        self.v_offsets.len() - 1
    }

    /// Returns `true` if the store holds no faces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of face `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn face(&self, i: usize) -> FaceRef<'_> {
        FaceRef {
            vertices: &self.vertices[self.v_offsets[i] as usize..self.v_offsets[i + 1] as usize],
            edges: &self.edges[self.e_offsets[i] as usize..self.e_offsets[i + 1] as usize],
        }
    }

    /// Iterates over all faces in index order.
    pub fn iter(&self) -> impl Iterator<Item = FaceRef<'_>> + '_ {
        (0..self.len()).map(|i| self.face(i))
    }
}

/// A borrowed view of one face in a [`FaceStore`].
#[derive(Clone, Copy, Debug)]
pub struct FaceRef<'a> {
    vertices: &'a [u32],
    edges: &'a [u32],
}

impl FaceRef<'_> {
    /// The boundary vertices in traversal order. For a bridge (tree edge)
    /// the same vertex may appear multiple times.
    pub fn vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertices.iter().map(|&v| v as usize)
    }

    /// The boundary edge ids in traversal order; a bridge appears twice.
    pub fn edges(&self) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().map(|&e| e as usize)
    }

    /// Number of boundary vertex slots.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of boundary edge slots (the face's boundary length).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Traces all faces of the embedding given the CCW rotation system and the
/// edge list.
///
/// Every dart (directed edge) belongs to exactly one face, so every
/// undirected edge is incident to exactly two face slots (possibly the same
/// face twice, for bridges).
pub(crate) fn trace_faces(rotation: &[Vec<(usize, usize)>], edges: &[(usize, usize)]) -> Vec<Face> {
    let edge_count = edges.len();
    // Dart id: 2*edge + 0 for (min→max), +1 for (max→min).
    let dart_of = |from: usize, edge_id: usize| -> usize {
        let (u, _v) = edges[edge_id];
        if from == u {
            2 * edge_id
        } else {
            2 * edge_id + 1
        }
    };
    let dart_target = |dart: usize| -> usize {
        let (u, v) = edges[dart / 2];
        if dart.is_multiple_of(2) {
            v
        } else {
            u
        }
    };
    let dart_source = |dart: usize| -> usize {
        let (u, v) = edges[dart / 2];
        if dart.is_multiple_of(2) {
            u
        } else {
            v
        }
    };

    let mut visited = vec![false; 2 * edge_count];
    let mut faces = Vec::new();

    for start in 0..2 * edge_count {
        if visited[start] {
            continue;
        }
        let mut face_vertices = Vec::new();
        let mut face_edges = Vec::new();
        let mut dart = start;
        loop {
            visited[dart] = true;
            face_vertices.push(dart_source(dart));
            face_edges.push(dart / 2);
            // next(u→v): find u in v's CCW neighbor list; take the *previous*
            // entry (clockwise successor), traversing the face boundary.
            let v = dart_target(dart);
            let u = dart_source(dart);
            let nbrs = &rotation[v];
            let pos = nbrs
                .iter()
                .position(|&(w, e)| w == u && e == dart / 2)
                .expect("rotation system is consistent with the edge list");
            let prev = (pos + nbrs.len() - 1) % nbrs.len();
            let (w, next_edge) = nbrs[prev];
            let _ = w;
            dart = dart_of(v, next_edge);
            if dart == start {
                break;
            }
        }
        faces.push(Face {
            vertices: face_vertices,
            edges: face_edges,
        });
    }

    // Isolated single vertex (no edges): one outer face with that vertex.
    if edge_count == 0 && !rotation.is_empty() {
        faces.push(Face {
            vertices: vec![0],
            edges: vec![],
        });
    }
    faces
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a rotation system sorted CCW by coordinates (mirrors
    /// `Topology::new` without validation).
    fn rotation_from(coords: &[(f64, f64)], edges: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
        let mut rotation: Vec<Vec<(usize, usize)>> = vec![Vec::new(); coords.len()];
        for (id, &(u, v)) in edges.iter().enumerate() {
            rotation[u].push((v, id));
            rotation[v].push((u, id));
        }
        for (u, nbrs) in rotation.iter_mut().enumerate() {
            let (ux, uy) = coords[u];
            nbrs.sort_by(|&(a, _), &(b, _)| {
                let ang = |q: usize| {
                    let (x, y) = coords[q];
                    (y - uy).atan2(x - ux)
                };
                ang(a).partial_cmp(&ang(b)).expect("finite")
            });
        }
        rotation
    }

    #[test]
    fn triangle_has_two_faces() {
        let coords = [(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)];
        let edges = [(0, 1), (1, 2), (0, 2)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 2);
        assert!(faces.iter().all(|f| f.edges.len() == 3));
    }

    #[test]
    fn single_edge_one_face_with_edge_twice() {
        let coords = [(0.0, 0.0), (1.0, 0.0)];
        let edges = [(0, 1)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 1);
        assert_eq!(faces[0].edges, vec![0, 0]);
    }

    #[test]
    fn star_tree_single_face_walks_all_darts() {
        // Center 0 with three leaves.
        let coords = [(0.0, 0.0), (1.0, 0.0), (-0.5, 1.0), (-0.5, -1.0)];
        let edges = [(0, 1), (0, 2), (0, 3)];
        let faces = trace_faces(&rotation_from(&coords, &edges), &edges);
        assert_eq!(faces.len(), 1);
        assert_eq!(faces[0].edges.len(), 6); // each edge twice
    }
}
