//! The blocking client: one TCP connection, one request/response pair
//! per call.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use zz_obs::MetricsSnapshot;
use zz_persist::ArtifactKind;
use zz_service::Error as ServiceError;

use crate::envelope::{CompileEnvelope, CompiledEnvelope, Request, Response};
use crate::frame::{read_frame, write_frame, FrameError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or the framing failed (disconnect, damage, I/O).
    Frame(FrameError),
    /// The server's admission queue was full — backpressure, not
    /// failure. Nothing was enqueued; retry after a backoff.
    Busy,
    /// The server is draining and accepted no new work.
    ShuttingDown,
    /// The server could not decode our frame (and closed the
    /// connection).
    Rejected(String),
    /// The compile itself failed with a typed service error —
    /// the same taxonomy an in-process `Session` reports.
    Service(ServiceError),
    /// The server answered with a response that does not fit the
    /// request (e.g. a pong to a compile).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport failed: {e}"),
            ClientError::Busy => write!(f, "server is at capacity (retry after a backoff)"),
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Rejected(detail) => write!(f, "server rejected the frame: {detail}"),
            ClientError::Service(e) => write!(f, "compile failed: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            ClientError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking connection to a `zz_net` [`Server`](crate::Server).
///
/// One request is in flight at a time per client; open more clients for
/// concurrency (the server fans them into one shared session, and
/// identical concurrent compiles coalesce onto one job server-side).
///
/// The client remembers the addresses it resolved at
/// [`connect`](Client::connect) time, so a dropped connection is
/// recoverable: [`ensure_connected`](Client::ensure_connected) re-dials
/// on demand, and the idempotent calls ([`ping`](Client::ping),
/// [`stats`](Client::stats)) transparently re-dial and retry once when
/// the transport fails mid-call. Compiles are *not* auto-retried — a
/// dropped connection cannot tell the caller whether the server already
/// enqueued the job.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addrs: Vec<SocketAddr>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established (or
    /// if `addr` resolves to no addresses).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = dial(&addrs)?;
        Ok(Client { stream, addrs })
    }

    /// Replaces a dead connection with a fresh one to the same server,
    /// verified by a ping. A healthy connection is left alone (the probe
    /// ping is the only traffic), so calling this before every batch of
    /// work is cheap.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError`] when the probe fails *and* re-dialing
    /// (or the ping on the fresh connection) fails too.
    pub fn ensure_connected(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping) {
            Ok(Response::Pong) => Ok(()),
            Ok(other) => Err(unexpected(other)),
            Err(_) => {
                self.stream = dial(&self.addrs)?;
                match self.request(&Request::Ping)? {
                    Response::Pong => Ok(()),
                    other => Err(unexpected(other)),
                }
            }
        }
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] if the transport fails or the response
    /// frame is damaged.
    pub fn request(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, ArtifactKind::NetRequest, request).map_err(FrameError::Io)?;
        read_frame(&mut self.stream, ArtifactKind::NetResponse)
    }

    /// [`request`](Client::request) for *idempotent* requests: a
    /// transport failure (disconnect or I/O) re-dials the remembered
    /// addresses and retries exactly once. Damaged-but-delivered
    /// responses are not retried — the connection is alive, the bytes
    /// were bad.
    fn request_idempotent(&mut self, request: &Request) -> Result<Response, FrameError> {
        match self.request(request) {
            Ok(response) => Ok(response),
            Err(first @ (FrameError::Disconnected | FrameError::Io(_))) => {
                match dial(&self.addrs) {
                    Ok(stream) => {
                        self.stream = stream;
                        self.request(request)
                    }
                    Err(_) => Err(first),
                }
            }
            Err(other) => Err(other),
        }
    }

    /// Liveness probe. Idempotent: a dropped connection is re-dialed and
    /// the ping retried once before the error surfaces.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError`] if the transport fails or the server
    /// answers with anything but a pong.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request_idempotent(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Compiles one circuit remotely, blocking until the server answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] under backpressure (retry after a backoff),
    /// [`ClientError::Service`] when the compile itself failed, and
    /// [`ClientError::Frame`] when the transport did.
    pub fn compile(&mut self, envelope: CompileEnvelope) -> Result<CompiledEnvelope, ClientError> {
        match self.request(&Request::Compile(envelope))? {
            Response::Compiled(compiled) => Ok(*compiled),
            Response::Busy => Err(ClientError::Busy),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            Response::Error(error) => Err(ClientError::Service(error.into())),
            Response::Malformed { detail } => Err(ClientError::Rejected(detail)),
            other => Err(unexpected(other)),
        }
    }

    /// Scrapes the server's live metrics: pipeline stage timings, queue
    /// and coalescing counters, wire-level frame statistics — everything
    /// the server's session registry holds, as one consistent snapshot.
    /// Never subject to compile admission, so it works against a
    /// saturated server. Idempotent: a dropped connection is re-dialed
    /// and the scrape retried once before the error surfaces.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError`] if the transport fails or the server
    /// answers with anything but a stats snapshot.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.request_idempotent(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down gracefully (drain, then exit).
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError`] if the transport fails or the server
    /// answers with anything but the shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Dials the resolved address list with `TCP_NODELAY`, the way every
/// connection (first or re-dial) is opened.
fn dial(addrs: &[SocketAddr]) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addrs)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn unexpected(response: Response) -> ClientError {
    ClientError::Unexpected(match response {
        Response::Pong => "pong",
        Response::Compiled(_) => "compiled plan",
        Response::Busy => "busy",
        Response::Error(_) => "service error",
        Response::ShuttingDown => "shutdown acknowledgement",
        Response::Malformed { .. } => "malformed-frame report",
        Response::Stats(_) => "stats snapshot",
    })
}
