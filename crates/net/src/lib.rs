//! `zz_net`: a framed TCP front door over the [`zz_service`] session.
//!
//! The service layer gave the compiler one long-lived front door — a
//! [`Session`](zz_service::Session) owning the worker pool and every
//! cache. This crate puts that front door on a socket, so many
//! processes (calibration daemons, figure runners, notebook kernels)
//! can share one warm session instead of each paying cold routing and
//! calibration costs.
//!
//! Three layers, bottom up:
//!
//! - [`frame`] — the wire frame. Every message is one `zz_persist`
//!   artifact container (magic, schema version, kind tag, length,
//!   FNV-1a checksum, payload), so the damage-handling guarantees of
//!   the on-disk store carry over to the wire: truncation, corruption,
//!   foreign bytes and adversarial length prefixes all decode to a
//!   typed [`FrameError`], never a panic or an unbounded allocation.
//! - [`envelope`] — what the frames carry: [`Request`] / [`Response`],
//!   stamped with [`PROTOCOL_VERSION`], converting losslessly to and
//!   from the service layer's request/response/error types.
//! - [`server`] / [`client`] — a blocking [`Server`] fanning N
//!   connections into one shared session (bounded admission answers
//!   [`Response::Busy`] under load; identical concurrent compiles
//!   coalesce onto one job; shutdown drains instead of dropping) and
//!   the matching blocking [`Client`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_net::{Client, CompileEnvelope, Server};
//! use zz_service::{Session, Target};
//!
//! let server = Server::bind("127.0.0.1:0", Arc::new(Session::new(Target::paper_default())))?;
//! let addr = server.local_addr()?;
//! let control = server.control();
//! let serving = std::thread::spawn(move || server.serve());
//!
//! let mut client = Client::connect(addr)?;
//! let circuit = generate(BenchmarkKind::Qaoa, 4, 0);
//! let compiled = client.compile(CompileEnvelope::new(circuit))?;
//! println!("{} layers", compiled.compiled.plan.layer_count());
//!
//! control.shutdown();
//! serving.join().expect("acceptor does not panic")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod envelope;
pub mod frame;
pub mod server;

pub use client::{Client, ClientError};
pub use envelope::{
    CompileEnvelope, CompiledEnvelope, Request, Response, WireError, PROTOCOL_VERSION,
};
pub use frame::{read_frame, write_frame, FrameError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
pub use server::{Server, ServerConfig, ServerControl};

// What `Client::stats` returns and `CompiledEnvelope::request_id`
// carries, re-exported so wire callers need no direct `zz_obs` import.
pub use zz_obs::{MetricsSnapshot, RequestId};
