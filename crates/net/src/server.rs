//! The blocking TCP server: N client connections fanned into one shared
//! [`Session`].
//!
//! One thread accepts connections; each connection gets a handler thread
//! that reads request frames, submits compiles through
//! [`Session::submit_shared`] (so a thundering herd of identical
//! requests costs one pipeline execution) and writes response frames
//! back. Admission is bounded: when [`ServerConfig::max_inflight`]
//! compile jobs are already running, further compiles are answered with
//! [`Response::Busy`] immediately — backpressure is a typed reply, never
//! a hang, and a rejected request is never half-enqueued.
//!
//! Shutdown is graceful: [`ServerControl::shutdown`] (or a
//! [`Request::Shutdown`] frame) flips a flag and wakes the acceptor;
//! [`Server::serve`] then stops accepting, joins every handler — each of
//! which finishes the compile it is waiting on and answers any frame
//! already buffered on its socket with [`Response::ShuttingDown`] —
//! and returns. In-flight jobs are drained, not dropped.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zz_obs::{Counter, Gauge, Histogram, Registry};
use zz_persist::ArtifactKind;
use zz_service::Session;

use crate::envelope::{CompiledEnvelope, Request, Response, WireError};
use crate::frame::{read_frame, write_frame, FrameError};

/// Tuning knobs for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Upper bound on concurrently executing compile jobs across all
    /// connections; compiles beyond it are answered [`Response::Busy`].
    pub max_inflight: usize,
    /// How often an idle handler wakes to check the shutdown flag. Also
    /// the worst-case lag between [`ServerControl::shutdown`] and an
    /// idle connection closing.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            poll: Duration::from_millis(25),
        }
    }
}

/// The server's standing handles into the session's metrics registry —
/// registered once at bind, updated with plain atomic ops per frame.
/// Scrape them with `Request::Stats` or `Session::metrics().snapshot()`.
#[derive(Debug)]
struct NetMetrics {
    /// `net.connections` — connections accepted.
    connections: Arc<Counter>,
    /// `net.frames` — well-formed request frames served.
    frames: Arc<Counter>,
    /// `net.malformed` — damaged frames answered (and connections closed).
    malformed: Arc<Counter>,
    /// `net.admitted` — compiles admitted past the backpressure gate.
    admitted: Arc<Counter>,
    /// `net.busy` — compiles answered [`Response::Busy`].
    busy: Arc<Counter>,
    /// `net.inflight` — compiles admitted and not yet answered.
    inflight: Arc<Gauge>,
    /// `net.admission_wait_us` — frame decode → admission decision.
    admission_wait: Arc<Histogram>,
}

impl NetMetrics {
    fn new(session: &Session) -> Self {
        let registry = session.metrics();
        NetMetrics {
            connections: registry.counter("net.connections"),
            frames: registry.counter("net.frames"),
            malformed: registry.counter("net.malformed"),
            admitted: registry.counter("net.admitted"),
            busy: registry.counter("net.busy"),
            inflight: registry.gauge("net.inflight"),
            admission_wait: registry.histogram("net.admission_wait_us"),
        }
    }
}

/// State shared by the acceptor, every handler thread and every
/// [`ServerControl`].
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Compile jobs currently executing (admitted, not yet answered).
    inflight: AtomicUsize,
    /// Cumulative compile jobs admitted past the backpressure gate.
    admitted: AtomicUsize,
    /// Cumulative compiles answered [`Response::Busy`].
    busy: AtomicUsize,
    /// Published twins of the counters above (plus per-frame ones) in
    /// the session's registry, for the `Stats` endpoint.
    metrics: NetMetrics,
    /// An additional registry layered into every `Stats` response — how
    /// a fleet surfaces its dispatch/drift metrics through a device
    /// server's wire endpoint. `None` for plain servers.
    extra_stats: Option<Arc<Registry>>,
}

impl Shared {
    /// Reserves an admission slot, or reports backpressure.
    fn try_admit(&self) -> bool {
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.config.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            self.metrics.admitted.inc();
            self.metrics.inflight.inc();
        } else {
            self.busy.fetch_add(1, Ordering::Relaxed);
            self.metrics.busy.inc();
        }
        admitted
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.metrics.inflight.dec();
    }

    /// Flips the shutdown flag and nudges the acceptor awake with a
    /// throwaway connection (the acceptor blocks in `accept`, so the
    /// flag alone would only be seen at the next organic connection).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        drop(TcpStream::connect(self.addr));
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A handle for stopping and observing a running [`Server`] from another
/// thread. Cheap to clone.
#[derive(Clone, Debug)]
pub struct ServerControl {
    shared: Arc<Shared>,
}

impl ServerControl {
    /// Asks the server to shut down gracefully: stop accepting, drain
    /// in-flight jobs, then return from [`Server::serve`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Cumulative compile requests admitted past the backpressure gate
    /// (tests use this to know every submission is in flight before
    /// triggering shutdown).
    pub fn admitted(&self) -> usize {
        self.shared.admitted.load(Ordering::Relaxed)
    }

    /// Cumulative compile requests answered [`Response::Busy`].
    pub fn busy_rejections(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }
}

/// A blocking TCP front door over one shared [`Session`]. See the
/// [module docs](self) for the threading and shutdown model.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    session: Arc<Session>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port, then
    /// [`local_addr`](Self::local_addr)) serving the given session with
    /// the default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, session: Arc<Session>) -> std::io::Result<Self> {
        Self::bind_with(addr, session, ServerConfig::default())
    }

    /// Like [`bind`](Self::bind) with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        session: Arc<Session>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, session, config, None)
    }

    /// Like [`bind_with`](Self::bind_with), additionally layering
    /// `extra_stats` into every `Stats` response (session names win on
    /// collision) — so a fleet's dispatch/drift registry is scrapeable
    /// through the same wire endpoint as the device's own metrics.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn bind_with_stats(
        addr: impl ToSocketAddrs,
        session: Arc<Session>,
        config: ServerConfig,
        extra_stats: Arc<Registry>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, session, config, Some(extra_stats))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        session: Arc<Session>,
        config: ServerConfig,
        extra_stats: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = NetMetrics::new(&session);
        Ok(Server {
            listener,
            session,
            shared: Arc::new(Shared {
                config,
                addr,
                shutdown: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                admitted: AtomicUsize::new(0),
                busy: AtomicUsize::new(0),
                metrics,
                extra_stats,
            }),
        })
    }

    /// The address the server actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket cannot report its address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads while
    /// [`serve`](Self::serve) blocks this one.
    pub fn control(&self) -> ServerControl {
        ServerControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shutdown is requested, then
    /// drains: every handler thread is joined, so every admitted job has
    /// been answered when this returns.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if accepting fails for a reason other than
    /// shutdown.
    pub fn serve(self) -> std::io::Result<()> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.is_shutting_down() {
                break;
            }
            handlers.retain(|h| !h.is_finished());
            let session = Arc::clone(&self.session);
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &session, &shared);
            }));
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

/// Serves one connection until the peer disconnects, a frame is
/// malformed, or shutdown completes. Never panics on wire input; every
/// exit path closes the socket.
fn handle_connection(mut stream: TcpStream, session: &Session, shared: &Shared) {
    if stream.set_read_timeout(Some(shared.config.poll)).is_err() {
        return;
    }
    shared.metrics.connections.inc();
    loop {
        let request = match read_frame::<Request>(&mut stream, ArtifactKind::NetRequest) {
            Ok(request) => request,
            Err(FrameError::IdleTimeout) => {
                if shared.is_shutting_down() {
                    return;
                }
                continue;
            }
            Err(FrameError::Disconnected) | Err(FrameError::Io(_)) => return,
            Err(error @ (FrameError::Decode(_) | FrameError::Oversized { .. })) => {
                // A damaged frame poisons the stream (framing is lost),
                // so answer once and drop the connection.
                shared.metrics.malformed.inc();
                let reply = Response::Malformed {
                    detail: error.to_string(),
                };
                let _ = write_frame(&mut stream, ArtifactKind::NetResponse, &reply);
                return;
            }
        };
        shared.metrics.frames.inc();
        let response = respond(request, session, shared);
        if write_frame(&mut stream, ArtifactKind::NetResponse, &response).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

/// Computes the reply for one well-formed request.
fn respond(request: Request, session: &Session, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            shared.begin_shutdown();
            Response::ShuttingDown
        }
        Request::Compile(envelope) => {
            if shared.is_shutting_down() {
                return Response::ShuttingDown;
            }
            let arrived = Instant::now();
            if !shared.try_admit() {
                return Response::Busy;
            }
            shared
                .metrics
                .admission_wait
                .observe_micros(arrived.elapsed());
            let handle = session.submit_shared(envelope.into_compile_request());
            let outcome = handle.wait();
            shared.release();
            match outcome {
                Ok(response) => {
                    Response::Compiled(Box::new(CompiledEnvelope::from_response(&response)))
                }
                Err(error) => Response::Error(WireError::from(&error)),
            }
        }
        // Monitoring is never subject to compile admission: a saturated
        // (or draining) server still answers its scrapes.
        Request::Stats => {
            let mut snapshot = session.metrics().snapshot();
            if let Some(extra) = &shared.extra_stats {
                snapshot.merge_from(&extra.snapshot());
            }
            Response::Stats(snapshot)
        }
    }
}
