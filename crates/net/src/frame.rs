//! The wire frame: one `zz_persist` artifact container per message.
//!
//! Every frame on a `zz_net` connection is exactly the byte layout the
//! on-disk artifact store already uses — magic, schema version, kind tag,
//! payload length, FNV-1a checksum, payload (see `zz_persist::codec`) —
//! so the damage-handling guarantees of the persistence layer carry over
//! verbatim: truncated frames, corrupted checksums, wrong magic and
//! stale schema versions all decode to a typed [`FrameError`], never a
//! panic or an unbounded allocation.
//!
//! Reading is stream-oriented: the fixed 28-byte header is read first,
//! validated *before* the payload is allocated (an adversarial length
//! prefix larger than [`MAX_FRAME_PAYLOAD`] is rejected without
//! reserving a byte), then the payload is read and checksummed. A peer
//! that disconnects cleanly *between* frames yields
//! [`FrameError::Disconnected`]; one that dies *mid-frame* yields a
//! decode error — the distinction lets a server tell a finished client
//! from a broken one.

use std::io::{ErrorKind, Read, Write};

use zz_persist::{encode_artifact, fnv1a, ArtifactKind, Decode, DecodeError, Decoder, Encode};

/// Upper bound on a frame payload (16 MiB) — far above any real
/// envelope, far below an allocation that could hurt the server.
pub const MAX_FRAME_PAYLOAD: u64 = 16 << 20;

/// Size of the fixed frame header (the artifact container header).
pub const FRAME_HEADER_LEN: usize = 28;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames (no header
    /// byte had arrived). The normal end of a connection, not damage.
    Disconnected,
    /// The read timed out before any header byte arrived (only with a
    /// read timeout configured on the stream). Idle, not damage: the
    /// caller decides whether to poll again or tear down.
    IdleTimeout,
    /// The underlying transport failed (reset, broken pipe, …).
    Io(std::io::Error),
    /// The header's length prefix exceeds [`MAX_FRAME_PAYLOAD`]; nothing
    /// was allocated.
    Oversized {
        /// The length the header claimed.
        declared: u64,
    },
    /// The frame bytes are damaged or not ours: bad magic, stale schema
    /// version, wrong kind, checksum mismatch, a truncating mid-frame
    /// disconnect, or a payload that violates a type invariant.
    Decode(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Disconnected => write!(f, "peer disconnected between frames"),
            FrameError::IdleTimeout => write!(f, "read timed out waiting for a frame"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Oversized { declared } => write!(
                f,
                "frame claims {declared} payload bytes (limit {MAX_FRAME_PAYLOAD})"
            ),
            FrameError::Decode(e) => write!(f, "frame failed to decode: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

/// Reads exactly `buf.len()` bytes. `start_of_frame` selects how a clean
/// EOF or an idle timeout before the first byte is classified.
fn read_exactly(
    stream: &mut impl Read,
    buf: &mut [u8],
    start_of_frame: bool,
) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if start_of_frame && got == 0 {
                    FrameError::Disconnected
                } else {
                    FrameError::Decode(DecodeError::UnexpectedEof)
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // A timeout with nothing consumed is an idle poll tick;
                // mid-frame it just means a slow peer — keep reading.
                if start_of_frame && got == 0 {
                    return Err(FrameError::IdleTimeout);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one value as a framed container of the given kind.
///
/// # Errors
///
/// Returns the transport error if the stream rejects the bytes.
pub fn write_frame<T: Encode + ?Sized>(
    stream: &mut impl Write,
    kind: ArtifactKind,
    value: &T,
) -> std::io::Result<()> {
    let bytes = encode_artifact(kind, value);
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Reads and validates one frame of the given kind, decoding its payload
/// as `T`.
///
/// # Errors
///
/// Every failure is a typed [`FrameError`]; malformed input never panics
/// and an adversarial length prefix never allocates.
pub fn read_frame<T: Decode>(stream: &mut impl Read, kind: ArtifactKind) -> Result<T, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exactly(stream, &mut header, true)?;

    if header[0..4] != zz_persist::codec::MAGIC {
        return Err(DecodeError::BadMagic.into());
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != zz_persist::SCHEMA_VERSION {
        return Err(DecodeError::VersionMismatch { found: version }.into());
    }
    let tag = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if tag != kind.tag() {
        return Err(DecodeError::KindMismatch { found: tag }.into());
    }
    let declared = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if declared > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized { declared });
    }
    let checksum = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));

    let mut payload = vec![0u8; declared as usize];
    read_exactly(stream, &mut payload, false)?;
    if fnv1a(&payload) != checksum {
        return Err(DecodeError::ChecksumMismatch.into());
    }

    let mut dec = Decoder::new(&payload);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_of(v: u64) -> Vec<u8> {
        encode_artifact(ArtifactKind::NetRequest, &v)
    }

    #[test]
    fn frames_round_trip() {
        let bytes = frame_of(42);
        let mut cursor = Cursor::new(bytes);
        let back: u64 = read_frame(&mut cursor, ArtifactKind::NetRequest).expect("intact frame");
        assert_eq!(back, 42);
    }

    #[test]
    fn clean_eof_between_frames_is_disconnected() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame::<u64>(&mut empty, ArtifactKind::NetRequest),
            Err(FrameError::Disconnected)
        ));
    }

    #[test]
    fn mid_frame_eof_is_a_decode_error_not_a_hang() {
        let bytes = frame_of(42);
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            assert!(
                matches!(
                    read_frame::<u64>(&mut cursor, ArtifactKind::NetRequest),
                    Err(FrameError::Decode(DecodeError::UnexpectedEof))
                ),
                "truncation at {cut} must be UnexpectedEof"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = frame_of(42);
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame::<u64>(&mut cursor, ArtifactKind::NetRequest),
            Err(FrameError::Oversized { declared: u64::MAX })
        ));
    }

    #[test]
    fn wrong_kind_and_magic_and_checksum_fail_typed() {
        let good = frame_of(42);

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_frame::<u64>(&mut Cursor::new(bad), ArtifactKind::NetRequest),
            Err(FrameError::Decode(DecodeError::BadMagic))
        ));

        assert!(matches!(
            read_frame::<u64>(&mut Cursor::new(good.clone()), ArtifactKind::NetResponse),
            Err(FrameError::Decode(DecodeError::KindMismatch { .. }))
        ));

        let mut bad = good;
        *bad.last_mut().expect("non-empty") ^= 1;
        assert!(matches!(
            read_frame::<u64>(&mut Cursor::new(bad), ArtifactKind::NetRequest),
            Err(FrameError::Decode(DecodeError::ChecksumMismatch))
        ));
    }
}
