//! The request/response envelopes carried by the wire frames.
//!
//! A [`Request`] frame carries everything a `zz_service::CompileRequest`
//! needs — the circuit, the full `CompileOptions` knob set, a label and
//! an optional evaluation seed list — and a [`Response`] frame carries
//! the compiled plan plus the cache/latency metadata of the service
//! response, or a typed [`WireError`] mirroring every
//! `zz_service::Error` variant. Both start with [`PROTOCOL_VERSION`], so
//! the envelope schema can evolve independently of the byte codec
//! (`zz_persist::SCHEMA_VERSION` stamps the container) and of the
//! scheduler/pulse enums (which encode as open-ended tags — a new
//! `SchedulerPass` variant ships without a protocol bump).

use std::sync::Arc;

use zz_circuit::Circuit;
use zz_core::batch::DiskStatus;
use zz_core::{CoOptError, CompileOptions, Compiled};
use zz_obs::{saturating_micros, MetricsSnapshot, RequestId};
use zz_persist::{Decode, DecodeError, Decoder, Encode, Encoder};
use zz_service::{CompileRequest, CompileResponse, Error, EvalSpec};

/// Version stamp of the envelope schema — the *meaning* of the fields
/// below. Bump when fields are added, removed or reinterpreted; the
/// decoder rejects other versions with a typed error, so old clients
/// fail fast instead of misreading. (New request/response *variants*
/// ride the open tag space without a bump — the `Stats` pair did — but
/// v2 also added [`CompiledEnvelope::request_id`], a field change.)
///
/// History: v1 — initial protocol; v2 — `CompiledEnvelope` gained
/// `request_id`, and the `Stats` request/response pair was added.
pub const PROTOCOL_VERSION: u32 = 2;

fn check_protocol(r: &mut Decoder<'_>) -> Result<(), DecodeError> {
    let found = r.u32()?;
    if found != PROTOCOL_VERSION {
        return Err(DecodeError::Invalid("protocol version"));
    }
    Ok(())
}

/// One compile job as it crosses the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileEnvelope {
    /// The logical circuit to compile.
    pub circuit: Circuit,
    /// The full option set (method, scheduler, α, k, requirement).
    pub options: CompileOptions,
    /// Label echoed on the response and attached to any error.
    pub label: String,
    /// When set, the server also evaluates fidelity, averaging the
    /// target's noise over these crosstalk seeds. (Decoherence is not
    /// part of protocol v1.)
    pub eval_seeds: Option<Vec<u64>>,
}

impl CompileEnvelope {
    /// An envelope with default options and the figure-style label.
    pub fn new(circuit: Circuit) -> Self {
        let options = CompileOptions::default();
        CompileEnvelope {
            circuit,
            label: options.default_label(),
            options,
            eval_seeds: None,
        }
    }

    /// Replaces the option set.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Requests fidelity evaluation over the given crosstalk seeds.
    pub fn with_eval_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.eval_seeds = Some(seeds);
        self
    }

    /// Converts into the service-layer request the session executes.
    /// Wire requests never carry the per-pass trace (it is not part of
    /// the protocol), which also keeps their coalescing keys uniform.
    pub fn into_compile_request(self) -> CompileRequest {
        let mut request = CompileRequest::shared(Arc::new(self.circuit))
            .with_options(self.options)
            .with_label(self.label)
            .without_trace();
        if let Some(seeds) = self.eval_seeds {
            request = request.with_eval(EvalSpec::paper_default().with_seeds(seeds));
        }
        request
    }
}

impl Encode for CompileEnvelope {
    fn encode(&self, out: &mut Encoder) {
        self.circuit.encode(out);
        self.options.method.encode(out);
        self.options.scheduler.encode(out);
        self.options.alpha.encode(out);
        self.options.k.encode(out);
        self.options.requirement.encode(out);
        out.str(&self.label);
        self.eval_seeds.encode(out);
    }
}

impl Decode for CompileEnvelope {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let circuit = Circuit::decode(r)?;
        let method = Decode::decode(r)?;
        let scheduler = Decode::decode(r)?;
        let alpha = Decode::decode(r)?;
        let k = Decode::decode(r)?;
        let requirement = Decode::decode(r)?;
        let label = r.str()?;
        let eval_seeds = Decode::decode(r)?;
        Ok(CompileEnvelope {
            circuit,
            options: CompileOptions {
                method,
                scheduler,
                alpha,
                k,
                requirement,
            },
            label,
            eval_seeds,
        })
    }
}

/// One client→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Compile (and optionally evaluate) one circuit.
    Compile(CompileEnvelope),
    /// Ask the server to shut down gracefully: stop accepting, drain
    /// in-flight jobs, answer buffered requests, then exit.
    Shutdown,
    /// Scrape the server's live metrics registry; answered with
    /// [`Response::Stats`]. Never subject to compile admission — a
    /// saturated server still answers its monitoring.
    Stats,
}

impl Encode for Request {
    fn encode(&self, out: &mut Encoder) {
        out.u32(PROTOCOL_VERSION);
        match self {
            Request::Ping => out.u8(0),
            Request::Compile(envelope) => {
                out.u8(1);
                envelope.encode(out);
            }
            Request::Shutdown => out.u8(2),
            Request::Stats => out.u8(3),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        check_protocol(r)?;
        Ok(match r.u8()? {
            0 => Request::Ping,
            1 => Request::Compile(CompileEnvelope::decode(r)?),
            2 => Request::Shutdown,
            3 => Request::Stats,
            _ => return Err(DecodeError::Invalid("request tag")),
        })
    }
}

/// A successful compile as it crosses the wire: the service response
/// minus the (unserialized) per-pass trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledEnvelope {
    /// The id the server's session minted for this execution — quote it
    /// to correlate with the server's event log and metrics, or to join
    /// a client-side span onto the server-side trace. Coalesced requests
    /// report their leader's id.
    pub request_id: RequestId,
    /// The label the job ran under (a coalesced request reports its
    /// leader's label — see `Session::submit_shared`).
    pub label: String,
    /// The compiled plan, bit-identical to an in-process compile.
    pub compiled: Compiled,
    /// Whether routing was served from the session memo or disk.
    pub route_cache_hit: bool,
    /// Disk-store disposition of the whole plan.
    pub disk: DiskStatus,
    /// Server-side compile (and eval) wall time, µs.
    pub compile_micros: u64,
    /// Server-side queue wait before a worker picked the job up, µs.
    pub queue_micros: u64,
    /// Evaluated fidelity, when the request carried eval seeds.
    pub fidelity: Option<f64>,
}

impl CompiledEnvelope {
    /// Wraps a service response for the wire.
    pub fn from_response(response: &CompileResponse) -> Self {
        CompiledEnvelope {
            request_id: response.request_id,
            label: response.label.clone(),
            compiled: response.compiled.clone(),
            route_cache_hit: response.route_cache_hit,
            disk: response.disk,
            // Saturate, never `as`-truncate: a pathological wait must
            // read as "huge", not wrap to a small number.
            compile_micros: saturating_micros(response.compile_time),
            queue_micros: saturating_micros(response.queue_wait),
            fidelity: response.fidelity,
        }
    }
}

fn disk_tag(disk: DiskStatus) -> u8 {
    match disk {
        DiskStatus::NotConsulted => 0,
        DiskStatus::Hit => 1,
        DiskStatus::Miss => 2,
    }
}

fn disk_from_tag(tag: u8) -> Result<DiskStatus, DecodeError> {
    Ok(match tag {
        0 => DiskStatus::NotConsulted,
        1 => DiskStatus::Hit,
        2 => DiskStatus::Miss,
        _ => return Err(DecodeError::Invalid("disk status tag")),
    })
}

impl Encode for CompiledEnvelope {
    fn encode(&self, out: &mut Encoder) {
        self.request_id.encode(out);
        out.str(&self.label);
        self.compiled.encode(out);
        out.bool(self.route_cache_hit);
        out.u8(disk_tag(self.disk));
        out.u64(self.compile_micros);
        out.u64(self.queue_micros);
        self.fidelity.encode(out);
    }
}

impl Decode for CompiledEnvelope {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CompiledEnvelope {
            request_id: RequestId::decode(r)?,
            label: r.str()?,
            compiled: Compiled::decode(r)?,
            route_cache_hit: r.bool()?,
            disk: disk_from_tag(r.u8()?)?,
            compile_micros: r.u64()?,
            queue_micros: r.u64()?,
            fidelity: Decode::decode(r)?,
        })
    }
}

/// A `zz_service::Error` as it crosses the wire — every variant of the
/// service taxonomy has a wire twin, so remote callers see the same
/// typed failures in-process callers do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The circuit does not fit the target device.
    Validate {
        /// The failing job's label.
        job: String,
        /// Qubits the circuit needs.
        needed: u64,
        /// Qubits the device has.
        available: u64,
    },
    /// Routing failed (a disconnected coupling graph surfaced as
    /// `CoOptError::RouteUnreachable`, or a pluggable backend failure).
    Route {
        /// The failing job's label.
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// Calibration failed (hardware-backed sources only).
    Calibration {
        /// The failing job's label.
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// The persistence layer rejected its configuration.
    Persist {
        /// What went wrong.
        detail: String,
    },
    /// Fidelity evaluation failed.
    Eval {
        /// The failing job's label.
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// A session worker died or the queue was torn down mid-job.
    Worker {
        /// The failing job's label.
        job: String,
        /// What went wrong.
        detail: String,
    },
}

impl From<&Error> for WireError {
    fn from(e: &Error) -> Self {
        match e {
            Error::Validate { job, source } => match source {
                CoOptError::CircuitTooLarge { needed, available } => WireError::Validate {
                    job: job.clone(),
                    needed: *needed as u64,
                    available: *available as u64,
                },
                // The service maps RouteUnreachable to Error::Route before
                // it ever reaches the wire; if a future variant lands in
                // Validate anyway, degrade to the routing detail string
                // rather than failing to serialize.
                other => WireError::Route {
                    job: job.clone(),
                    detail: other.to_string(),
                },
            },
            Error::Route { job, detail } => WireError::Route {
                job: job.clone(),
                detail: detail.clone(),
            },
            Error::Calibration { job, detail } => WireError::Calibration {
                job: job.clone(),
                detail: detail.clone(),
            },
            Error::Persist { detail } => WireError::Persist {
                detail: detail.clone(),
            },
            Error::Eval { job, detail } => WireError::Eval {
                job: job.clone(),
                detail: detail.clone(),
            },
            Error::Worker { job, detail } => WireError::Worker {
                job: job.clone(),
                detail: detail.clone(),
            },
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Validate {
                job,
                needed,
                available,
            } => Error::Validate {
                job,
                source: CoOptError::CircuitTooLarge {
                    needed: needed as usize,
                    available: available as usize,
                },
            },
            WireError::Route { job, detail } => Error::Route { job, detail },
            WireError::Calibration { job, detail } => Error::Calibration { job, detail },
            WireError::Persist { detail } => Error::Persist { detail },
            WireError::Eval { job, detail } => Error::Eval { job, detail },
            WireError::Worker { job, detail } => Error::Worker { job, detail },
        }
    }
}

impl Encode for WireError {
    fn encode(&self, out: &mut Encoder) {
        match self {
            WireError::Validate {
                job,
                needed,
                available,
            } => {
                out.u8(0);
                out.str(job);
                out.u64(*needed);
                out.u64(*available);
            }
            WireError::Route { job, detail } => {
                out.u8(1);
                out.str(job);
                out.str(detail);
            }
            WireError::Calibration { job, detail } => {
                out.u8(2);
                out.str(job);
                out.str(detail);
            }
            WireError::Persist { detail } => {
                out.u8(3);
                out.str(detail);
            }
            WireError::Eval { job, detail } => {
                out.u8(4);
                out.str(job);
                out.str(detail);
            }
            WireError::Worker { job, detail } => {
                out.u8(5);
                out.str(job);
                out.str(detail);
            }
        }
    }
}

impl Decode for WireError {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => WireError::Validate {
                job: r.str()?,
                needed: r.u64()?,
                available: r.u64()?,
            },
            1 => WireError::Route {
                job: r.str()?,
                detail: r.str()?,
            },
            2 => WireError::Calibration {
                job: r.str()?,
                detail: r.str()?,
            },
            3 => WireError::Persist { detail: r.str()? },
            4 => WireError::Eval {
                job: r.str()?,
                detail: r.str()?,
            },
            5 => WireError::Worker {
                job: r.str()?,
                detail: r.str()?,
            },
            _ => return Err(DecodeError::Invalid("wire error tag")),
        })
    }
}

/// One server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The compile succeeded. (Boxed: the envelope dwarfs every other
    /// variant.)
    Compiled(Box<CompiledEnvelope>),
    /// The admission queue is full — backpressure, not failure. Retry
    /// after a backoff; nothing was enqueued.
    Busy,
    /// The compile failed with a typed service error.
    Error(WireError),
    /// Answer to [`Request::Shutdown`]: the server is draining.
    ShuttingDown,
    /// The server could not decode the client's frame (the connection
    /// closes after this reply).
    Malformed {
        /// What the frame reader reported.
        detail: String,
    },
    /// Answer to [`Request::Stats`]: a consistent snapshot of the
    /// server's metrics registry at scrape time.
    Stats(MetricsSnapshot),
}

impl Encode for Response {
    fn encode(&self, out: &mut Encoder) {
        out.u32(PROTOCOL_VERSION);
        match self {
            Response::Pong => out.u8(0),
            Response::Compiled(envelope) => {
                out.u8(1);
                envelope.encode(out);
            }
            Response::Busy => out.u8(2),
            Response::Error(error) => {
                out.u8(3);
                error.encode(out);
            }
            Response::ShuttingDown => out.u8(4),
            Response::Malformed { detail } => {
                out.u8(5);
                out.str(detail);
            }
            Response::Stats(snapshot) => {
                out.u8(6);
                snapshot.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        check_protocol(r)?;
        Ok(match r.u8()? {
            0 => Response::Pong,
            1 => Response::Compiled(Box::new(CompiledEnvelope::decode(r)?)),
            2 => Response::Busy,
            3 => Response::Error(WireError::decode(r)?),
            4 => Response::ShuttingDown,
            5 => Response::Malformed { detail: r.str()? },
            6 => Response::Stats(MetricsSnapshot::decode(r)?),
            _ => return Err(DecodeError::Invalid("response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::Gate;
    use zz_persist::roundtrip;
    use zz_service::{PulseMethod, SchedulerKind};

    fn envelope() -> CompileEnvelope {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
        CompileEnvelope::new(circuit)
            .with_options(
                CompileOptions::new(PulseMethod::Dcg, SchedulerKind::ParSched).with_alpha(0.25),
            )
            .with_label("bell")
            .with_eval_seeds(vec![11, 23])
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            Request::Compile(envelope()),
            Request::Shutdown,
            Request::Stats,
        ] {
            assert_eq!(roundtrip(&request).expect("round trips"), request);
        }
    }

    #[test]
    fn stats_responses_round_trip() {
        let registry = zz_obs::Registry::new();
        registry.counter("net.frames").add(3);
        registry.gauge("net.inflight").set(-1);
        registry.histogram("session.queue.wait_us").observe(42);
        let response = Response::Stats(registry.snapshot());
        assert_eq!(roundtrip(&response).expect("round trips"), response);
    }

    #[test]
    fn every_service_error_variant_round_trips_through_the_wire() {
        let errors = [
            Error::Validate {
                job: "j".into(),
                source: CoOptError::CircuitTooLarge {
                    needed: 9,
                    available: 4,
                },
            },
            Error::Route {
                job: "j".into(),
                detail: "d".into(),
            },
            Error::Calibration {
                job: "j".into(),
                detail: "d".into(),
            },
            Error::Persist { detail: "d".into() },
            Error::Eval {
                job: "j".into(),
                detail: "d".into(),
            },
            Error::Worker {
                job: "j".into(),
                detail: "d".into(),
            },
        ];
        for error in errors {
            let wire = WireError::from(&error);
            let back: Error = roundtrip(&wire).expect("round trips").into();
            assert_eq!(back, error);
        }
    }

    #[test]
    fn protocol_version_mismatch_is_typed() {
        let mut enc = Encoder::new();
        Request::Ping.encode(&mut enc);
        let mut bytes = enc.finish();
        bytes[0..4].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            Request::decode(&mut dec).unwrap_err(),
            DecodeError::Invalid("protocol version")
        );
    }

    #[test]
    fn envelope_becomes_an_equivalent_service_request() {
        let request = envelope().into_compile_request();
        assert_eq!(request.label, "bell");
        assert_eq!(request.options.alpha, Some(0.25));
        assert!(!request.trace, "wire requests never carry the trace");
        assert_eq!(
            request.eval.expect("seeds were set").crosstalk_seeds,
            vec![11, 23]
        );
    }
}
