//! `zz_pool` — the workspace's one worker-pool primitive.
//!
//! Before this crate, the same two idioms were implemented three times:
//! `zz_core::batch` and `zz_sim::pool` each carried their own
//! order-preserving scoped fan-out (the dependency arrow between those
//! crates prevents sharing), and `zz_service` carried its own long-lived
//! task queue. All three now live here, at the bottom of the dependency
//! graph:
//!
//! * [`parallel_map`] — run `f(0..count)` on up to `threads` scoped OS
//!   threads, output in input order. Results are **bit-identical for any
//!   thread count**: work distribution only decides *who* computes an
//!   index, never *what* is computed or where it lands.
//! * [`TaskPool`] — a fixed set of long-lived workers draining one shared
//!   queue of boxed closures; submissions from any number of callers
//!   interleave, and dropping the pool drains outstanding tasks before
//!   joining.
//! * [`default_threads`] — the pool width used when callers don't pick
//!   one (every available core).
//!
//! `zz_core::batch` re-exports [`parallel_map`]/[`default_threads`] so
//! existing call sites keep their paths; `zz_sim`'s trajectory fan-out,
//! the batch engine, the service session workers and the `zz_net` load
//! harness all schedule through this crate.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Runs `f(0..count)` on up to `threads` OS threads, preserving input
/// order in the output. With `threads <= 1` (or a single item) the work
/// runs inline on the calling thread — same results, no spawn overhead.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(
    count: usize,
    threads: usize,
    f: F,
) -> Vec<T> {
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<T>>> = results.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                **slots[i].lock().expect("no poisoned slots") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index computed"))
        .collect()
}

/// The pool width used when callers don't pick one: every available core
/// (4 when the core count is unavailable).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
}

/// A unit of work for a [`TaskPool`].
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of long-lived worker threads draining one shared task
/// queue.
///
/// Unlike the scoped per-call fan-out of [`parallel_map`], these workers
/// live as long as the pool: submissions from any number of
/// [`execute`](TaskPool::execute) calls interleave on one queue, so a
/// service can keep accepting jobs while earlier ones still run. Tasks
/// are plain boxed closures; result plumbing (handles, ordering) belongs
/// to the caller. Dropping the pool closes the queue and joins every
/// worker — outstanding tasks finish first.
#[derive(Debug)]
pub struct TaskPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns a pool of `threads` workers (clamped to ≥ 1), named
    /// `zz-pool-worker-{i}`.
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("zz-pool-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a worker thread")
            })
            .collect();
        TaskPool {
            sender: Some(sender),
            workers,
        }
    }

    /// The pool's worker count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task; returns `false` when the queue is already torn
    /// down (the pool is being dropped).
    pub fn execute(&self, task: Task) -> bool {
        match &self.sender {
            Some(sender) => sender.send(task).is_ok(),
            None => false,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Task>>) {
    loop {
        // Hold the queue lock only for the dequeue, never while running.
        let task = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break, // a sibling panicked holding the lock
        };
        match task {
            Ok(task) => task(),
            Err(_) => break, // queue closed: the pool is shutting down
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.sender.take(); // close the queue: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        for threads in [1, 2, 8] {
            let out = parallel_map(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_is_thread_count_deterministic() {
        // A floating-point reduction whose result would drift if the
        // output order (and therefore any sequential reduction over it)
        // depended on scheduling.
        let reference: Vec<f64> = parallel_map(101, 1, |i| (i as f64 * 0.7).sin());
        for threads in [2, 3, 8, 64] {
            let out = parallel_map(101, threads, |i| (i as f64 * 0.7).sin());
            let same = out
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "results must be bit-identical at {threads} threads");
        }
    }

    #[test]
    fn task_pool_drop_drains_outstanding_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new(3);
            assert_eq!(pool.threads(), 3);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                assert!(pool.execute(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })));
            }
        } // drop joins the workers
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn task_pool_width_is_clamped() {
        assert_eq!(TaskPool::new(0).threads(), 1);
    }
}
