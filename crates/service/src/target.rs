//! [`Target`]: everything the service knows about one device, in one
//! value.
//!
//! Before the service layer, device state was wired ad hoc at every
//! entry point: the topology through `CoOptimizerBuilder::topology` (or
//! `evaluate::device_for`), the crosstalk strength through `EvalConfig`,
//! calibration through whichever `CalibCache` a caller happened to hold,
//! and persistence through `BatchCompilerBuilder::store`. A [`Target`]
//! bundles all four — topology, noise characterization, calibration
//! source and on-disk artifact store — so a [`crate::Session`] (and
//! every request it serves) draws from one coherent description of the
//! machine.

use std::sync::Arc;

use zz_core::calib::CalibCache;
use zz_core::evaluate::try_device_for;
use zz_persist::ArtifactStore;
use zz_sched::GateDurations;
use zz_topology::Topology;

use crate::error::Error;

/// The device a [`crate::Session`] compiles for: topology, ZZ noise
/// characterization, calibration source and optional artifact store.
///
/// **Compile size vs evaluation size.** A target's device may be as large
/// as topology construction allows (hundreds to thousands of qubits):
/// routing and scheduling are polynomial, so compilation through a
/// session works at any of these sizes, and the schedule's
/// [`zz_sched::PlanSummary`] metrics serve as the at-scale fidelity
/// proxy. Only *density-matrix evaluation* is exponential and stays
/// capped at [`zz_core::evaluate::MAX_EVAL_QUBITS`] — a request carrying
/// an `EvalSpec` on a larger device fails at evaluation time with a
/// typed `Error::Eval`, never at target construction.
///
/// # Example
///
/// ```
/// use zz_service::Target;
///
/// let target = Target::paper_default();
/// assert_eq!(target.topology().qubit_count(), 12); // the 3×4 grid
///
/// let small = Target::for_qubits(6)?; // absorbs evaluate::device_for
/// assert_eq!(small.topology().qubit_count(), 6);   // 2×3
///
/// // Beyond the paper's 12-qubit evaluation ceiling, targets scale to
/// // near-square grids (compile-only; evaluation would be rejected).
/// let large = Target::for_qubits(100)?;
/// assert_eq!(large.topology().qubit_count(), 100); // 10×10
///
/// // 1000-qubit-class heavy-hex devices build directly.
/// let hex = Target::heavy_hex(21)?;
/// assert!(hex.topology().qubit_count() > 1000);
/// # Ok::<(), zz_service::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Target {
    topology: Topology,
    lambda_mean: f64,
    lambda_std: f64,
    durations: Option<GateDurations>,
    calib: Option<Arc<CalibCache>>,
    store: Option<Arc<ArtifactStore>>,
}

impl Target {
    /// The paper's device: the 3×4 grid with
    /// `λ ~ N(2π·200 kHz, (2π·50 kHz)²)` crosstalk, process-wide
    /// calibration, no disk store.
    pub fn paper_default() -> Self {
        Target::builder()
            .build()
            .expect("the default target has no failure path")
    }

    /// The smallest grid device holding `n` qubits, with paper-default
    /// noise. Up to 12 qubits this is the paper's evaluation sub-grid
    /// (4 → 2×2, 6 → 2×3, 9 → 3×3, 12 → 3×4); beyond that it is the
    /// smallest near-square grid with at least `n` qubits — compile-only
    /// territory, where fidelity evaluation is replaced by the schedule's
    /// [`zz_sched::PlanSummary`] metrics (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Never fails today (kept fallible for API stability — earlier
    /// releases rejected `n > 12` here, and future builders may attach
    /// failing stores).
    pub fn for_qubits(n: usize) -> Result<Self, Error> {
        let topology = try_device_for(n).unwrap_or_else(|| large_grid_for(n));
        Target::builder().topology(topology).build()
    }

    /// A heavy-hex lattice target of the given distance (IBM-style
    /// large-device topology; `d = 21` exceeds 1000 qubits), with
    /// paper-default noise. Compile-only above
    /// [`zz_core::evaluate::MAX_EVAL_QUBITS`].
    ///
    /// # Errors
    ///
    /// Never fails today (fallible for the same API-stability reason as
    /// [`for_qubits`](Self::for_qubits)).
    pub fn heavy_hex(distance: usize) -> Result<Self, Error> {
        Target::builder()
            .topology(Topology::heavy_hex(distance))
            .build()
    }

    /// Starts building a target (defaults: the paper device of
    /// [`Target::paper_default`]).
    pub fn builder() -> TargetBuilder {
        TargetBuilder::default()
    }

    /// The device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mean ZZ crosstalk strength (rad/ns).
    pub fn lambda_mean(&self) -> f64 {
        self.lambda_mean
    }

    /// ZZ crosstalk standard deviation (rad/ns).
    pub fn lambda_std(&self) -> f64 {
        self.lambda_std
    }

    /// Device-measured gate-duration override; `None` = each pulse
    /// method's library durations.
    pub fn durations(&self) -> Option<&GateDurations> {
        self.durations.as_ref()
    }

    /// The calibration cache serving this target's residual lookups (the
    /// process-wide [`CalibCache::global`] unless the builder installed
    /// a dedicated one).
    pub fn calib(&self) -> &CalibCache {
        match &self.calib {
            Some(cache) => cache,
            None => CalibCache::global(),
        }
    }

    /// The dedicated calibration cache, when one was installed.
    pub(crate) fn calib_arc(&self) -> Option<Arc<CalibCache>> {
        self.calib.clone()
    }

    /// The on-disk artifact store backing this target, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    pub(crate) fn store_arc(&self) -> Option<Arc<ArtifactStore>> {
        self.store.clone()
    }
}

/// Builder for [`Target`].
#[derive(Debug, Default)]
pub struct TargetBuilder {
    topology: Option<Topology>,
    lambda_mean: Option<f64>,
    lambda_std: Option<f64>,
    durations: Option<GateDurations>,
    calib: Option<Arc<CalibCache>>,
    store: Option<Arc<ArtifactStore>>,
    store_dir: Option<std::path::PathBuf>,
}

impl TargetBuilder {
    /// Sets the device topology (default: the paper's 3×4 grid).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the ZZ noise characterization (default: the paper's
    /// `λ ~ N(2π·200 kHz, (2π·50 kHz)²)`).
    pub fn noise(mut self, lambda_mean: f64, lambda_std: f64) -> Self {
        self.lambda_mean = Some(lambda_mean);
        self.lambda_std = Some(lambda_std);
        self
    }

    /// Overrides the gate durations for every compile on this target
    /// (default: each pulse method's library durations).
    pub fn durations(mut self, durations: GateDurations) -> Self {
        self.durations = Some(durations);
        self
    }

    /// Serves calibration from a dedicated cache instead of the
    /// process-wide [`CalibCache::global`] — multi-tenant services and
    /// tests isolate per-target calibration state through this.
    pub fn calib_cache(mut self, cache: Arc<CalibCache>) -> Self {
        self.calib = Some(cache);
        self
    }

    /// Backs the target with an already-open artifact store.
    pub fn store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Backs the target with an on-disk store rooted at `dir`. Unlike
    /// the silently-degrading [`ArtifactStore::at`], the directory is
    /// probed at [`build`](Self::build) time and an uncreatable or
    /// unwritable root is a typed [`Error::Persist`].
    pub fn store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Backs the target with the store named by the `ZZ_CACHE_DIR`
    /// environment variable; a no-op when the variable is unset or
    /// empty. (The environment opt-in keeps the silent-degrade policy
    /// of the legacy binaries: an unusable directory falls back to
    /// in-memory caching rather than failing the build.)
    pub fn store_from_env(mut self) -> Self {
        if let Some(store) = ArtifactStore::from_env() {
            self.store = Some(Arc::new(store));
        }
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] when a [`store_dir`](Self::store_dir)
    /// root cannot be created or written.
    pub fn build(self) -> Result<Target, Error> {
        let store = match self.store_dir {
            Some(dir) => {
                probe_writable(&dir)?;
                Some(Arc::new(ArtifactStore::at(dir)))
            }
            None => self.store,
        };
        Ok(Target {
            topology: self.topology.unwrap_or_else(|| Topology::grid(3, 4)),
            lambda_mean: self.lambda_mean.unwrap_or_else(|| zz_sim::khz(200.0)),
            lambda_std: self.lambda_std.unwrap_or_else(|| zz_sim::khz(50.0)),
            durations: self.durations,
            calib: self.calib,
            store,
        })
    }
}

/// The smallest near-square grid with at least `n` qubits: rows is the
/// integer square root of `n`, columns whatever covers the remainder
/// (100 → 10×10, 1000 → 31×33).
fn large_grid_for(n: usize) -> Topology {
    let n = n.max(1);
    let rows = ((n as f64).sqrt().floor() as usize).max(1);
    let cols = n.div_ceil(rows);
    Topology::grid(rows, cols)
}

/// Verifies that `dir` exists (creating it if needed) and accepts a
/// write, so a misconfigured cache root fails target construction with a
/// typed error instead of silently degrading on every request.
fn probe_writable(dir: &std::path::Path) -> Result<(), Error> {
    std::fs::create_dir_all(dir).map_err(|e| Error::Persist {
        detail: format!("cache root {} cannot be created: {e}", dir.display()),
    })?;
    let probe = dir.join(format!(".zz-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe").map_err(|e| Error::Persist {
        detail: format!("cache root {} is not writable: {e}", dir.display()),
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_qubits_matches_the_paper_devices() {
        for (n, qubits) in [(1, 4), (4, 4), (6, 6), (7, 9), (9, 9), (10, 12), (12, 12)] {
            assert_eq!(
                Target::for_qubits(n)
                    .expect("fits")
                    .topology()
                    .qubit_count(),
                qubits,
                "n = {n}"
            );
        }
    }

    #[test]
    fn large_targets_build_near_square_grids() {
        for (n, qubits) in [(13, 15), (100, 100), (500, 506), (1000, 1023)] {
            let target = Target::for_qubits(n).expect("grids always build");
            assert!(
                target.topology().qubit_count() >= n,
                "n = {n}: got {}",
                target.topology().qubit_count()
            );
            assert_eq!(target.topology().qubit_count(), qubits, "n = {n}");
        }
    }

    #[test]
    fn heavy_hex_targets_reach_a_thousand_qubits() {
        let target = Target::heavy_hex(21).expect("builds");
        assert!(target.topology().qubit_count() >= 1000);
        assert!(target.topology().name().starts_with("heavy-hex"));
    }

    #[test]
    fn unwritable_store_dir_is_a_persist_error() {
        // A path *under a regular file* can never be created.
        let file = std::env::temp_dir().join(format!("zz-target-probe-{}", std::process::id()));
        std::fs::write(&file, b"occupied").expect("temp file");
        let result = Target::builder().store_dir(file.join("sub")).build();
        assert!(matches!(result, Err(Error::Persist { .. })), "{result:?}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn writable_store_dir_builds() {
        let dir = std::env::temp_dir().join(format!("zz-target-store-{}", std::process::id()));
        let target = Target::builder().store_dir(&dir).build().expect("writable");
        assert!(target.store().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
