//! [`Target`]: everything the service knows about one device, in one
//! value.
//!
//! Before the service layer, device state was wired ad hoc at every
//! entry point: the topology through `CoOptimizerBuilder::topology` (or
//! `evaluate::device_for`), the crosstalk strength through `EvalConfig`,
//! calibration through whichever `CalibCache` a caller happened to hold,
//! and persistence through `BatchCompilerBuilder::store`. A [`Target`]
//! bundles all four — topology, noise characterization, calibration
//! source and on-disk artifact store — so a [`crate::Session`] (and
//! every request it serves) draws from one coherent description of the
//! machine.

use std::sync::Arc;

use zz_core::calib::CalibCache;
use zz_core::evaluate::{try_device_for, MAX_EVAL_QUBITS};
use zz_core::CoOptError;
use zz_persist::ArtifactStore;
use zz_sched::GateDurations;
use zz_topology::Topology;

use crate::error::Error;

/// The device a [`crate::Session`] compiles for: topology, ZZ noise
/// characterization, calibration source and optional artifact store.
///
/// # Example
///
/// ```
/// use zz_service::Target;
///
/// let target = Target::paper_default();
/// assert_eq!(target.topology().qubit_count(), 12); // the 3×4 grid
///
/// let small = Target::for_qubits(6)?; // absorbs evaluate::device_for
/// assert_eq!(small.topology().qubit_count(), 6);   // 2×3
/// assert!(Target::for_qubits(64).is_err());        // typed, no panic
/// # Ok::<(), zz_service::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Target {
    topology: Topology,
    lambda_mean: f64,
    lambda_std: f64,
    durations: Option<GateDurations>,
    calib: Option<Arc<CalibCache>>,
    store: Option<Arc<ArtifactStore>>,
}

impl Target {
    /// The paper's device: the 3×4 grid with
    /// `λ ~ N(2π·200 kHz, (2π·50 kHz)²)` crosstalk, process-wide
    /// calibration, no disk store.
    pub fn paper_default() -> Self {
        Target::builder()
            .build()
            .expect("the default target has no failure path")
    }

    /// The smallest paper evaluation sub-grid holding `n` qubits
    /// (4 → 2×2, 6 → 2×3, 9 → 3×3, 12 → 3×4), with paper-default noise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Validate`] when `n` exceeds the paper's largest
    /// device (12 qubits) — the panic of the legacy
    /// `evaluate::device_for`, made typed.
    pub fn for_qubits(n: usize) -> Result<Self, Error> {
        let topology = try_device_for(n).ok_or_else(|| Error::Validate {
            job: "target".into(),
            source: CoOptError::CircuitTooLarge {
                needed: n,
                available: MAX_EVAL_QUBITS,
            },
        })?;
        Target::builder().topology(topology).build()
    }

    /// Starts building a target (defaults: the paper device of
    /// [`Target::paper_default`]).
    pub fn builder() -> TargetBuilder {
        TargetBuilder::default()
    }

    /// The device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mean ZZ crosstalk strength (rad/ns).
    pub fn lambda_mean(&self) -> f64 {
        self.lambda_mean
    }

    /// ZZ crosstalk standard deviation (rad/ns).
    pub fn lambda_std(&self) -> f64 {
        self.lambda_std
    }

    /// Device-measured gate-duration override; `None` = each pulse
    /// method's library durations.
    pub fn durations(&self) -> Option<&GateDurations> {
        self.durations.as_ref()
    }

    /// The calibration cache serving this target's residual lookups (the
    /// process-wide [`CalibCache::global`] unless the builder installed
    /// a dedicated one).
    pub fn calib(&self) -> &CalibCache {
        match &self.calib {
            Some(cache) => cache,
            None => CalibCache::global(),
        }
    }

    /// The dedicated calibration cache, when one was installed.
    pub(crate) fn calib_arc(&self) -> Option<Arc<CalibCache>> {
        self.calib.clone()
    }

    /// The on-disk artifact store backing this target, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    pub(crate) fn store_arc(&self) -> Option<Arc<ArtifactStore>> {
        self.store.clone()
    }
}

/// Builder for [`Target`].
#[derive(Debug, Default)]
pub struct TargetBuilder {
    topology: Option<Topology>,
    lambda_mean: Option<f64>,
    lambda_std: Option<f64>,
    durations: Option<GateDurations>,
    calib: Option<Arc<CalibCache>>,
    store: Option<Arc<ArtifactStore>>,
    store_dir: Option<std::path::PathBuf>,
}

impl TargetBuilder {
    /// Sets the device topology (default: the paper's 3×4 grid).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the ZZ noise characterization (default: the paper's
    /// `λ ~ N(2π·200 kHz, (2π·50 kHz)²)`).
    pub fn noise(mut self, lambda_mean: f64, lambda_std: f64) -> Self {
        self.lambda_mean = Some(lambda_mean);
        self.lambda_std = Some(lambda_std);
        self
    }

    /// Overrides the gate durations for every compile on this target
    /// (default: each pulse method's library durations).
    pub fn durations(mut self, durations: GateDurations) -> Self {
        self.durations = Some(durations);
        self
    }

    /// Serves calibration from a dedicated cache instead of the
    /// process-wide [`CalibCache::global`] — multi-tenant services and
    /// tests isolate per-target calibration state through this.
    pub fn calib_cache(mut self, cache: Arc<CalibCache>) -> Self {
        self.calib = Some(cache);
        self
    }

    /// Backs the target with an already-open artifact store.
    pub fn store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Backs the target with an on-disk store rooted at `dir`. Unlike
    /// the silently-degrading [`ArtifactStore::at`], the directory is
    /// probed at [`build`](Self::build) time and an uncreatable or
    /// unwritable root is a typed [`Error::Persist`].
    pub fn store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Backs the target with the store named by the `ZZ_CACHE_DIR`
    /// environment variable; a no-op when the variable is unset or
    /// empty. (The environment opt-in keeps the silent-degrade policy
    /// of the legacy binaries: an unusable directory falls back to
    /// in-memory caching rather than failing the build.)
    pub fn store_from_env(mut self) -> Self {
        if let Some(store) = ArtifactStore::from_env() {
            self.store = Some(Arc::new(store));
        }
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] when a [`store_dir`](Self::store_dir)
    /// root cannot be created or written.
    pub fn build(self) -> Result<Target, Error> {
        let store = match self.store_dir {
            Some(dir) => {
                probe_writable(&dir)?;
                Some(Arc::new(ArtifactStore::at(dir)))
            }
            None => self.store,
        };
        Ok(Target {
            topology: self.topology.unwrap_or_else(|| Topology::grid(3, 4)),
            lambda_mean: self.lambda_mean.unwrap_or_else(|| zz_sim::khz(200.0)),
            lambda_std: self.lambda_std.unwrap_or_else(|| zz_sim::khz(50.0)),
            durations: self.durations,
            calib: self.calib,
            store,
        })
    }
}

/// Verifies that `dir` exists (creating it if needed) and accepts a
/// write, so a misconfigured cache root fails target construction with a
/// typed error instead of silently degrading on every request.
fn probe_writable(dir: &std::path::Path) -> Result<(), Error> {
    std::fs::create_dir_all(dir).map_err(|e| Error::Persist {
        detail: format!("cache root {} cannot be created: {e}", dir.display()),
    })?;
    let probe = dir.join(format!(".zz-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe").map_err(|e| Error::Persist {
        detail: format!("cache root {} is not writable: {e}", dir.display()),
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_qubits_matches_the_paper_devices() {
        for (n, qubits) in [(1, 4), (4, 4), (6, 6), (7, 9), (9, 9), (10, 12), (12, 12)] {
            assert_eq!(
                Target::for_qubits(n)
                    .expect("fits")
                    .topology()
                    .qubit_count(),
                qubits,
                "n = {n}"
            );
        }
    }

    #[test]
    fn oversized_targets_are_typed_errors() {
        match Target::for_qubits(13) {
            Err(Error::Validate { job, source }) => {
                assert_eq!(job, "target");
                assert_eq!(
                    source,
                    CoOptError::CircuitTooLarge {
                        needed: 13,
                        available: 12
                    }
                );
            }
            other => panic!("expected Validate, got {other:?}"),
        }
    }

    #[test]
    fn unwritable_store_dir_is_a_persist_error() {
        // A path *under a regular file* can never be created.
        let file = std::env::temp_dir().join(format!("zz-target-probe-{}", std::process::id()));
        std::fs::write(&file, b"occupied").expect("temp file");
        let result = Target::builder().store_dir(file.join("sub")).build();
        assert!(matches!(result, Err(Error::Persist { .. })), "{result:?}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn writable_store_dir_builds() {
        let dir = std::env::temp_dir().join(format!("zz-target-store-{}", std::process::id()));
        let target = Target::builder().store_dir(&dir).build().expect("writable");
        assert!(target.store().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
