//! [`Session`]: the long-lived compile/evaluate front door.
//!
//! A session is built from one [`Target`] and owns, for its whole
//! lifetime, the machinery every request shares: the worker pool, the
//! routing/native-translation memo, the calibration cache and the
//! optional on-disk artifact store. Callers hand it typed
//! [`CompileRequest`]s — synchronously ([`Session::compile`]) or as
//! non-blocking [`JobHandle`]s ([`Session::submit`] / [`Session::drain`])
//! — and get back [`CompileResponse`]s carrying the compiled plan, the
//! pipeline trace, cache dispositions and (when the request asked for
//! it) the evaluated fidelity. Batch suites, parameter sweeps and figure
//! workloads all go through this one queue.
//!
//! Every failure is a typed [`Error`]; no path panics on user input.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use zz_circuit::Circuit;
use zz_core::batch::{default_threads, DiskStatus, StageStats};
use zz_core::evaluate::{fidelity_of, EvalConfig, MAX_EVAL_QUBITS};
use zz_core::pipeline::{shape_key, CacheDisposition, PassManager, RouteMemo, Stage};
use zz_core::{CompileOptions, Compiled, PipelineTrace};
use zz_obs::{
    saturating_micros, Counter, Event, EventLog, Gauge, Histogram, IdSource, Registry, RequestId,
};
use zz_persist::{fnv1a, fnv1a_mix, Encode, Encoder};
use zz_pool::TaskPool;
use zz_sim::density::Decoherence;
use zz_topology::Topology;

use crate::error::Error;
use crate::target::Target;

/// What to evaluate after a successful compile: the disorder samples to
/// average over and the optional decoherence channel. The crosstalk
/// strength itself comes from the session's [`Target`].
#[derive(Clone, Debug)]
pub struct EvalSpec {
    /// Seeds for the per-coupling crosstalk samples; the reported
    /// fidelity is their mean.
    pub crosstalk_seeds: Vec<u64>,
    /// Optional decoherence: `(model, trajectories, rng seed)`.
    pub decoherence: Option<(Decoherence, usize, u64)>,
}

impl Default for EvalSpec {
    fn default() -> Self {
        EvalSpec::paper_default()
    }
}

impl EvalSpec {
    /// The paper's evaluation: 3 disorder samples, no decoherence.
    pub fn paper_default() -> Self {
        EvalSpec {
            crosstalk_seeds: vec![11, 23, 37],
            decoherence: None,
        }
    }

    /// Replaces the disorder seeds.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.crosstalk_seeds = seeds;
        self
    }

    /// Adds decoherence (`T1 = T2 = t` µs) with the given trajectory
    /// count (trajectories are used only above the exact
    /// density-matrix register size).
    pub fn with_decoherence_us(mut self, t: f64, trajectories: usize) -> Self {
        self.decoherence = Some((Decoherence::equal_us(t), trajectories, 97));
        self
    }

    fn to_config(&self, target: &Target) -> EvalConfig {
        EvalConfig {
            lambda_mean: target.lambda_mean(),
            lambda_std: target.lambda_std(),
            crosstalk_seeds: self.crosstalk_seeds.clone(),
            circuit_seed: 0, // generation happens before the request
            decoherence: self.decoherence,
        }
    }
}

/// One typed request to a [`Session`]: the circuit plus everything about
/// how to compile (and optionally evaluate) it.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// The logical circuit (shared, so sweeps reference one circuit
    /// without copying it).
    pub circuit: Arc<Circuit>,
    /// The pulse/scheduling configuration — the same [`CompileOptions`]
    /// struct the legacy builders carry.
    pub options: CompileOptions,
    /// Per-request device override; `None` compiles onto the session
    /// target's topology.
    pub device: Option<Topology>,
    /// Label attached to the response and to any error.
    pub label: String,
    /// Whether to return the per-pass [`PipelineTrace`] (on by default;
    /// the aggregate [`ServiceReport`] stage statistics need it).
    pub trace: bool,
    /// When set, the worker also evaluates the compiled plan under the
    /// target's noise model and reports
    /// [`CompileResponse::fidelity`].
    pub eval: Option<EvalSpec>,
}

impl CompileRequest {
    /// A request with default options (`Pert+ZZXSched`, engine α/k,
    /// paper requirement, trace on, no evaluation).
    pub fn new(circuit: Circuit) -> Self {
        Self::shared(Arc::new(circuit))
    }

    /// Like [`new`](Self::new) for an already-shared circuit.
    pub fn shared(circuit: Arc<Circuit>) -> Self {
        let options = CompileOptions::default();
        CompileRequest {
            circuit,
            label: options.default_label(),
            options,
            device: None,
            trace: true,
            eval: None,
        }
    }

    /// Replaces the whole option set (also refreshes a label that was
    /// never overridden).
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        if self.label == self.options.default_label() {
            self.label = options.default_label();
        }
        self.options = options;
        self
    }

    /// Overrides the device this request compiles onto.
    pub fn on_device(mut self, device: Topology) -> Self {
        self.device = Some(device);
        self
    }

    /// Overrides the request label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Disables the per-pass trace on the response.
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Requests fidelity evaluation after the compile.
    pub fn with_eval(mut self, eval: EvalSpec) -> Self {
        self.eval = Some(eval);
        self
    }
}

/// The result of one [`CompileRequest`].
#[derive(Clone, Debug)]
pub struct CompileResponse {
    /// The id the session minted for this request — the join key between
    /// client-side spans, the server's event log and the wire envelope.
    /// Coalesced followers share their leader's id (the id names the
    /// execution, not the submission).
    pub request_id: RequestId,
    /// The request's label.
    pub label: String,
    /// The compiled circuit.
    pub compiled: Compiled,
    /// Per-pass instrumentation (present unless the request disabled
    /// it).
    pub trace: Option<PipelineTrace>,
    /// Whether routing/native translation was served from the session
    /// memo or the disk store.
    pub route_cache_hit: bool,
    /// Whether the on-disk store served the whole compiled plan.
    pub disk: DiskStatus,
    /// Wall-clock time compiling (and evaluating, when requested) —
    /// excluding queue wait.
    pub compile_time: Duration,
    /// Time the request waited in the queue before a worker picked it
    /// up (zero for synchronous [`Session::compile`] calls).
    pub queue_wait: Duration,
    /// Mean output-state fidelity under the target's noise model, when
    /// the request carried an [`EvalSpec`].
    pub fidelity: Option<f64>,
}

impl CompileResponse {
    /// Aggregate scheduler metrics of the compiled plan under its
    /// durations — layer count, total duration, mean/max `NQ`/`NC` and
    /// the residual-ZZ weight. This is the fidelity proxy for devices
    /// above the density-matrix evaluation ceiling (where requesting an
    /// [`EvalSpec`] is an [`Error::Eval`]): it is `O(layers)` at any
    /// device size and needs nothing beyond the already-computed plan.
    pub fn plan_metrics(&self) -> zz_sched::PlanSummary {
        self.compiled.plan.summary(&self.compiled.durations)
    }
}

/// A non-blocking handle to a submitted request. Obtain the result with
/// [`wait`](JobHandle::wait), or collect every outstanding handle at
/// once with [`Session::drain`].
#[derive(Debug)]
pub struct JobHandle {
    label: String,
    state: Arc<HandleState>,
}

#[derive(Debug)]
struct HandleState {
    slot: Mutex<Option<Result<CompileResponse, Error>>>,
    ready: Condvar,
}

impl HandleState {
    fn new() -> Self {
        HandleState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<CompileResponse, Error>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<CompileResponse, Error> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.as_ref().expect("filled above").clone()
    }

    /// Like [`wait`](Self::wait), but *moves* the result out when this
    /// state is uniquely owned — the drain path's no-copy fast path for
    /// handles the caller dropped. The slot is refilled with a clone
    /// only when a [`JobHandle`] still exists (so a post-drain `wait`
    /// keeps working).
    fn wait_take(self: &Arc<Self>) -> Result<CompileResponse, Error> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        // Handles are not cloneable, so the count is 1 exactly when the
        // caller dropped its JobHandle: the compiled plan need not be
        // deep-copied for the report.
        if Arc::strong_count(self) == 1 {
            slot.take().expect("filled above")
        } else {
            slot.as_ref().expect("filled above").clone()
        }
    }
}

impl JobHandle {
    /// The label of the submitted request.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Blocks until the worker finishes this request and returns its
    /// result. The result stays available to a later
    /// [`Session::drain`], so waiting on individual handles does not
    /// disturb the aggregate report.
    ///
    /// # Errors
    ///
    /// Returns the job's typed [`Error`] when it failed.
    pub fn wait(&self) -> Result<CompileResponse, Error> {
        self.state.wait()
    }

    /// The result, if the worker already finished (never blocks).
    pub fn poll(&self) -> Option<Result<CompileResponse, Error>> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Aggregate outcome of every request submitted since the previous
/// [`Session::drain`], in submission order.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Per-request results, in submission order.
    pub outcomes: Vec<Result<CompileResponse, Error>>,
    /// Wall-clock time from the first submission of this batch until
    /// every result was available.
    pub wall_time: Duration,
    /// Requests whose routing was served from the session memo or the
    /// disk store.
    pub route_hits: usize,
    /// Requests that had to route.
    pub route_misses: usize,
    /// Requests whose whole compiled plan was served from disk.
    pub disk_hits: usize,
    /// Requests that consulted the disk store and missed.
    pub disk_misses: usize,
    /// Pulse-level calibration measurements that ran during this batch's
    /// window (at most one per pulse method per calibration cache).
    pub calibration_runs: usize,
}

impl ServiceReport {
    /// The successful responses, in submission order.
    pub fn successes(&self) -> impl Iterator<Item = &CompileResponse> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }

    /// Number of failed requests.
    pub fn error_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_err()).count()
    }

    /// Sum of per-request compile (and eval) times.
    pub fn cpu_time(&self) -> Duration {
        self.successes().map(|r| r.compile_time).sum()
    }

    /// Total time requests of this batch spent waiting in the queue.
    pub fn queue_wait(&self) -> Duration {
        self.successes().map(|r| r.queue_wait).sum()
    }

    /// The evaluated fidelities in submission order.
    ///
    /// # Errors
    ///
    /// Returns the first failed request's [`Error`], or [`Error::Eval`]
    /// for a success that carried no evaluation (the request had no
    /// [`EvalSpec`]).
    pub fn fidelities(&self) -> Result<Vec<f64>, Error> {
        self.outcomes
            .iter()
            .map(|outcome| match outcome {
                Ok(r) => r.fidelity.ok_or_else(|| Error::Eval {
                    job: r.label.clone(),
                    detail: "request carried no EvalSpec".into(),
                }),
                Err(e) => Err(e.clone()),
            })
            .collect()
    }

    /// Per-stage aggregation of the responses' pipeline traces (requests
    /// that disabled tracing contribute nothing). Stages appear in
    /// pipeline order.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let mut stats = StageStats {
                    stage,
                    executed: 0,
                    cache_hits: 0,
                    wall: Duration::ZERO,
                };
                for response in self.successes() {
                    let Some(trace) = &response.trace else {
                        continue;
                    };
                    for pass in trace.passes.iter().filter(|p| p.stage == stage) {
                        if pass.cache.is_hit() {
                            stats.cache_hits += 1;
                        } else {
                            stats.executed += 1;
                        }
                        stats.wall += pass.wall;
                    }
                }
                stats
            })
            .collect()
    }

    /// Min/max/mean residual-ZZ weight ([`zz_sched::PlanSummary::
    /// residual_zz_weight`]) across the batch's successful responses, or
    /// `None` when nothing succeeded. This is the shared at-scale
    /// fidelity-proxy summary: fleet dispatch scores large devices with
    /// it and the scale bench reports it, through one code path.
    pub fn plan_metric_stats(&self) -> Option<PlanMetricStats> {
        let mut stats: Option<PlanMetricStats> = None;
        let mut sum = 0.0;
        for response in self.successes() {
            let weight = response.plan_metrics().residual_zz_weight;
            sum += weight;
            let s = stats.get_or_insert(PlanMetricStats {
                jobs: 0,
                min_residual_zz_weight: weight,
                max_residual_zz_weight: weight,
                mean_residual_zz_weight: 0.0,
            });
            s.jobs += 1;
            s.min_residual_zz_weight = s.min_residual_zz_weight.min(weight);
            s.max_residual_zz_weight = s.max_residual_zz_weight.max(weight);
        }
        if let Some(s) = &mut stats {
            s.mean_residual_zz_weight = sum / s.jobs as f64;
        }
        stats
    }
}

/// Aggregate residual-ZZ statistics of one drained batch (see
/// [`ServiceReport::plan_metric_stats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanMetricStats {
    /// Successful responses contributing to the statistics.
    pub jobs: usize,
    /// Smallest per-plan residual-ZZ weight in the batch.
    pub min_residual_zz_weight: f64,
    /// Largest per-plan residual-ZZ weight in the batch.
    pub max_residual_zz_weight: f64,
    /// Mean per-plan residual-ZZ weight across the batch.
    pub mean_residual_zz_weight: f64,
}

/// One summary line (jobs, wall/cpu/queue time, cache hit rates,
/// calibration runs) plus the per-stage `runs/hits wall` breakdown — the
/// format the figure binaries print after every suite.
impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs ({} failed) in {:.1?} wall / {:.1?} cpu (queue wait {:.1?}); routing memo {} hit / {} miss; ",
            self.outcomes.len(),
            self.error_count(),
            self.wall_time,
            self.cpu_time(),
            self.queue_wait(),
            self.route_hits,
            self.route_misses,
        )?;
        if self.disk_hits + self.disk_misses > 0 {
            write!(
                f,
                "disk {} hit / {} miss; ",
                self.disk_hits, self.disk_misses
            )?;
        } else {
            write!(f, "disk cache off; ")?;
        }
        write!(f, "{} calibration run(s)", self.calibration_runs)?;
        write!(f, "\n  stages (runs/hits wall):")?;
        for stats in self.stage_stats() {
            write!(
                f,
                " {} {}/{} {:.1?}",
                stats.stage, stats.executed, stats.cache_hits, stats.wall
            )?;
        }
        Ok(())
    }
}

/// The session's standing metric handles (registered once at session
/// construction; updates are plain atomic ops on the hot path).
#[derive(Debug)]
struct SessionMetrics {
    registry: Arc<Registry>,
    /// `session.requests` — every submission (sync, async and coalesced).
    requests: Arc<Counter>,
    /// `session.errors` — requests that resolved to a typed [`Error`].
    errors: Arc<Counter>,
    /// `session.coalesce.leader` — `submit_shared` calls that started a job.
    coalesce_leader: Arc<Counter>,
    /// `session.coalesce.follower` — `submit_shared` calls that adopted one.
    coalesce_follower: Arc<Counter>,
    /// `session.queue.depth` — jobs enqueued but not yet picked up.
    queue_depth: Arc<Gauge>,
    /// `session.workers.busy` — workers currently executing a request.
    workers_busy: Arc<Gauge>,
    /// `session.queue.wait_us` — time from enqueue to worker pickup.
    queue_wait: Arc<Histogram>,
    /// `session.compile.wall_us` — per-request compile (+eval) time.
    compile_wall: Arc<Histogram>,
}

impl SessionMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        EngineBridge::install(&registry);
        SchedBridge::install(&registry);
        SessionMetrics {
            requests: registry.counter("session.requests"),
            errors: registry.counter("session.errors"),
            coalesce_leader: registry.counter("session.coalesce.leader"),
            coalesce_follower: registry.counter("session.coalesce.follower"),
            queue_depth: registry.gauge("session.queue.depth"),
            workers_busy: registry.gauge("session.workers.busy"),
            queue_wait: registry.histogram("session.queue.wait_us"),
            compile_wall: registry.histogram("session.compile.wall_us"),
            registry,
        }
    }
}

/// Bridges engine-level events ([`zz_sim::metrics`]) into a session's
/// registry: trajectory/sweep/fusion counters plus the per-batch run-time
/// histogram, all under `engine.*` and therefore visible through
/// [`Session::metrics`] snapshots and the `zz_net` Stats endpoint.
///
/// The bridge holds only *weak* handles. The registry keeps the metrics
/// alive; once the session (and with it the registry) is dropped, the
/// next engine event fails to upgrade and the engine prunes the sink —
/// dead sessions cost nothing. Note the engine counters are
/// process-wide: a session sees engine activity from every live session,
/// not just its own queue.
#[derive(Debug)]
struct EngineBridge {
    trajectories: Weak<Counter>,
    kernel_sweeps: Weak<Counter>,
    fused_diags: Weak<Counter>,
    batch_run: Weak<Histogram>,
}

impl EngineBridge {
    fn install(registry: &Arc<Registry>) {
        zz_sim::metrics::register_sink(Arc::new(EngineBridge {
            trajectories: Arc::downgrade(&registry.counter("engine.trajectories")),
            kernel_sweeps: Arc::downgrade(&registry.counter("engine.kernel_sweeps")),
            fused_diags: Arc::downgrade(&registry.counter("engine.diag.fused")),
            batch_run: Arc::downgrade(&registry.histogram("engine.batch.run_us")),
        }));
    }
}

impl zz_sim::metrics::EngineSink for EngineBridge {
    fn batch(&self, trajectories: u64, kernel_sweeps: u64, elapsed: Duration) -> bool {
        let (Some(t), Some(k), Some(h)) = (
            self.trajectories.upgrade(),
            self.kernel_sweeps.upgrade(),
            self.batch_run.upgrade(),
        ) else {
            return false;
        };
        t.add(trajectories);
        k.add(kernel_sweeps);
        h.observe_micros(elapsed);
        true
    }

    fn fused_diags(&self, merges: u64) -> bool {
        match self.fused_diags.upgrade() {
            Some(c) => {
                c.add(merges);
                true
            }
            None => false,
        }
    }
}

/// Bridges scheduler-level events ([`zz_sched::obs`]) into a session's
/// registry: the lazy distance oracle's query counter, under
/// `sched.distance_queries` / `sched.schedules` and therefore visible
/// through [`Session::metrics`] snapshots and the `zz_net` Stats
/// endpoint. Same weak-handle lifecycle as [`EngineBridge`], and the
/// counters are likewise process-wide.
#[derive(Debug)]
struct SchedBridge {
    distance_queries: Weak<Counter>,
    schedules: Weak<Counter>,
}

impl SchedBridge {
    fn install(registry: &Arc<Registry>) {
        zz_sched::obs::register_sink(Arc::new(SchedBridge {
            distance_queries: Arc::downgrade(&registry.counter("sched.distance_queries")),
            schedules: Arc::downgrade(&registry.counter("sched.schedules")),
        }));
    }
}

impl zz_sched::obs::SchedSink for SchedBridge {
    fn distance_queries(&self, queries: u64) -> bool {
        let (Some(q), Some(s)) = (self.distance_queries.upgrade(), self.schedules.upgrade()) else {
            return false;
        };
        q.add(queries);
        s.inc();
        true
    }
}

/// The state a session shares with its workers: the target plus the
/// session-lifetime caches and observability.
#[derive(Debug)]
struct SessionCore {
    target: Target,
    memo: Arc<RouteMemo>,
    metrics: SessionMetrics,
    events: EventLog,
    ids: IdSource,
}

impl SessionCore {
    /// Compiles (and optionally evaluates) one request. Runs on a worker
    /// or, for [`Session::compile`], on the caller thread — both paths
    /// share the session caches.
    fn execute(&self, request: &CompileRequest, id: RequestId) -> Result<CompileResponse, Error> {
        let t0 = Instant::now();
        let topology = request
            .device
            .clone()
            .unwrap_or_else(|| self.target.topology().clone());
        let mut builder = PassManager::builder()
            .topology(topology)
            .pulse_method(request.options.method)
            .scheduler(request.options.scheduler)
            .alpha(request.options.alpha_or_default())
            .k(request.options.k_or_default())
            .route_memo(Arc::clone(&self.memo))
            .metrics(Arc::clone(&self.metrics.registry));
        if let Some(req) = request.options.requirement {
            builder = builder.requirement(req);
        }
        if let Some(store) = self.target.store_arc() {
            builder = builder.store(store);
        }
        if let Some(calib) = self.target.calib_arc() {
            builder = builder.calib(calib);
        }
        let outcome = builder
            .build()
            .run(Arc::clone(&request.circuit))
            .map_err(|e| Error::from_compile(&request.label, e))?;

        let route_cache_hit = outcome.trace.compiled_cache == CacheDisposition::DiskHit
            || outcome
                .trace
                .pass(Stage::Route)
                .is_some_and(|p| p.cache.is_hit());
        let disk = match outcome.trace.compiled_cache {
            CacheDisposition::DiskHit => DiskStatus::Hit,
            CacheDisposition::Miss => DiskStatus::Miss,
            _ => DiskStatus::NotConsulted,
        };

        let mut compiled = outcome.compiled;
        if let Some(durations) = self.target.durations() {
            compiled.durations = *durations;
        }

        let fidelity = match &request.eval {
            None => None,
            Some(spec) => {
                if spec.crosstalk_seeds.is_empty() {
                    return Err(Error::Eval {
                        job: request.label.clone(),
                        detail: "eval spec has no crosstalk seeds to average over".into(),
                    });
                }
                // Compilation scales to any device; density-matrix
                // evaluation is exponential and stays capped. The check
                // sits here — at evaluation time, not validation — so
                // large devices compile freely without an EvalSpec.
                let device_qubits = compiled.topology.qubit_count();
                if device_qubits > MAX_EVAL_QUBITS {
                    return Err(Error::Eval {
                        job: request.label.clone(),
                        detail: format!(
                            "device has {device_qubits} qubits but density-matrix evaluation \
                             tops out at {MAX_EVAL_QUBITS}; use CompileResponse::plan_metrics \
                             as the at-scale fidelity proxy"
                        ),
                    });
                }
                Some(fidelity_of(&compiled, &spec.to_config(&self.target)))
            }
        };

        Ok(CompileResponse {
            request_id: id,
            label: request.label.clone(),
            compiled,
            trace: request.trace.then_some(outcome.trace),
            route_cache_hit,
            disk,
            compile_time: t0.elapsed(),
            queue_wait: Duration::ZERO,
            fidelity,
        })
    }

    /// Rolls one finished request into the registry and the event log:
    /// wall/queue histograms and the error counter, plus a summary-level
    /// `compile.done` / `compile.failed` event carrying the request id.
    fn observe_outcome(
        &self,
        id: RequestId,
        result: &Result<CompileResponse, Error>,
        queue_wait: Duration,
    ) {
        self.metrics.queue_wait.observe_micros(queue_wait);
        match result {
            Ok(response) => {
                self.metrics
                    .compile_wall
                    .observe_micros(response.compile_time);
                self.events.emit(
                    &Event::summary("compile.done")
                        .request(id)
                        .field("label", response.label.as_str())
                        .field("compile_us", saturating_micros(response.compile_time))
                        .field("queue_us", saturating_micros(queue_wait))
                        .field("route_cache_hit", response.route_cache_hit),
                );
            }
            Err(error) => {
                self.metrics.errors.inc();
                self.events.emit(
                    &Event::summary("compile.failed")
                        .request(id)
                        .field("error", error.to_string()),
                );
            }
        }
    }
}

/// The one front door: a long-lived compile/evaluate service over one
/// [`Target`]. See the [crate docs](crate) for the life cycle and a
/// complete example.
#[derive(Debug)]
pub struct Session {
    core: Arc<SessionCore>,
    pool: TaskPool,
    pending: Mutex<PendingBatch>,
    calib_mark: AtomicUsize,
    inflight: Arc<Inflight>,
    coalesced: AtomicUsize,
}

/// The in-flight job index behind request coalescing: one entry per
/// distinct coalescing key currently compiling. Shared with the worker
/// task (which removes its entry on completion), so it lives behind its
/// own `Arc` rather than inside the session.
#[derive(Debug, Default)]
struct Inflight {
    map: Mutex<HashMap<u64, Arc<HandleState>>>,
}

/// The identity of a request for coalescing purposes: everything that
/// determines the bits of its [`CompileResponse`] *except* the label —
/// circuit content, device shape, the full option set, the trace flag and
/// the evaluation spec. Two concurrent requests with equal keys would
/// compute identical responses, so they may share one compile job.
fn coalesce_key(request: &CompileRequest, topology: &Topology) -> u64 {
    let mut enc = Encoder::new();
    request.options.method.encode(&mut enc);
    request.options.scheduler.encode(&mut enc);
    request.options.alpha.encode(&mut enc);
    request.options.k.encode(&mut enc);
    request.options.requirement.encode(&mut enc);
    enc.bool(request.trace);
    match &request.eval {
        None => enc.bool(false),
        Some(spec) => {
            enc.bool(true);
            spec.crosstalk_seeds.encode(&mut enc);
            match &spec.decoherence {
                None => enc.bool(false),
                Some((deco, trajectories, seed)) => {
                    enc.bool(true);
                    enc.f64(deco.t1);
                    enc.f64(deco.t2);
                    enc.usize(*trajectories);
                    enc.u64(*seed);
                }
            }
        }
    }
    let mut h = fnv1a(&enc.finish());
    h = fnv1a_mix(h, request.circuit.content_digest());
    h = fnv1a_mix(h, shape_key(&request.circuit, topology));
    h
}

/// The handles submitted since the last drain plus the batch's start
/// instant — one mutex, so a concurrent `submit` can never land its
/// handle in one batch and its timestamp in another.
#[derive(Debug, Default)]
struct PendingBatch {
    jobs: Vec<Arc<HandleState>>,
    started: Option<Instant>,
}

impl Session {
    /// Opens a session over `target` with one worker per available core.
    pub fn new(target: Target) -> Self {
        Self::with_threads(target, default_threads())
    }

    /// Opens a session with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(target: Target, threads: usize) -> Self {
        let calib_runs = target.calib().calibration_runs();
        Session {
            core: Arc::new(SessionCore {
                target,
                memo: Arc::new(RouteMemo::new()),
                metrics: SessionMetrics::new(),
                events: EventLog::from_env(),
                ids: IdSource::new(),
            }),
            pool: TaskPool::new(threads),
            pending: Mutex::new(PendingBatch::default()),
            calib_mark: AtomicUsize::new(calib_runs),
            inflight: Arc::new(Inflight::default()),
            coalesced: AtomicUsize::new(0),
        }
    }

    /// The target this session compiles for.
    pub fn target(&self) -> &Target {
        &self.core.target
    }

    /// The session's worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The session's metrics registry: every layer below (pipeline
    /// stages, queue, coalescing — and, when a `zz_net` server fronts
    /// this session, the wire counters) publishes here. Snapshot it for
    /// the `Stats` endpoint or the Prometheus exposition.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.core.metrics.registry
    }

    /// Compiles one request synchronously on the caller's thread, using
    /// the session caches (workers keep serving submitted jobs in the
    /// meantime). Synchronous calls are not tracked by
    /// [`drain`](Self::drain).
    ///
    /// # Errors
    ///
    /// Returns the request's typed [`Error`] on failure.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileResponse, Error> {
        let id = self.admit();
        let result = self.core.execute(request, id);
        self.core.observe_outcome(id, &result, Duration::ZERO);
        result
    }

    /// Enqueues a request on the worker pool and returns immediately.
    /// The handle resolves when a worker finishes the job;
    /// [`drain`](Self::drain) collects every outstanding handle in
    /// submission order.
    pub fn submit(&self, request: CompileRequest) -> JobHandle {
        let id = self.admit();
        let state = Arc::new(HandleState::new());
        let label = request.label.clone();
        self.track(&state);
        self.enqueue(request, id, Arc::clone(&state), None);
        JobHandle { label, state }
    }

    /// Mints an id and counts the submission (every submission path
    /// funnels through here so `session.requests` can never drift).
    fn admit(&self) -> RequestId {
        self.core.metrics.requests.inc();
        self.core.ids.next_id()
    }

    /// Like [`submit`](Self::submit), with **request coalescing**:
    /// requests submitted while an identical one (same circuit content,
    /// device shape, options, trace flag and eval spec — the label is
    /// deliberately excluded) is still in flight share that job instead
    /// of compiling again, and every caller gets its own [`JobHandle`]
    /// resolving to the shared [`CompileResponse`]. This is the shape
    /// network front ends want: a thundering herd of identical
    /// content-addressed compiles costs one pipeline execution.
    ///
    /// Coalesced followers adopt the leader's response verbatim —
    /// including its `label` and `queue_wait` — and appear in
    /// [`drain`](Self::drain) like any other submission. Requests
    /// submitted *after* the leader finished start a fresh job (which the
    /// session caches then serve).
    pub fn submit_shared(&self, request: CompileRequest) -> JobHandle {
        let topology = request
            .device
            .as_ref()
            .unwrap_or_else(|| self.core.target.topology());
        let key = coalesce_key(&request, topology);
        let label = request.label.clone();

        // Decide leader-vs-follower and (for a leader) publish the slot
        // under one lock, so two identical concurrent submissions can
        // never both become leaders.
        let state = {
            let mut map = self.inflight.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = map.get(&key) {
                let state = Arc::clone(existing);
                drop(map);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.core.metrics.requests.inc();
                self.core.metrics.coalesce_follower.inc();
                self.core
                    .events
                    .emit(&Event::new("session.coalesced").field("label", label.as_str()));
                self.track(&state);
                return JobHandle { label, state };
            }
            let state = Arc::new(HandleState::new());
            map.insert(key, Arc::clone(&state));
            state
        };
        let id = self.admit();
        self.core.metrics.coalesce_leader.inc();
        self.track(&state);
        self.enqueue(request, id, Arc::clone(&state), Some(key));
        JobHandle { label, state }
    }

    /// Number of requests that were coalesced onto another job's compile
    /// (followers only — the job itself is not counted) since the session
    /// opened.
    pub fn coalesced_jobs(&self) -> usize {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Registers a handle in the current drain batch.
    fn track(&self, state: &Arc<HandleState>) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        pending.started.get_or_insert_with(Instant::now);
        pending.jobs.push(Arc::clone(state));
    }

    /// Hands a request to the worker pool. `retire` carries the coalescing
    /// key to drop from the in-flight index once the job completes (so
    /// later identical requests start fresh instead of adopting a stale
    /// slot).
    fn enqueue(
        &self,
        request: CompileRequest,
        id: RequestId,
        state: Arc<HandleState>,
        retire: Option<u64>,
    ) {
        let label = request.label.clone();
        let core = Arc::clone(&self.core);
        let inflight = Arc::clone(&self.inflight);
        let task_state = Arc::clone(&state);
        let queued_at = Instant::now();
        core.metrics.queue_depth.inc();
        let enqueued = self.pool.execute(Box::new(move || {
            let queue_wait = queued_at.elapsed();
            core.metrics.queue_depth.dec();
            core.metrics.workers_busy.inc();
            let result = catch_unwind(AssertUnwindSafe(|| core.execute(&request, id)));
            core.metrics.workers_busy.dec();
            if let Some(key) = retire {
                let mut map = inflight.map.lock().unwrap_or_else(|e| e.into_inner());
                map.remove(&key);
            }
            let result = match result {
                Ok(Ok(mut response)) => {
                    response.queue_wait = queue_wait;
                    Ok(response)
                }
                Ok(Err(error)) => Err(error),
                Err(panic) => Err(Error::Worker {
                    job: request.label.clone(),
                    detail: panic_message(&panic),
                }),
            };
            core.observe_outcome(id, &result, queue_wait);
            task_state.fill(result);
        }));
        if !enqueued {
            self.core.metrics.queue_depth.dec();
            if let Some(key) = retire {
                let mut map = self.inflight.map.lock().unwrap_or_else(|e| e.into_inner());
                map.remove(&key);
            }
            let result = Err(Error::Worker {
                job: label,
                detail: "the session queue is shut down".into(),
            });
            self.core.observe_outcome(id, &result, Duration::ZERO);
            state.fill(result);
        }
    }

    /// Submits a whole batch, returning one handle per request in order.
    pub fn submit_all(&self, requests: impl IntoIterator<Item = CompileRequest>) -> Vec<JobHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Blocks until every request submitted since the previous drain has
    /// finished and returns their results (in submission order) with
    /// aggregate cache statistics. The session stays open: submitting
    /// after a drain starts the next batch.
    pub fn drain(&self) -> ServiceReport {
        let batch = {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *pending)
        };
        let outcomes: Vec<Result<CompileResponse, Error>> = batch
            .jobs
            .into_iter()
            .map(|state| state.wait_take())
            .collect();
        let wall_time = batch.started.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);

        let route_hits = outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.route_cache_hit))
            .count();
        let route_misses = outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| !r.route_cache_hit))
            .count();
        let disk_hits = outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.disk == DiskStatus::Hit))
            .count();
        let disk_misses = outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.disk == DiskStatus::Miss))
            .count();

        // Publish every measured residual table so the next process
        // starts warm (mirrors the batch engine's policy).
        if let Some(store) = self.core.target.store() {
            self.core.target.calib().save_to(store);
        }
        let calib_runs = self.core.target.calib().calibration_runs();
        let calibration_runs = calib_runs - self.calib_mark.swap(calib_runs, Ordering::Relaxed);

        ServiceReport {
            outcomes,
            wall_time,
            route_hits,
            route_misses,
            disk_hits,
            disk_misses,
            calibration_runs,
        }
    }

    /// Convenience: [`submit_all`](Self::submit_all) followed by
    /// [`drain`](Self::drain) — the one-call shape suite workloads use.
    pub fn run(&self, requests: impl IntoIterator<Item = CompileRequest>) -> ServiceReport {
        self.submit_all(requests);
        self.drain()
    }

    /// Number of distinct circuit × device shapes the session's routing
    /// memo currently holds.
    pub fn memoized_shapes(&self) -> usize {
        self.core.memo.memoized_shapes()
    }
}

/// Best-effort rendering of a worker panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::Gate;

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
        c
    }

    fn session() -> Session {
        Session::with_threads(
            Target::builder()
                .topology(Topology::grid(2, 2))
                .build()
                .expect("no store"),
            2,
        )
    }

    #[test]
    fn synchronous_compile_round_trips() {
        let session = session();
        let response = session
            .compile(&CompileRequest::new(small_circuit()))
            .expect("fits");
        assert_eq!(response.label, "Pert+ZZXSched");
        assert!(response.compiled.plan.layer_count() > 0);
        assert!(response.trace.is_some());
        assert!(response.fidelity.is_none());
    }

    #[test]
    fn submit_and_drain_preserve_submission_order() {
        let session = session();
        for i in 0..6 {
            session.submit(CompileRequest::new(small_circuit()).with_label(format!("job-{i}")));
        }
        let report = session.drain();
        assert_eq!(report.error_count(), 0);
        let labels: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| o.as_ref().expect("compiled").label.as_str())
            .collect();
        assert_eq!(
            labels,
            ["job-0", "job-1", "job-2", "job-3", "job-4", "job-5"]
        );
        // Draining again without new submissions is an empty batch.
        assert!(session.drain().outcomes.is_empty());
    }

    #[test]
    fn oversized_requests_fail_typed_not_panicking() {
        let session = session();
        let request = CompileRequest::new(Circuit::new(9)).with_label("too-big");
        match session.compile(&request) {
            Err(Error::Validate { job, .. }) => assert_eq!(job, "too-big"),
            other => panic!("expected Validate, got {other:?}"),
        }
        let handle = session.submit(request);
        assert!(matches!(handle.wait(), Err(Error::Validate { .. })));
        let report = session.drain();
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn wait_then_drain_sees_the_same_result() {
        let session = session();
        let handle = session.submit(CompileRequest::new(small_circuit()));
        let waited = handle.wait().expect("fits");
        let report = session.drain();
        let drained = report.outcomes[0].as_ref().expect("fits");
        assert_eq!(waited.compiled, drained.compiled);
    }

    #[test]
    fn identical_concurrent_requests_coalesce_onto_one_job() {
        // One worker, stuffed with an unrelated job: the leader cannot
        // start (let alone finish) before the follower is submitted, so
        // the follower deterministically finds the leader in flight.
        let session = Session::with_threads(
            Target::builder()
                .topology(Topology::grid(2, 2))
                .build()
                .expect("no store"),
            1,
        );
        session.submit(CompileRequest::new(small_circuit()).with_label("stuffer"));
        let leader = session.submit_shared(CompileRequest::new(small_circuit()));
        let follower = session.submit_shared(CompileRequest::new(small_circuit()));
        assert_eq!(session.coalesced_jobs(), 1);

        let a = leader.wait().expect("fits");
        let b = follower.wait().expect("fits");
        assert_eq!(a.compiled, b.compiled);
        assert_eq!(a.compile_time, b.compile_time, "one execution, one clock");

        // Both appear in the drain batch — coalescing drops no request.
        let report = session.drain();
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.error_count(), 0);

        // The slot retired with the job: a later identical request is a
        // fresh (cache-served) job, not a stale adoption.
        session
            .submit_shared(CompileRequest::new(small_circuit()))
            .wait()
            .expect("fits");
        assert_eq!(session.coalesced_jobs(), 1);
    }

    #[test]
    fn different_requests_never_coalesce() {
        let session = session();
        let mut other = small_circuit();
        other.push(Gate::X, &[1]);
        let a = session.submit_shared(CompileRequest::new(small_circuit()));
        let b = session.submit_shared(CompileRequest::new(other));
        let (a, b) = (a.wait().expect("fits"), b.wait().expect("fits"));
        assert_ne!(a.compiled.plan, b.compiled.plan);
        assert_eq!(session.coalesced_jobs(), 0);
    }

    #[test]
    fn empty_eval_spec_is_a_typed_error() {
        let session = session();
        let request = CompileRequest::new(small_circuit())
            .with_eval(EvalSpec::paper_default().with_seeds(vec![]));
        assert!(matches!(session.compile(&request), Err(Error::Eval { .. })));
    }
}
