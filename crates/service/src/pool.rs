//! The session's long-lived worker pool.
//!
//! Unlike the scoped per-call pools of `zz_core::batch::parallel_map`,
//! these workers live as long as their [`crate::Session`]: submissions
//! from any number of `submit` calls interleave on one queue, so a
//! service can keep accepting jobs while earlier ones still compile.
//! Tasks are plain boxed closures; result plumbing (handles, ordering)
//! lives in [`crate::session`].

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads draining one shared task queue. Dropping
/// the pool closes the queue and joins every worker (outstanding tasks
/// finish first).
#[derive(Debug)]
pub(crate) struct WorkerPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("zz-service-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    pub(crate) fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task; returns `false` when the queue is already torn
    /// down (the pool is being dropped).
    pub(crate) fn execute(&self, task: Task) -> bool {
        match &self.sender {
            Some(sender) => sender.send(task).is_ok(),
            None => false,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Task>>) {
    loop {
        // Hold the queue lock only for the dequeue, never while running.
        let task = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break, // a sibling panicked holding the lock
        };
        match task {
            Ok(task) => task(),
            Err(_) => break, // queue closed: the session is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.sender.take(); // close the queue: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drop_drains_outstanding_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3);
            assert_eq!(pool.threads(), 3);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                assert!(pool.execute(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })));
            }
        } // drop joins the workers
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
