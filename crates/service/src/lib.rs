//! `zz_service` — the session-based front door of the co-optimization
//! stack.
//!
//! The engine crates under this one ([`zz_core`]'s pass pipeline, batch
//! engine and calibration, `zz_persist`'s artifact store, `zz_sim`'s
//! executors) each expose their own slice of device state. This crate
//! bundles them behind two types:
//!
//! * **[`Target`]** — one value describing the machine: topology, ZZ
//!   noise characterization, calibration source and optional on-disk
//!   artifact store. Build the paper device with
//!   [`Target::paper_default`], the smallest paper sub-grid for a
//!   register with [`Target::for_qubits`], or anything else with
//!   [`Target::builder`].
//! * **[`Session`]** — a long-lived service over one target, owning the
//!   worker pool, routing memo and caches. Submit typed
//!   [`CompileRequest`]s synchronously ([`Session::compile`]) or as
//!   non-blocking [`JobHandle`]s ([`Session::submit`] /
//!   [`Session::drain`]); responses carry the compiled plan, pipeline
//!   trace, cache dispositions and optional evaluated fidelity.
//!
//! Every failure is a typed [`Error`] with the job label attached — no
//! public path panics on user input. The legacy facades
//! (`zz_core::CoOptimizer`, `zz_core::BatchCompiler`, the
//! `zz_core::evaluate` suite helpers) remain as thin adapters whose
//! output is pinned bit-identical to a session's by the
//! `tests/service.rs` equivalence matrix.
//!
//! # Example
//!
//! ```
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_service::{CompileOptions, CompileRequest, EvalSpec, Session, Target};
//! use zz_service::{PulseMethod, SchedulerKind};
//!
//! // One target, one session, for however many requests follow.
//! let session = Session::new(Target::for_qubits(4)?);
//!
//! // Synchronous: compile + evaluate in one call.
//! let request = CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7))
//!     .with_options(CompileOptions::new(PulseMethod::Pert, SchedulerKind::ZzxSched))
//!     .with_eval(EvalSpec::paper_default());
//! let response = session.compile(&request)?;
//! assert!(response.fidelity.expect("eval requested") > 0.5);
//!
//! // Non-blocking: queue a sweep, then collect everything in order.
//! for alpha in [0.0, 0.5, 1.0] {
//!     let sweep = CompileRequest::new(generate(BenchmarkKind::Qft, 4, 7))
//!         .with_options(CompileOptions::default().with_alpha(alpha))
//!         .with_label(format!("alpha-{alpha}"));
//!     session.submit(sweep);
//! }
//! let report = session.drain();
//! assert_eq!(report.outcomes.len(), 3);
//! assert_eq!(report.error_count(), 0);
//! // The whole sweep replays the routing pass the synchronous compile
//! // above already paid for — the session memo serves every job.
//! assert_eq!(report.route_misses, 0);
//! assert_eq!(report.route_hits, 3);
//! # Ok::<(), zz_service::Error>(())
//! ```

#![warn(missing_docs)]

mod error;
mod session;
mod target;

pub use error::Error;
pub use session::{
    CompileRequest, CompileResponse, EvalSpec, JobHandle, PlanMetricStats, ServiceReport, Session,
};
pub use target::{Target, TargetBuilder};

// The request-configuration types a service caller needs, re-exported so
// one `use zz_service::…` line covers the whole front door.
pub use zz_core::batch::{DiskStatus, StageStats};
pub use zz_core::{CompileOptions, Compiled, PipelineTrace, PulseMethod, SchedulerKind};
pub use zz_obs::{MetricsSnapshot, Registry, RequestId};
