//! The unified error taxonomy of the service layer.
//!
//! Every failure a [`crate::Session`] (or [`crate::Target`] construction)
//! can produce is one [`Error`] variant, labelled with the job it
//! belongs to where one exists. No public path of the service panics on
//! user input: oversized circuits come back as [`Error::Validate`],
//! misconfigured cache directories as [`Error::Persist`], degenerate
//! evaluation specs as [`Error::Eval`], and a worker dying mid-job as
//! [`Error::Worker`] — all `std::error::Error + Display`, so they
//! compose with `?` and `Box<dyn Error>` call sites.

use std::fmt;

use zz_core::evaluate::SuiteError;
use zz_core::CoOptError;

/// Any failure of the service layer, labelled with the job it belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The request was rejected before compilation: the circuit does not
    /// fit the target device (wraps the engine's [`CoOptError`]).
    Validate {
        /// The label of the failing job (or `"target"` for failures
        /// while constructing a [`crate::Target`]).
        job: String,
        /// The engine-level cause.
        source: CoOptError,
    },
    /// Routing or native translation failed for this job — the engine's
    /// [`CoOptError::RouteUnreachable`] (a disconnected coupling graph,
    /// which in-tree [`zz_topology::Topology`] construction forbids), or
    /// a pluggable routing backend reporting its own failure.
    Route {
        /// The label of the failing job.
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// Pulse calibration could not produce a residual table for this
    /// job's method. Reserved like [`Route`](Self::Route): the in-tree
    /// pulse-level measurement is total; hardware-backed calibration
    /// sources report through it.
    Calibration {
        /// The label of the failing job.
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// The persistence layer rejected its configuration — typically an
    /// uncreatable or unwritable cache directory handed to
    /// [`crate::TargetBuilder::store_dir`].
    Persist {
        /// What went wrong.
        detail: String,
    },
    /// Fidelity evaluation failed (degenerate eval spec, or a failed
    /// compile surfaced by a suite evaluation).
    Eval {
        /// The label of the failing job (or a suite description).
        job: String,
        /// What went wrong.
        detail: String,
    },
    /// A session worker died or the queue was torn down before this
    /// job's result was produced.
    Worker {
        /// The label of the failing job.
        job: String,
        /// What went wrong.
        detail: String,
    },
}

impl Error {
    /// The label of the job this error belongs to, when one exists
    /// ([`Error::Persist`] predates any job).
    pub fn job(&self) -> Option<&str> {
        match self {
            Error::Validate { job, .. }
            | Error::Route { job, .. }
            | Error::Calibration { job, .. }
            | Error::Eval { job, .. }
            | Error::Worker { job, .. } => Some(job),
            Error::Persist { .. } => None,
        }
    }

    /// Wraps an engine-level compile error for `job`: size rejections map
    /// to [`Error::Validate`], routing failures to [`Error::Route`].
    pub fn from_compile(job: impl Into<String>, source: CoOptError) -> Self {
        match source {
            CoOptError::CircuitTooLarge { .. } => Error::Validate {
                job: job.into(),
                source,
            },
            CoOptError::RouteUnreachable { .. } => Error::Route {
                job: job.into(),
                detail: source.to_string(),
            },
        }
    }

    /// Wraps a legacy suite-evaluation failure set.
    pub fn from_suite(error: &SuiteError) -> Self {
        Error::Eval {
            job: error
                .failures
                .first()
                .map(|(label, _)| label.clone())
                .unwrap_or_else(|| "suite".into()),
            detail: error.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Validate { job, source } => write!(f, "job {job}: validation failed: {source}"),
            Error::Route { job, detail } => write!(f, "job {job}: routing failed: {detail}"),
            Error::Calibration { job, detail } => {
                write!(f, "job {job}: calibration failed: {detail}")
            }
            Error::Persist { detail } => write!(f, "persistence layer: {detail}"),
            Error::Eval { job, detail } => write!(f, "job {job}: evaluation failed: {detail}"),
            Error::Worker { job, detail } => write!(f, "job {job}: worker failed: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Validate { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_attaches_the_job_label() {
        let err = Error::from_compile(
            "qft-9",
            CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4,
            },
        );
        let msg = err.to_string();
        assert!(msg.contains("qft-9"), "{msg}");
        assert!(msg.contains("9 qubits"), "{msg}");
        assert_eq!(err.job(), Some("qft-9"));
    }

    #[test]
    fn route_failures_map_to_the_route_variant() {
        let err = Error::from_compile("j", CoOptError::RouteUnreachable { from: 3, to: 7 });
        match &err {
            Error::Route { job, detail } => {
                assert_eq!(job, "j");
                assert!(detail.contains("qubits 3 and 7"), "{detail}");
            }
            other => panic!("expected Route, got {other:?}"),
        }
    }

    #[test]
    fn suite_failures_wrap_into_eval_with_the_first_label() {
        let suite = SuiteError {
            failures: vec![(
                "qft-13".into(),
                CoOptError::CircuitTooLarge {
                    needed: 13,
                    available: 12,
                },
            )],
        };
        match Error::from_suite(&suite) {
            Error::Eval { job, detail } => {
                assert_eq!(job, "qft-13");
                assert!(detail.contains("13 qubits"), "{detail}");
            }
            other => panic!("expected Eval, got {other:?}"),
        }
    }

    #[test]
    fn validate_exposes_the_engine_cause_as_source() {
        use std::error::Error as _;
        let err = Error::from_compile(
            "j",
            CoOptError::CircuitTooLarge {
                needed: 5,
                available: 4,
            },
        );
        assert!(err.source().is_some());
        assert!(Error::Persist {
            detail: "read-only".into()
        }
        .source()
        .is_none());
    }
}
