//! End-to-end evaluation: compile a benchmark, run it under the error
//! model, report fidelity. This is the pipeline behind Figures 20–25.
//!
//! Following the paper's evaluation, an n-qubit benchmark runs on the
//! smallest sub-grid of the 3×4 device that holds it ([`device_for`]):
//! 4 → 2×2, 6 → 2×3, 9 → 3×3, 12 → 3×4 — visible in Figure 25, whose
//! baseline (#couplings of the device) grows with benchmark size.

use std::fmt;

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_sim::density::{Decoherence, EXACT_MAX_QUBITS};
use zz_sim::executor::{run_density, ZzErrorModel};
use zz_sim::program::{PlanProgram, TrajectoryProgram};
use zz_topology::Topology;

use crate::batch::{parallel_map, BatchCompiler, BatchJob, BatchReport};
use crate::{CoOptError, CoOptimizer, Compiled, PulseMethod, SchedulerKind};

/// The largest evaluation device of the paper (the 3×4 grid).
pub const MAX_EVAL_QUBITS: usize = 12;

/// The smallest evaluation sub-grid holding `n` qubits, or `None` when
/// `n` exceeds the paper's largest device ([`MAX_EVAL_QUBITS`]).
///
/// The service layer's `Target::for_qubits` is the typed-error front for
/// this lookup.
pub fn try_device_for(n: usize) -> Option<Topology> {
    [(2, 2), (2, 3), (3, 3), (3, 4)]
        .into_iter()
        .find(|(rows, cols)| rows * cols >= n)
        .map(|(rows, cols)| Topology::grid(rows, cols))
}

/// The smallest evaluation sub-grid holding `n` qubits — the
/// abort-on-failure shim over [`try_device_for`] for harness code whose
/// sizes are static.
///
/// # Panics
///
/// Panics if `n > 12` (the paper's largest device).
///
/// # Example
///
/// ```
/// use zz_core::evaluate::device_for;
/// assert_eq!(device_for(6).qubit_count(), 6);   // 2×3
/// assert_eq!(device_for(7).qubit_count(), 9);   // 3×3
/// ```
pub fn device_for(n: usize) -> Topology {
    try_device_for(n).expect("the evaluation devices top out at 3x4 = 12 qubits")
}

/// The typed failure set of a suite evaluation: every compile job that
/// errored, with its label. Carried by [`try_suite_fidelities`] (and
/// wrapped into the service layer's `Error::Eval`) instead of silently
/// folding failed jobs in as fidelity 0.0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuiteError {
    /// `(job label, compile error)` for every failed job, in submission
    /// order.
    pub failures: Vec<(String, CoOptError)>,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} compile job(s) failed: [", self.failures.len())?;
        for (i, (label, err)) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{label}: {err}")?;
        }
        write!(f, "]")
    }
}

impl std::error::Error for SuiteError {}

/// Configuration of a fidelity evaluation run.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Mean crosstalk strength (rad/ns).
    pub lambda_mean: f64,
    /// Crosstalk standard deviation (rad/ns).
    pub lambda_std: f64,
    /// Seeds for the per-coupling strength samples; fidelities are averaged
    /// over them.
    pub crosstalk_seeds: Vec<u64>,
    /// Seed for benchmark-circuit generation.
    pub circuit_seed: u64,
    /// Optional decoherence: `(model, trajectories, rng seed)`. Registers
    /// of up to [`EXACT_MAX_QUBITS`] qubits are evaluated exactly on
    /// density matrices; larger ones use Monte-Carlo trajectories.
    pub decoherence: Option<(Decoherence, usize, u64)>,
}

impl EvalConfig {
    /// The paper's setup: `λ ~ N(2π·200 kHz, (2π·50 kHz)²)`, averaged over
    /// 3 disorder samples, no decoherence.
    pub fn paper_default() -> Self {
        EvalConfig {
            lambda_mean: zz_sim::khz(200.0),
            lambda_std: zz_sim::khz(50.0),
            crosstalk_seeds: vec![11, 23, 37],
            circuit_seed: 7,
            decoherence: None,
        }
    }

    /// Adds decoherence (`T1 = T2 = t` µs) with the given trajectory count
    /// (used only above the exact-density-matrix register size).
    pub fn with_decoherence_us(mut self, t: f64, trajectories: usize) -> Self {
        self.decoherence = Some((Decoherence::equal_us(t), trajectories, 97));
        self
    }
}

/// Compiles benchmark `kind`-`n` under `(method, scheduler)` on the
/// benchmark's evaluation device.
///
/// # Errors
///
/// Returns [`CoOptError::CircuitTooLarge`] when `n` exceeds
/// [`MAX_EVAL_QUBITS`] (paper benchmarks are otherwise sized to their
/// devices, so the error path only fires for out-of-range sizes).
pub fn compile_benchmark(
    kind: BenchmarkKind,
    n: usize,
    method: PulseMethod,
    scheduler: SchedulerKind,
    cfg: &EvalConfig,
) -> Result<Compiled, CoOptError> {
    let device = try_device_for(n).ok_or(CoOptError::CircuitTooLarge {
        needed: n,
        available: MAX_EVAL_QUBITS,
    })?;
    let circuit = generate(kind, n, cfg.circuit_seed);
    CoOptimizer::builder()
        .topology(device)
        .pulse_method(method)
        .scheduler(scheduler)
        .build()
        .compile(&circuit)
}

/// Mean output-state fidelity of a compiled plan over the config's
/// crosstalk samples (and decoherence, when enabled).
///
/// The ideal reference state is computed once and reused across all
/// crosstalk seeds; each seed's noisy execution runs through the
/// precompiled programs of [`zz_sim::program`].
///
/// Monte-Carlo trajectories run sequentially here: every in-repo caller
/// ([`try_suite_fidelities`], the service layer's workers) already fans
/// evaluations
/// over a full-width [`parallel_map`] at the job level, and nesting a
/// second full-width pool per seed would oversubscribe the machine
/// quadratically. For a standalone parallel fan, call
/// [`zz_sim::executor::fidelity_with_decoherence`] directly.
pub fn fidelity_of(compiled: &Compiled, cfg: &EvalConfig) -> f64 {
    let topo = &compiled.topology;
    let ideal = PlanProgram::ideal(&compiled.plan).run();
    let mut total = 0.0;
    for &seed in &cfg.crosstalk_seeds {
        let model = ZzErrorModel::sampled(topo, cfg.lambda_mean, cfg.lambda_std, seed)
            .with_residuals(compiled.residuals);
        total += match &cfg.decoherence {
            None => {
                let noisy =
                    PlanProgram::compile(&compiled.plan, topo, &model, &compiled.durations).run();
                ideal.fidelity(&noisy)
            }
            Some((deco, trajectories, mc_seed)) => {
                if compiled.plan.qubit_count() <= EXACT_MAX_QUBITS {
                    // Exact: density-matrix evolution.
                    let dm = run_density(&compiled.plan, topo, &model, deco, &compiled.durations);
                    dm.fidelity_to_pure(&ideal.to_vector())
                } else {
                    TrajectoryProgram::compile(
                        &compiled.plan,
                        topo,
                        &model,
                        deco,
                        &compiled.durations,
                    )
                    .mean_fidelity(&ideal, *trajectories, *mc_seed ^ seed, 1)
                }
            }
        };
    }
    total / cfg.crosstalk_seeds.len() as f64
}

/// Convenience: compile and evaluate in one call — the quantity plotted in
/// Figures 20, 21 and 23.
///
/// # Errors
///
/// Propagates [`compile_benchmark`]'s [`CoOptError`].
pub fn benchmark_fidelity(
    kind: BenchmarkKind,
    n: usize,
    method: PulseMethod,
    scheduler: SchedulerKind,
    cfg: &EvalConfig,
) -> Result<f64, CoOptError> {
    let compiled = compile_benchmark(kind, n, method, scheduler, cfg)?;
    Ok(fidelity_of(&compiled, cfg))
}

/// One benchmark-suite case: a benchmark instance × compile configuration.
pub type SuiteCase = (BenchmarkKind, usize, PulseMethod, SchedulerKind);

/// Compiles a whole suite of cases through one shared [`BatchCompiler`]
/// (each job runs the pass pipeline of [`crate::pipeline`]): calibration
/// runs at most once per pulse method, and cases that share a benchmark
/// instance (same kind and size) are generated once and routed once (the
/// circuit itself is shared via [`BatchJob::shared`], the translation via
/// the compiler's shared [`crate::pipeline::RouteMemo`]).
///
/// When the `ZZ_CACHE_DIR` environment variable names a cache directory,
/// the compiler is additionally backed by an on-disk
/// [`zz_persist::ArtifactStore`], so a second run of the same suite — in
/// a new process — skips calibration and routing entirely.
///
/// This is the compile stage behind Figures 20–25; the figure binaries
/// feed the report into [`try_suite_fidelities`] and print its [`Display`]
/// form (one summary line plus the per-stage timing breakdown aggregated
/// from the jobs' pipeline traces).
///
/// [`Display`]: std::fmt::Display
pub fn compile_suite(cases: &[SuiteCase], cfg: &EvalConfig) -> BatchReport {
    let mut instances: std::collections::HashMap<(BenchmarkKind, usize), std::sync::Arc<_>> =
        std::collections::HashMap::new();
    let jobs: Vec<BatchJob> = cases
        .iter()
        .map(|&(kind, n, method, scheduler)| {
            let circuit = instances
                .entry((kind, n))
                .or_insert_with(|| std::sync::Arc::new(generate(kind, n, cfg.circuit_seed)));
            // An out-of-range size gets the largest paper device: the job
            // then fails validation with a typed CircuitTooLarge in the
            // report (surfaced by try_suite_fidelities) instead of
            // panicking the whole suite here.
            let device = try_device_for(n).unwrap_or_else(|| device_for(MAX_EVAL_QUBITS));
            BatchJob::shared(std::sync::Arc::clone(circuit), method, scheduler)
                .with_topology(device)
                .with_label(format!("{kind}-{n}/{method}+{scheduler}"))
        })
        .collect();
    BatchCompiler::builder().store_from_env().build().run(jobs)
}

/// Evaluates every compiled job of a suite report in parallel, preserving
/// order.
///
/// Failed compile jobs are an error, not a data point: they used to map to
/// fidelity 0.0, which silently dragged suite averages (and the figure
/// tables built from them) down with no signal that anything went wrong.
/// Now every failed job is reported with its label — as a typed
/// [`SuiteError`] listing all failures, so callers can decide whether to
/// abort or re-slice the suite.
///
/// # Errors
///
/// Returns [`SuiteError`] when any job in the report failed to compile.
pub fn try_suite_fidelities(
    report: &BatchReport,
    cfg: &EvalConfig,
) -> Result<Vec<f64>, SuiteError> {
    let failures: Vec<(String, CoOptError)> = report
        .outcomes
        .iter()
        .filter_map(|o| {
            o.result
                .as_ref()
                .err()
                .map(|e| (o.label.clone(), e.clone()))
        })
        .collect();
    if !failures.is_empty() {
        return Err(SuiteError { failures });
    }
    let threads = crate::batch::default_threads();
    Ok(parallel_map(report.outcomes.len(), threads, |i| {
        let compiled = report.outcomes[i]
            .result
            .as_ref()
            .expect("failures were filtered above");
        fidelity_of(compiled, cfg)
    }))
}

/// [`try_suite_fidelities`] for harness code that genuinely wants
/// abort-on-failure — suites whose benchmarks are statically sized to
/// their devices.
///
/// # Panics
///
/// Panics with the failing jobs' labels if any compile job errored
/// (instead of silently folding them in as fidelity 0.0).
pub fn suite_fidelities_or_panic(report: &BatchReport, cfg: &EvalConfig) -> Vec<f64> {
    try_suite_fidelities(report, cfg)
        .unwrap_or_else(|failures| panic!("suite evaluation aborted: {failures}"))
}

/// Compile-and-evaluate for a whole suite: [`compile_suite`] followed by
/// [`try_suite_fidelities`]. Equivalent to mapping [`benchmark_fidelity`]
/// over `cases`, but compiles on a worker pool with shared
/// calibration/routing caches.
///
/// **Legacy adapter.** The service layer expresses the same workload as
/// `CompileRequest`s with an eval spec submitted to a `Session`
/// (`tests/service.rs` pins the two bit-identical).
///
/// # Errors
///
/// Returns [`SuiteError`] when any case failed to compile.
pub fn benchmark_suite_fidelities(
    cases: &[SuiteCase],
    cfg: &EvalConfig,
) -> Result<Vec<f64>, SuiteError> {
    try_suite_fidelities(&compile_suite(cases, cfg), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            crosstalk_seeds: vec![11],
            ..EvalConfig::paper_default()
        }
    }

    #[test]
    fn device_selection_matches_the_paper() {
        assert_eq!(device_for(4).coupling_count(), 4); // 2×2
        assert_eq!(device_for(6).coupling_count(), 7); // 2×3
        assert_eq!(device_for(9).coupling_count(), 12); // 3×3
        assert_eq!(device_for(12).coupling_count(), 17); // 3×4
    }

    #[test]
    fn co_optimization_beats_the_baseline() {
        let cfg = small_cfg();
        let base = benchmark_fidelity(
            BenchmarkKind::Qft,
            4,
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
            &cfg,
        )
        .expect("fits");
        let ours = benchmark_fidelity(
            BenchmarkKind::Qft,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &cfg,
        )
        .expect("fits");
        assert!(
            ours > base,
            "co-optimization ({ours}) must beat the baseline ({base})"
        );
    }

    #[test]
    fn fidelities_are_probabilities() {
        let cfg = small_cfg();
        for method in [PulseMethod::Gaussian, PulseMethod::Pert] {
            for sched in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
                let f = benchmark_fidelity(BenchmarkKind::HiddenShift, 4, method, sched, &cfg)
                    .expect("fits");
                assert!((0.0..=1.0 + 1e-9).contains(&f), "{method}+{sched}: {f}");
            }
        }
    }

    #[test]
    fn failed_compiles_are_surfaced_not_zeroed() {
        use crate::batch::{BatchCompiler, BatchJob};
        let cfg = small_cfg();
        // A 6-qubit circuit on a 4-qubit device: the compile job must fail,
        // and the failure must carry the job's label instead of silently
        // averaging in as fidelity 0.0.
        let big = generate(BenchmarkKind::Qft, 6, 1);
        let jobs = vec![
            BatchJob::new(big, PulseMethod::Gaussian, SchedulerKind::ParSched)
                .with_label("qft-6-on-2x2"),
        ];
        let report = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .run(jobs);
        assert_eq!(report.error_count(), 1);
        let err = try_suite_fidelities(&report, &cfg).unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].0, "qft-6-on-2x2");
        let msg = err.to_string();
        assert!(msg.contains("qft-6-on-2x2"), "label missing from: {msg}");
        assert!(msg.contains("6 qubits"), "cause missing from: {msg}");
    }

    #[test]
    #[should_panic(expected = "qft-6-on-2x2")]
    fn suite_fidelities_panics_with_the_failing_label() {
        use crate::batch::{BatchCompiler, BatchJob};
        let big = generate(BenchmarkKind::Qft, 6, 1);
        let jobs = vec![
            BatchJob::new(big, PulseMethod::Gaussian, SchedulerKind::ParSched)
                .with_label("qft-6-on-2x2"),
        ];
        let report = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .run(jobs);
        let _ = suite_fidelities_or_panic(&report, &small_cfg());
    }

    #[test]
    fn oversized_suite_cases_error_typed_instead_of_panicking() {
        let cfg = small_cfg();
        let err = benchmark_suite_fidelities(
            &[(
                BenchmarkKind::Qft,
                13,
                PulseMethod::Gaussian,
                SchedulerKind::ParSched,
            )],
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(
            err.failures[0].1,
            CoOptError::CircuitTooLarge {
                needed: 13,
                available: MAX_EVAL_QUBITS
            }
        );
    }

    #[test]
    fn decoherence_lowers_fidelity() {
        let cfg = small_cfg();
        let clean = benchmark_fidelity(
            BenchmarkKind::Ising,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &cfg,
        )
        .expect("fits");
        let noisy_cfg = small_cfg().with_decoherence_us(50.0, 80);
        let noisy = benchmark_fidelity(
            BenchmarkKind::Ising,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &noisy_cfg,
        )
        .expect("fits");
        assert!(noisy < clean + 1e-9, "decoherence {noisy} vs clean {clean}");
    }
}
