//! End-to-end evaluation: compile a benchmark, run it under the error
//! model, report fidelity. This is the pipeline behind Figures 20–25.
//!
//! Following the paper's evaluation, an n-qubit benchmark runs on the
//! smallest sub-grid of the 3×4 device that holds it ([`device_for`]):
//! 4 → 2×2, 6 → 2×3, 9 → 3×3, 12 → 3×4 — visible in Figure 25, whose
//! baseline (#couplings of the device) grows with benchmark size.

use zz_circuit::bench::{generate, BenchmarkKind};
use zz_sim::density::{Decoherence, EXACT_MAX_QUBITS};
use zz_sim::executor::{run_density, ZzErrorModel};
use zz_sim::program::{PlanProgram, TrajectoryProgram};
use zz_topology::Topology;

use crate::batch::{parallel_map, BatchCompiler, BatchJob, BatchReport};
use crate::{CoOptimizer, Compiled, PulseMethod, SchedulerKind};

/// The smallest evaluation sub-grid holding `n` qubits.
///
/// # Panics
///
/// Panics if `n > 12` (the paper's largest device).
///
/// # Example
///
/// ```
/// use zz_core::evaluate::device_for;
/// assert_eq!(device_for(6).qubit_count(), 6);   // 2×3
/// assert_eq!(device_for(7).qubit_count(), 9);   // 3×3
/// ```
pub fn device_for(n: usize) -> Topology {
    assert!(n <= 12, "the evaluation devices top out at 3x4 = 12 qubits");
    for (rows, cols) in [(2, 2), (2, 3), (3, 3), (3, 4)] {
        if rows * cols >= n {
            return Topology::grid(rows, cols);
        }
    }
    unreachable!("n <= 12 always fits one of the grids")
}

/// Configuration of a fidelity evaluation run.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Mean crosstalk strength (rad/ns).
    pub lambda_mean: f64,
    /// Crosstalk standard deviation (rad/ns).
    pub lambda_std: f64,
    /// Seeds for the per-coupling strength samples; fidelities are averaged
    /// over them.
    pub crosstalk_seeds: Vec<u64>,
    /// Seed for benchmark-circuit generation.
    pub circuit_seed: u64,
    /// Optional decoherence: `(model, trajectories, rng seed)`. Registers
    /// of up to [`EXACT_MAX_QUBITS`] qubits are evaluated exactly on
    /// density matrices; larger ones use Monte-Carlo trajectories.
    pub decoherence: Option<(Decoherence, usize, u64)>,
}

impl EvalConfig {
    /// The paper's setup: `λ ~ N(2π·200 kHz, (2π·50 kHz)²)`, averaged over
    /// 3 disorder samples, no decoherence.
    pub fn paper_default() -> Self {
        EvalConfig {
            lambda_mean: zz_sim::khz(200.0),
            lambda_std: zz_sim::khz(50.0),
            crosstalk_seeds: vec![11, 23, 37],
            circuit_seed: 7,
            decoherence: None,
        }
    }

    /// Adds decoherence (`T1 = T2 = t` µs) with the given trajectory count
    /// (used only above the exact-density-matrix register size).
    pub fn with_decoherence_us(mut self, t: f64, trajectories: usize) -> Self {
        self.decoherence = Some((Decoherence::equal_us(t), trajectories, 97));
        self
    }
}

/// Compiles benchmark `kind`-`n` under `(method, scheduler)` on the
/// benchmark's evaluation device.
pub fn compile_benchmark(
    kind: BenchmarkKind,
    n: usize,
    method: PulseMethod,
    scheduler: SchedulerKind,
    cfg: &EvalConfig,
) -> Compiled {
    let circuit = generate(kind, n, cfg.circuit_seed);
    CoOptimizer::builder()
        .topology(device_for(n))
        .pulse_method(method)
        .scheduler(scheduler)
        .build()
        .compile(&circuit)
        .expect("benchmarks are sized to the device")
}

/// Mean output-state fidelity of a compiled plan over the config's
/// crosstalk samples (and decoherence, when enabled).
///
/// The ideal reference state is computed once and reused across all
/// crosstalk seeds; each seed's noisy execution runs through the
/// precompiled programs of [`zz_sim::program`].
///
/// Monte-Carlo trajectories run sequentially here: every in-repo caller
/// ([`suite_fidelities`], the `fig23` binary) already fans evaluations
/// over a full-width [`parallel_map`] at the job level, and nesting a
/// second full-width pool per seed would oversubscribe the machine
/// quadratically. For a standalone parallel fan, call
/// [`zz_sim::executor::fidelity_with_decoherence`] directly.
pub fn fidelity_of(compiled: &Compiled, cfg: &EvalConfig) -> f64 {
    let topo = &compiled.topology;
    let ideal = PlanProgram::ideal(&compiled.plan).run();
    let mut total = 0.0;
    for &seed in &cfg.crosstalk_seeds {
        let model = ZzErrorModel::sampled(topo, cfg.lambda_mean, cfg.lambda_std, seed)
            .with_residuals(compiled.residuals);
        total += match &cfg.decoherence {
            None => {
                let noisy =
                    PlanProgram::compile(&compiled.plan, topo, &model, &compiled.durations).run();
                ideal.fidelity(&noisy)
            }
            Some((deco, trajectories, mc_seed)) => {
                if compiled.plan.qubit_count() <= EXACT_MAX_QUBITS {
                    // Exact: density-matrix evolution.
                    let dm = run_density(&compiled.plan, topo, &model, deco, &compiled.durations);
                    dm.fidelity_to_pure(&ideal.to_vector())
                } else {
                    TrajectoryProgram::compile(
                        &compiled.plan,
                        topo,
                        &model,
                        deco,
                        &compiled.durations,
                    )
                    .mean_fidelity(&ideal, *trajectories, *mc_seed ^ seed, 1)
                }
            }
        };
    }
    total / cfg.crosstalk_seeds.len() as f64
}

/// Convenience: compile and evaluate in one call — the quantity plotted in
/// Figures 20, 21 and 23.
pub fn benchmark_fidelity(
    kind: BenchmarkKind,
    n: usize,
    method: PulseMethod,
    scheduler: SchedulerKind,
    cfg: &EvalConfig,
) -> f64 {
    let compiled = compile_benchmark(kind, n, method, scheduler, cfg);
    fidelity_of(&compiled, cfg)
}

/// One benchmark-suite case: a benchmark instance × compile configuration.
pub type SuiteCase = (BenchmarkKind, usize, PulseMethod, SchedulerKind);

/// Compiles a whole suite of cases through one shared [`BatchCompiler`]
/// (each job runs the pass pipeline of [`crate::pipeline`]): calibration
/// runs at most once per pulse method, and cases that share a benchmark
/// instance (same kind and size) are generated once and routed once (the
/// circuit itself is shared via [`BatchJob::shared`], the translation via
/// the compiler's shared [`crate::pipeline::RouteMemo`]).
///
/// When the `ZZ_CACHE_DIR` environment variable names a cache directory,
/// the compiler is additionally backed by an on-disk
/// [`zz_persist::ArtifactStore`], so a second run of the same suite — in
/// a new process — skips calibration and routing entirely.
///
/// This is the compile stage behind Figures 20–25; the figure binaries
/// feed the report into [`suite_fidelities`] and print its [`Display`]
/// form (one summary line plus the per-stage timing breakdown aggregated
/// from the jobs' pipeline traces).
///
/// [`Display`]: std::fmt::Display
pub fn compile_suite(cases: &[SuiteCase], cfg: &EvalConfig) -> BatchReport {
    let mut instances: std::collections::HashMap<(BenchmarkKind, usize), std::sync::Arc<_>> =
        std::collections::HashMap::new();
    let jobs: Vec<BatchJob> = cases
        .iter()
        .map(|&(kind, n, method, scheduler)| {
            let circuit = instances
                .entry((kind, n))
                .or_insert_with(|| std::sync::Arc::new(generate(kind, n, cfg.circuit_seed)));
            BatchJob::shared(std::sync::Arc::clone(circuit), method, scheduler)
                .with_topology(device_for(n))
                .with_label(format!("{kind}-{n}/{method}+{scheduler}"))
        })
        .collect();
    BatchCompiler::builder().store_from_env().build().run(jobs)
}

/// Evaluates every compiled job of a suite report in parallel, preserving
/// order.
///
/// Failed compile jobs are an error, not a data point: they used to map to
/// fidelity 0.0, which silently dragged suite averages (and the figure
/// tables built from them) down with no signal that anything went wrong.
/// Now every failed job is reported with its label — as an `Err` listing
/// all failures, so callers can decide whether to abort or re-slice the
/// suite.
pub fn try_suite_fidelities(report: &BatchReport, cfg: &EvalConfig) -> Result<Vec<f64>, String> {
    let failures: Vec<String> = report
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().err().map(|e| format!("{}: {e}", o.label)))
        .collect();
    if !failures.is_empty() {
        return Err(format!(
            "{} compile job(s) failed: [{}]",
            failures.len(),
            failures.join("; ")
        ));
    }
    let threads = crate::batch::default_threads();
    Ok(parallel_map(report.outcomes.len(), threads, |i| {
        let compiled = report.outcomes[i]
            .result
            .as_ref()
            .expect("failures were filtered above");
        fidelity_of(compiled, cfg)
    }))
}

/// [`try_suite_fidelities`] for suites that must be fully compilable —
/// the figure binaries, whose benchmarks are sized to their devices.
///
/// # Panics
///
/// Panics with the failing jobs' labels if any compile job errored
/// (instead of silently folding them in as fidelity 0.0).
pub fn suite_fidelities(report: &BatchReport, cfg: &EvalConfig) -> Vec<f64> {
    try_suite_fidelities(report, cfg)
        .unwrap_or_else(|failures| panic!("suite evaluation aborted: {failures}"))
}

/// Compile-and-evaluate for a whole suite: [`compile_suite`] followed by
/// [`suite_fidelities`]. Equivalent to mapping [`benchmark_fidelity`] over
/// `cases`, but compiles on a worker pool with shared calibration/routing
/// caches.
pub fn benchmark_suite_fidelities(cases: &[SuiteCase], cfg: &EvalConfig) -> Vec<f64> {
    suite_fidelities(&compile_suite(cases, cfg), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            crosstalk_seeds: vec![11],
            ..EvalConfig::paper_default()
        }
    }

    #[test]
    fn device_selection_matches_the_paper() {
        assert_eq!(device_for(4).coupling_count(), 4); // 2×2
        assert_eq!(device_for(6).coupling_count(), 7); // 2×3
        assert_eq!(device_for(9).coupling_count(), 12); // 3×3
        assert_eq!(device_for(12).coupling_count(), 17); // 3×4
    }

    #[test]
    fn co_optimization_beats_the_baseline() {
        let cfg = small_cfg();
        let base = benchmark_fidelity(
            BenchmarkKind::Qft,
            4,
            PulseMethod::Gaussian,
            SchedulerKind::ParSched,
            &cfg,
        );
        let ours = benchmark_fidelity(
            BenchmarkKind::Qft,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &cfg,
        );
        assert!(
            ours > base,
            "co-optimization ({ours}) must beat the baseline ({base})"
        );
    }

    #[test]
    fn fidelities_are_probabilities() {
        let cfg = small_cfg();
        for method in [PulseMethod::Gaussian, PulseMethod::Pert] {
            for sched in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
                let f = benchmark_fidelity(BenchmarkKind::HiddenShift, 4, method, sched, &cfg);
                assert!((0.0..=1.0 + 1e-9).contains(&f), "{method}+{sched}: {f}");
            }
        }
    }

    #[test]
    fn failed_compiles_are_surfaced_not_zeroed() {
        use crate::batch::{BatchCompiler, BatchJob};
        let cfg = small_cfg();
        // A 6-qubit circuit on a 4-qubit device: the compile job must fail,
        // and the failure must carry the job's label instead of silently
        // averaging in as fidelity 0.0.
        let big = generate(BenchmarkKind::Qft, 6, 1);
        let jobs = vec![
            BatchJob::new(big, PulseMethod::Gaussian, SchedulerKind::ParSched)
                .with_label("qft-6-on-2x2"),
        ];
        let report = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .run(jobs);
        assert_eq!(report.error_count(), 1);
        let err = try_suite_fidelities(&report, &cfg).unwrap_err();
        assert!(err.contains("qft-6-on-2x2"), "label missing from: {err}");
        assert!(err.contains("6 qubits"), "cause missing from: {err}");
    }

    #[test]
    #[should_panic(expected = "qft-6-on-2x2")]
    fn suite_fidelities_panics_with_the_failing_label() {
        use crate::batch::{BatchCompiler, BatchJob};
        let big = generate(BenchmarkKind::Qft, 6, 1);
        let jobs = vec![
            BatchJob::new(big, PulseMethod::Gaussian, SchedulerKind::ParSched)
                .with_label("qft-6-on-2x2"),
        ];
        let report = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .run(jobs);
        let _ = suite_fidelities(&report, &small_cfg());
    }

    #[test]
    fn decoherence_lowers_fidelity() {
        let cfg = small_cfg();
        let clean = benchmark_fidelity(
            BenchmarkKind::Ising,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &cfg,
        );
        let noisy_cfg = small_cfg().with_decoherence_us(50.0, 80);
        let noisy = benchmark_fidelity(
            BenchmarkKind::Ising,
            4,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            &noisy_cfg,
        );
        assert!(noisy < clean + 1e-9, "decoherence {noisy} vs clean {clean}");
    }
}
