//! Persistence glue: the [`Encode`]/[`Decode`] implementations for this
//! crate's artifact types and the cache-key derivations used by the
//! on-disk store.
//!
//! The codec and store themselves live in [`zz_persist`]; this module only
//! contributes what the orphan rule requires to live here (impls for
//! [`Compiled`] and [`SchedulerKind`]) plus the key functions that bind
//! artifacts to the *meaning* of a compilation request:
//!
//! * a **native artifact** is keyed by [`crate::batch::shape_key`]
//!   (circuit digest × device shape) — routing depends on nothing else;
//! * a **compiled artifact** additionally mixes in every scheduling
//!   parameter ([`compiled_artifact_key`]) — pulse method, scheduler,
//!   `α`, `k` and the suppression requirement — so two jobs share a cached
//!   plan exactly when a sequential compile would produce identical bits.
//!
//! The schema version of `zz_persist` stamps every container; key meaning
//! is additionally pinned by `tests/golden_keys.rs`, which fails whenever
//! `content_digest`/`shape_key` silently change across PRs.

use zz_circuit::Circuit;
use zz_persist::{fnv1a_mix, Decode, DecodeError, Decoder, Encode, Encoder};
use zz_sched::zzx::Requirement;
use zz_sched::{GateDurations, SchedulePlan};
use zz_sim::executor::ResidualTable;
use zz_topology::Topology;

use crate::{Compiled, PulseMethod, SchedulerKind};

/// Revision stamp of the *compilation pipeline's observable output*,
/// mixed into every disk key that caches pipeline results. Bump it when
/// routing, native translation or scheduling starts producing different
/// output for the same input (an improved heuristic, a reordered
/// emission, …) — old cache entries then simply miss, instead of serving
/// plans from the previous algorithm. Encoding changes bump
/// [`zz_persist::SCHEMA_VERSION`] instead; key-meaning changes are caught
/// by `tests/golden_keys.rs`.
pub const PIPELINE_REVISION: u32 = 1;

impl Encode for SchedulerKind {
    fn encode(&self, out: &mut Encoder) {
        out.u8(scheduler_tag(*self) as u8);
    }
}

impl Decode for SchedulerKind {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => SchedulerKind::ParSched,
            1 => SchedulerKind::ZzxSched,
            _ => return Err(DecodeError::Invalid("scheduler tag")),
        })
    }
}

impl Encode for Compiled {
    fn encode(&self, out: &mut Encoder) {
        self.plan.encode(out);
        self.topology.encode(out);
        self.durations.encode(out);
        self.method.encode(out);
        self.residuals.encode(out);
    }
}

impl Decode for Compiled {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let plan = SchedulePlan::decode(r)?;
        let topology = Topology::decode(r)?;
        let durations = GateDurations::decode(r)?;
        let method = PulseMethod::decode(r)?;
        let residuals = ResidualTable::decode(r)?;
        if plan.qubit_count() != topology.qubit_count() {
            return Err(DecodeError::Invalid("plan/topology qubit mismatch"));
        }
        // Cross-field invariants the error model indexes by: per-layer
        // suppression metrics must cover exactly the device's couplings
        // (SchedulePlan::decode alone cannot check this — it has no
        // topology in scope).
        for layer in &plan.layers {
            if layer.metrics.suppressed.len() != topology.coupling_count() {
                return Err(DecodeError::Invalid("metrics/coupling mismatch"));
            }
        }
        Ok(Compiled {
            plan,
            topology,
            durations,
            method,
            residuals,
        })
    }
}

/// The payload of an on-disk `compiled/` artifact: the [`Compiled`] plan
/// *plus the full request that produced it*. The request fields are
/// re-verified on every load ([`matches`](Self::matches)), so a 64-bit
/// key collision — between circuits or between scheduling parameters —
/// costs a recompile, never a wrong plan (the same guarantee the
/// `native/` artifacts get from storing their source circuit).
#[derive(Debug)]
pub struct CompiledArtifact {
    /// The logical circuit the plan was compiled from.
    pub circuit: Circuit,
    /// The scheduling policy of the request.
    pub scheduler: SchedulerKind,
    /// The NQ-vs-NC weight α of the request.
    pub alpha: f64,
    /// The top-k path-relaxing budget of the request.
    pub k: usize,
    /// The explicit suppression requirement, if the request had one
    /// (`None` = the topology-derived paper default).
    pub requirement: Option<Requirement>,
    /// The compiled result.
    pub compiled: Compiled,
}

impl CompiledArtifact {
    /// Whether this artifact answers exactly the given request (exact
    /// α bit pattern; topology and method are checked against the
    /// embedded [`Compiled`]).
    #[allow(clippy::too_many_arguments)]
    pub fn matches(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        method: PulseMethod,
        scheduler: SchedulerKind,
        alpha: f64,
        k: usize,
        requirement: Option<Requirement>,
    ) -> bool {
        self.circuit == *circuit
            && self.compiled.topology == *topology
            && self.compiled.method == method
            && self.scheduler == scheduler
            && self.alpha.to_bits() == alpha.to_bits()
            && self.k == k
            && self.requirement == requirement
    }
}

impl Encode for CompiledArtifact {
    fn encode(&self, out: &mut Encoder) {
        self.circuit.encode(out);
        self.scheduler.encode(out);
        out.f64(self.alpha);
        out.usize(self.k);
        self.requirement.encode(out);
        self.compiled.encode(out);
    }
}

impl Decode for CompiledArtifact {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CompiledArtifact {
            circuit: Circuit::decode(r)?,
            scheduler: SchedulerKind::decode(r)?,
            alpha: r.f64()?,
            k: r.usize()?,
            requirement: Option::decode(r)?,
            compiled: Compiled::decode(r)?,
        })
    }
}

/// Stable on-disk tag of a pulse method (independent of enum ordering).
fn method_tag(method: PulseMethod) -> u64 {
    match method {
        PulseMethod::Gaussian => 0,
        PulseMethod::OptCtrl => 1,
        PulseMethod::Pert => 2,
        PulseMethod::Dcg => 3,
    }
}

/// Stable on-disk tag of a scheduler.
fn scheduler_tag(scheduler: SchedulerKind) -> u64 {
    match scheduler {
        SchedulerKind::ParSched => 0,
        SchedulerKind::ZzxSched => 1,
    }
}

/// The on-disk key of a compiled plan: the routing shape key extended with
/// every parameter the output depends on — pulse method, scheduler, exact
/// α bit pattern, `k`, the suppression requirement (`None`, the
/// topology-derived paper default, is keyed distinctly from any explicit
/// requirement), the calibration strength `λ` (a plan embeds residuals
/// measured at that strength), and [`PIPELINE_REVISION`]. Collisions are
/// harmless: the stored [`CompiledArtifact`] re-verifies the full request
/// on load.
pub fn compiled_artifact_key(
    shape: u64,
    method: PulseMethod,
    scheduler: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
) -> u64 {
    let mut h = fnv1a_mix(shape, PIPELINE_REVISION as u64);
    h = fnv1a_mix(h, crate::calib::calibration_lambda().to_bits());
    h = fnv1a_mix(h, method_tag(method));
    h = fnv1a_mix(h, scheduler_tag(scheduler));
    h = fnv1a_mix(h, alpha.to_bits());
    h = fnv1a_mix(h, k as u64);
    match requirement {
        None => h = fnv1a_mix(h, 0),
        Some(req) => {
            h = fnv1a_mix(h, 1);
            h = fnv1a_mix(h, req.nq_limit as u64);
            h = fnv1a_mix(h, req.nc_limit as u64);
        }
    }
    h
}

/// The on-disk key of a routed `native/` artifact: the shape key stamped
/// with [`PIPELINE_REVISION`], so a routing-algorithm change invalidates
/// cached translations (the in-memory memo keeps using the bare
/// [`crate::batch::shape_key`] — it never outlives the process).
pub fn native_artifact_key(shape: u64) -> u64 {
    fnv1a_mix(shape, PIPELINE_REVISION as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoOptimizer;
    use zz_circuit::bench::{generate, BenchmarkKind};
    use zz_persist::roundtrip;

    #[test]
    fn compiled_roundtrips_bit_identically() {
        let circuit = generate(BenchmarkKind::Qft, 4, 7);
        for (method, scheduler) in [
            (PulseMethod::Gaussian, SchedulerKind::ParSched),
            (PulseMethod::Pert, SchedulerKind::ZzxSched),
            (PulseMethod::Dcg, SchedulerKind::ZzxSched),
        ] {
            let compiled = CoOptimizer::builder()
                .topology(Topology::grid(2, 2))
                .pulse_method(method)
                .scheduler(scheduler)
                .build()
                .compile(&circuit)
                .expect("fits");
            let back = roundtrip(&compiled).expect("roundtrip");
            assert_eq!(compiled, back, "{method}+{scheduler}");
        }
    }

    #[test]
    fn compiled_artifact_verifies_its_request() {
        let circuit = generate(BenchmarkKind::Qft, 4, 7);
        let topo = Topology::grid(2, 2);
        let compiled = CoOptimizer::builder()
            .topology(topo.clone())
            .build()
            .compile(&circuit)
            .expect("fits");
        let artifact = CompiledArtifact {
            circuit: circuit.clone(),
            scheduler: SchedulerKind::ZzxSched,
            alpha: 0.5,
            k: 3,
            requirement: None,
            compiled,
        };
        let back = roundtrip(&artifact).expect("roundtrip");
        assert!(back.matches(
            &circuit,
            &topo,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            0.5,
            3,
            None
        ));
        // Any drifting request field — as under a key collision — rejects.
        let mut other = circuit.clone();
        other.push(zz_circuit::Gate::X, &[0]);
        assert!(!back.matches(
            &other,
            &topo,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            0.5,
            3,
            None
        ));
        assert!(!back.matches(
            &circuit,
            &topo,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            0.25,
            3,
            None
        ));
        assert!(!back.matches(
            &circuit,
            &topo,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            0.5,
            3,
            Some(Requirement {
                nq_limit: 4,
                nc_limit: 8
            })
        ));
    }

    #[test]
    fn corrupt_metrics_width_is_a_decode_error_not_a_panic() {
        // A Compiled whose layer metrics cover fewer couplings than its
        // topology must be rejected at decode time (the error model would
        // index out of bounds otherwise).
        let circuit = generate(BenchmarkKind::Qft, 4, 7);
        let mut compiled = CoOptimizer::builder()
            .topology(Topology::grid(2, 2))
            .build()
            .compile(&circuit)
            .expect("fits");
        for layer in &mut compiled.plan.layers {
            layer.metrics.suppressed.truncate(1);
        }
        assert_eq!(
            roundtrip(&compiled).unwrap_err(),
            DecodeError::Invalid("metrics/coupling mismatch")
        );
    }

    #[test]
    fn scheduler_kind_roundtrips() {
        for s in [SchedulerKind::ParSched, SchedulerKind::ZzxSched] {
            assert_eq!(s, roundtrip(&s).unwrap());
        }
    }

    #[test]
    fn compiled_keys_separate_every_parameter() {
        let shape = 0x1234_5678_9abc_def0;
        let base = compiled_artifact_key(
            shape,
            PulseMethod::Pert,
            SchedulerKind::ZzxSched,
            0.5,
            3,
            None,
        );
        let variants = [
            compiled_artifact_key(
                shape ^ 1,
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
                0.5,
                3,
                None,
            ),
            compiled_artifact_key(
                shape,
                PulseMethod::Dcg,
                SchedulerKind::ZzxSched,
                0.5,
                3,
                None,
            ),
            compiled_artifact_key(
                shape,
                PulseMethod::Pert,
                SchedulerKind::ParSched,
                0.5,
                3,
                None,
            ),
            compiled_artifact_key(
                shape,
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
                0.25,
                3,
                None,
            ),
            compiled_artifact_key(
                shape,
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
                0.5,
                4,
                None,
            ),
            compiled_artifact_key(
                shape,
                PulseMethod::Pert,
                SchedulerKind::ZzxSched,
                0.5,
                3,
                Some(Requirement {
                    nq_limit: 4,
                    nc_limit: 8,
                }),
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} must key apart");
        }
    }
}
