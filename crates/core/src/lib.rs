//! The pulse and scheduling co-optimization framework (the paper's
//! contribution, assembled from the workspace substrates).
//!
//! A [`CoOptimizer`] pairs a pulse-optimization method (`Gaussian`,
//! `OptCtrl`, `Pert`, `DCG`) with a scheduling policy (`ParSched`,
//! `ZZXSched`) and compiles logical circuits end to end:
//!
//! 1. route onto the device topology ([`zz_circuit::route`]),
//! 2. translate to the native gate set ([`zz_circuit::native`]),
//! 3. schedule into layers with identity supplementation
//!    ([`zz_sched`]),
//! 4. attach the method's calibrated pulses and their *measured*
//!    cross-region residual factor ([`calib`]),
//!
//! after which [`evaluate`] scores the compiled circuit under the ZZ (and
//! optionally decoherence) error model of [`zz_sim`].
//!
//! Those stages are first-class: [`pipeline`] models them as typed
//! passes (`Logical → Routed → Native → Scheduled → Compiled`) run by a
//! [`PassManager`] with per-pass instrumentation ([`PipelineTrace`]) and
//! stage-granular caching; `CoOptimizer` is a thin facade over it.
//!
//! For suite-scale traffic, [`batch`] compiles many jobs concurrently on a
//! worker pool with a shared calibration cache ([`calib::CalibCache`]) and
//! a routing/native-translation memo, producing bit-identical results to
//! sequential [`CoOptimizer::compile`] calls. Backed by an on-disk
//! [`zz_persist::ArtifactStore`], those caches additionally persist across
//! processes ([`persist`] holds the codec glue), so a warm start skips
//! calibration and routing entirely.
//!
//! # Example
//!
//! ```
//! use zz_core::{CoOptimizer, PulseMethod, SchedulerKind};
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_topology::Topology;
//!
//! let topo = Topology::grid(3, 4);
//! let circuit = generate(BenchmarkKind::Qaoa, 6, 1);
//!
//! let baseline = CoOptimizer::builder()
//!     .topology(topo.clone())
//!     .pulse_method(PulseMethod::Gaussian)
//!     .scheduler(SchedulerKind::ParSched)
//!     .build();
//! let ours = CoOptimizer::builder()
//!     .topology(topo)
//!     .pulse_method(PulseMethod::Pert)
//!     .scheduler(SchedulerKind::ZzxSched)
//!     .build();
//!
//! let a = baseline.compile(&circuit)?;
//! let b = ours.compile(&circuit)?;
//! assert!(b.plan.mean_nc() <= a.plan.mean_nc());
//! # Ok::<(), zz_core::CoOptError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod calib;
pub mod evaluate;
mod optimizer;
pub mod options;
pub mod persist;
pub mod pipeline;

pub use batch::{BatchCompiler, BatchCompilerBuilder, BatchJob, BatchReport, DiskStatus};
pub use optimizer::{CoOptError, CoOptimizer, CoOptimizerBuilder, Compiled, SchedulerKind};
pub use options::CompileOptions;
pub use pipeline::{PassManager, PassManagerBuilder, PipelineOutcome, PipelineTrace, Stage};
pub use zz_pulse::library::PulseMethod;
