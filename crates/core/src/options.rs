//! [`CompileOptions`]: the one request-configuration struct shared by
//! every compile entry point.
//!
//! Before this module existed, the same five knobs — pulse method,
//! scheduler, the α weight and top-k budget of Algorithm 1, and the
//! suppression requirement `R` — were duplicated field-for-field across
//! [`CoOptimizerBuilder`](crate::CoOptimizerBuilder),
//! [`BatchJob`](crate::BatchJob) and the pass-manager builder, each with
//! its own override semantics. Now all of them (and the service layer's
//! `CompileRequest`) carry one [`CompileOptions`] value.
//!
//! The α/k/requirement knobs are *optional*: `None` means "use the
//! engine default" ([`DEFAULT_ALPHA`], [`DEFAULT_K`], and the
//! topology-derived paper requirement respectively). This is what lets a
//! batch job inherit its compiler's sweep-wide setting while a single
//! job overrides just one knob.

use zz_pulse::library::PulseMethod;
use zz_sched::zzx::Requirement;

use crate::SchedulerKind;

/// The default NQ-vs-NC weight α of Algorithm 1.
pub const DEFAULT_ALPHA: f64 = 0.5;

/// The default top-k path-relaxing budget of Algorithm 1.
pub const DEFAULT_K: usize = 3;

/// The pulse/scheduling configuration of one compile request, shared by
/// [`CoOptimizerBuilder`](crate::CoOptimizerBuilder),
/// [`BatchJob`](crate::BatchJob) and the service layer's
/// `CompileRequest`.
///
/// # Example
///
/// ```
/// use zz_core::{CompileOptions, PulseMethod, SchedulerKind};
///
/// let opts = CompileOptions::new(PulseMethod::Pert, SchedulerKind::ZzxSched)
///     .with_alpha(0.25);
/// assert_eq!(opts.alpha_or_default(), 0.25);
/// assert_eq!(opts.k_or_default(), zz_core::options::DEFAULT_K);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompileOptions {
    /// The pulse method to calibrate for.
    pub method: PulseMethod,
    /// The scheduling policy.
    pub scheduler: SchedulerKind,
    /// The NQ-vs-NC weight α of Algorithm 1; `None` = the caller's base
    /// setting (ultimately [`DEFAULT_ALPHA`]).
    pub alpha: Option<f64>,
    /// The top-k path-relaxing budget of Algorithm 1; `None` = the
    /// caller's base setting (ultimately [`DEFAULT_K`]).
    pub k: Option<usize>,
    /// The suppression requirement `R`; `None` = the caller's base
    /// setting (ultimately the paper requirement derived from the
    /// device).
    pub requirement: Option<Requirement>,
}

impl Default for CompileOptions {
    /// The paper's co-optimization defaults: `Pert` pulses under
    /// `ZZXSched`, engine-default α/k, paper requirement.
    fn default() -> Self {
        CompileOptions::new(PulseMethod::Pert, SchedulerKind::ZzxSched)
    }
}

impl CompileOptions {
    /// Options for a `(method, scheduler)` pair with every other knob at
    /// its engine default.
    pub fn new(method: PulseMethod, scheduler: SchedulerKind) -> Self {
        CompileOptions {
            method,
            scheduler,
            alpha: None,
            k: None,
            requirement: None,
        }
    }

    /// Sets the pulse method.
    pub fn with_method(mut self, method: PulseMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the NQ-vs-NC weight α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Overrides the top-k path-relaxing budget.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the suppression requirement `R`.
    pub fn with_requirement(mut self, requirement: Requirement) -> Self {
        self.requirement = Some(requirement);
        self
    }

    /// The effective α over a caller-supplied base setting.
    pub fn alpha_or(&self, base: f64) -> f64 {
        self.alpha.unwrap_or(base)
    }

    /// The effective top-k budget over a caller-supplied base setting.
    pub fn k_or(&self, base: usize) -> usize {
        self.k.unwrap_or(base)
    }

    /// The effective requirement over a caller-supplied base setting
    /// (`None` = derive the paper requirement from the device).
    pub fn requirement_or(&self, base: Option<Requirement>) -> Option<Requirement> {
        self.requirement.or(base)
    }

    /// The effective α with no base setting ([`DEFAULT_ALPHA`]).
    pub fn alpha_or_default(&self) -> f64 {
        self.alpha_or(DEFAULT_ALPHA)
    }

    /// The effective top-k budget with no base setting ([`DEFAULT_K`]).
    pub fn k_or_default(&self) -> usize {
        self.k_or(DEFAULT_K)
    }

    /// The default label for a request with these options
    /// (`"{method}+{scheduler}"` — the figure legend style).
    pub fn default_label(&self) -> String {
        format!("{}+{}", self.method, self.scheduler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_win_over_bases() {
        let opts = CompileOptions::default().with_alpha(2.0);
        assert_eq!(opts.alpha_or(0.5), 2.0);
        assert_eq!(opts.k_or(7), 7, "unset knobs defer to the base");
        let req = Requirement {
            nq_limit: 1,
            nc_limit: 1,
        };
        assert_eq!(opts.requirement_or(Some(req)), Some(req));
        assert_eq!(
            opts.with_requirement(req).requirement_or(None),
            Some(req),
            "set knobs ignore the base"
        );
    }

    #[test]
    fn default_matches_the_paper_co_optimization() {
        let opts = CompileOptions::default();
        assert_eq!(opts.method, PulseMethod::Pert);
        assert_eq!(opts.scheduler, SchedulerKind::ZzxSched);
        assert_eq!(opts.alpha_or_default(), DEFAULT_ALPHA);
        assert_eq!(opts.k_or_default(), DEFAULT_K);
        assert_eq!(opts.default_label(), "Pert+ZZXSched");
    }
}
