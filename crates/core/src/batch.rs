//! Batch compilation: many `(circuit, method, scheduler)` jobs compiled
//! concurrently with shared caches.
//!
//! The paper evaluates its co-optimization over whole benchmark *suites*
//! (Figures 20–25 each compile dozens of circuit × configuration pairs),
//! and a production compiler serves exactly that shape of traffic. A
//! [`BatchCompiler`] runs such a suite on a small worker pool and shares
//! the two kinds of work that are identical across jobs:
//!
//! * **calibration** — per-method residual tables come from the process-wide
//!   [`CalibCache`], so each pulse method is
//!   measured at most once per process no matter how many jobs use it;
//! * **routing / native translation** — jobs whose circuits are structurally
//!   identical ([`Circuit::content_digest`]) and that target the same device
//!   are routed and translated once, then share the resulting
//!   [`zz_circuit::native::NativeCircuit`] (scheduling still runs per job: it depends on the
//!   scheduler and its parameters).
//!
//! With an optional on-disk [`ArtifactStore`]
//! ([`BatchCompilerBuilder::store`], or `ZZ_CACHE_DIR` via
//! [`BatchCompilerBuilder::store_from_env`]), both kinds of work persist
//! *across* processes: compiled plans, routed translations and residual
//! tables are published to the cache directory and served on the next run,
//! so a warm process compiles a repeated suite with zero routing passes
//! and zero calibration measurements (`tests/persist.rs` asserts this).
//! Damaged or stale cache files are silently recompiled; an unwritable
//! cache directory degrades to the in-memory behavior.
//!
//! Results are deterministic: every job's [`Compiled`] output is
//! bit-identical to what a sequential [`crate::CoOptimizer::compile`] call with
//! the same settings would produce (`tests/batch.rs` asserts this), and
//! the disk codec round-trips plans bit-identically, so warm starts
//! preserve that guarantee.
//!
//! # Example
//!
//! ```
//! use zz_core::batch::{BatchCompiler, BatchJob};
//! use zz_core::{PulseMethod, SchedulerKind};
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_topology::Topology;
//!
//! let circuit = generate(BenchmarkKind::Qft, 4, 7);
//! let jobs = vec![
//!     BatchJob::new(circuit.clone(), PulseMethod::Gaussian, SchedulerKind::ParSched),
//!     BatchJob::new(circuit, PulseMethod::Pert, SchedulerKind::ZzxSched),
//! ];
//! let report = BatchCompiler::builder()
//!     .topology(Topology::grid(2, 2))
//!     .build()
//!     .run(jobs);
//! assert_eq!(report.outcomes.len(), 2);
//! assert_eq!(report.error_count(), 0);
//! // The two jobs share one routing pass: same circuit, same device.
//! assert_eq!(report.route_misses, 1);
//! assert_eq!(report.route_hits, 1);
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use zz_circuit::Circuit;
use zz_persist::ArtifactStore;
use zz_pulse::library::PulseMethod;
use zz_sched::zzx::Requirement;
use zz_topology::Topology;

use crate::calib::CalibCache;
use crate::options::CompileOptions;
use crate::pipeline::{CacheDisposition, PassManager, PipelineTrace, RouteMemo, Stage};
use crate::{CoOptError, Compiled, SchedulerKind};

pub use crate::pipeline::shape_key;

/// One compilation request: a circuit plus the pulse/scheduling
/// configuration to compile it under.
///
/// The configuration is one shared [`CompileOptions`] value — the same
/// struct [`crate::CoOptimizerBuilder`] and the service layer's
/// `CompileRequest` carry — so a job's unset α/k/requirement knobs
/// (`None`) inherit the compiler's batch-wide settings.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The logical circuit (shared, so many jobs can reference one circuit
    /// without copying it).
    pub circuit: Arc<Circuit>,
    /// The pulse/scheduling configuration; unset knobs inherit the
    /// compiler's batch-wide settings.
    pub options: CompileOptions,
    /// Per-job device override; `None` uses the compiler's base topology.
    pub topology: Option<Topology>,
    /// Human-readable label carried into the [`JobOutcome`].
    pub label: String,
}

impl BatchJob {
    /// Creates a job with the default label `"{method}+{scheduler}"`.
    pub fn new(circuit: Circuit, method: PulseMethod, scheduler: SchedulerKind) -> Self {
        Self::shared(Arc::new(circuit), method, scheduler)
    }

    /// Shares an already-`Arc`ed circuit (avoids a deep copy when many jobs
    /// reuse one circuit).
    pub fn shared(circuit: Arc<Circuit>, method: PulseMethod, scheduler: SchedulerKind) -> Self {
        Self::with_options(circuit, CompileOptions::new(method, scheduler))
    }

    /// Creates a job from a full [`CompileOptions`] value.
    pub fn with_options(circuit: Arc<Circuit>, options: CompileOptions) -> Self {
        BatchJob {
            circuit,
            label: options.default_label(),
            options,
            topology: None,
        }
    }

    /// The pulse method this job calibrates for.
    pub fn method(&self) -> PulseMethod {
        self.options.method
    }

    /// The scheduling policy of this job.
    pub fn scheduler(&self) -> SchedulerKind {
        self.options.scheduler
    }

    /// Overrides the device this job compiles onto.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides the NQ-vs-NC weight α for this job only.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.options.alpha = Some(alpha);
        self
    }

    /// Overrides the top-k path-relaxing budget for this job only.
    pub fn with_k(mut self, k: usize) -> Self {
        self.options.k = Some(k);
        self
    }

    /// Overrides the suppression requirement for this job only.
    pub fn with_requirement(mut self, requirement: Requirement) -> Self {
        self.options.requirement = Some(requirement);
        self
    }

    /// Overrides the job label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Whether the on-disk store served a job's compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskStatus {
    /// No store is configured, or the job failed before the lookup.
    NotConsulted,
    /// The fully compiled plan was loaded from disk (no routing,
    /// scheduling or calibration ran for this job).
    Hit,
    /// The store had no usable artifact for this job; it compiled from
    /// scratch and published its result for the next process.
    Miss,
}

/// The result of one [`BatchJob`].
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's label.
    pub label: String,
    /// The compiled circuit, or why compilation was rejected.
    pub result: Result<Compiled, CoOptError>,
    /// Wall-clock time this job spent compiling (excluding queue wait).
    pub compile_time: Duration,
    /// Whether routing/native translation was skipped — served from the
    /// in-memory memo or the on-disk store.
    pub route_cache_hit: bool,
    /// Whether the on-disk store served this job's compiled plan.
    pub disk: DiskStatus,
    /// The pipeline's per-pass instrumentation for this job (empty when
    /// the job failed validation before any stage ran).
    pub trace: PipelineTrace,
}

/// Aggregate results of a [`BatchCompiler::run`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in the order the jobs were submitted.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Jobs whose routing was served from the shared memo.
    pub route_hits: usize,
    /// Jobs that had to route (one per distinct circuit × device shape).
    pub route_misses: usize,
    /// Jobs whose compiled plan was served from the on-disk store.
    pub disk_hits: usize,
    /// Jobs that consulted the on-disk store and missed (0 when no store
    /// is configured).
    pub disk_misses: usize,
    /// Pulse-level calibration measurements that ran during this batch's
    /// time window, measured as a delta of this compiler's
    /// [`CalibCache`] counter (so at most one per pulse method per
    /// cache; a concurrent batch's measurement can be attributed to
    /// whichever window it lands in).
    pub calibration_runs: usize,
}

impl BatchReport {
    /// The successfully compiled circuits, in submission order (errors are
    /// skipped; see [`error_count`](Self::error_count)).
    pub fn successes(&self) -> impl Iterator<Item = &Compiled> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok())
    }

    /// Number of jobs that failed to compile.
    pub fn error_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// Sum of per-job compile times — with caching and a worker pool this
    /// exceeds [`wall_time`](Self::wall_time) on multi-core machines.
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.compile_time).sum()
    }

    /// Per-stage aggregation of every job's pipeline trace: how often
    /// each stage actually executed vs. was served from a cache, and the
    /// total wall time it consumed across the batch. Stages appear in
    /// pipeline order; a stage no job reached reports all zeros.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let mut stats = StageStats {
                    stage,
                    executed: 0,
                    cache_hits: 0,
                    wall: Duration::ZERO,
                };
                for outcome in &self.outcomes {
                    for pass in outcome.trace.passes.iter().filter(|p| p.stage == stage) {
                        if pass.cache.is_hit() {
                            stats.cache_hits += 1;
                        } else {
                            stats.executed += 1;
                        }
                        stats.wall += pass.wall;
                    }
                }
                stats
            })
            .collect()
    }
}

/// One row of [`BatchReport::stage_stats`]: a pipeline stage's aggregate
/// execution counts and wall time across a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The pipeline stage.
    pub stage: Stage,
    /// Jobs whose pass for this stage actually ran.
    pub executed: usize,
    /// Jobs served from a stage cache (route memo, disk artifact, or an
    /// already-measured calibration slot).
    pub cache_hits: usize,
    /// Total wall time spent in this stage across the batch (for cache
    /// hits: the lookup time).
    pub wall: Duration,
}

/// Human-readable summary: one line of job/failure counts, wall and cpu
/// time, routing-memo and disk hit rates, and calibration measurements,
/// followed by a per-stage `runs/hits wall` breakdown aggregated from the
/// jobs' pipeline traces. The `fig*` binaries print this after every
/// suite compile.
impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs ({} failed) in {:.1?} wall / {:.1?} cpu; routing memo {} hit / {} miss; ",
            self.outcomes.len(),
            self.error_count(),
            self.wall_time,
            self.cpu_time(),
            self.route_hits,
            self.route_misses,
        )?;
        if self.disk_hits + self.disk_misses > 0 {
            write!(
                f,
                "disk {} hit / {} miss; ",
                self.disk_hits, self.disk_misses
            )?;
        } else {
            write!(f, "disk cache off; ")?;
        }
        write!(f, "{} calibration run(s)", self.calibration_runs)?;
        write!(f, "\n  stages (runs/hits wall):")?;
        for stats in self.stage_stats() {
            write!(
                f,
                " {} {}/{} {:.1?}",
                stats.stage, stats.executed, stats.cache_hits, stats.wall
            )?;
        }
        Ok(())
    }
}

/// Compiles batches of jobs concurrently with shared calibration and
/// routing caches. Each job runs through a [`PassManager`] wired to the
/// compiler's shared [`RouteMemo`], calibration cache and store, so the
/// stage-granular caching (and the per-pass instrumentation) of
/// [`crate::pipeline`] applies batch-wide. See the [module docs](self)
/// for an example.
///
/// **Legacy adapter.** This engine predates the service layer and is
/// kept as a thin, bit-identical adapter over the same per-job pass
/// managers a `zz_service::Session` runs (the `tests/service.rs`
/// equivalence matrix pins the two together). New code should submit
/// `CompileRequest`s to a long-lived `Session`, which adds non-blocking
/// job handles, optional in-queue fidelity evaluation and typed errors.
#[derive(Debug)]
pub struct BatchCompiler {
    topology: Topology,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
    threads: usize,
    route_memo: Arc<RouteMemo>,
    store: Option<Arc<ArtifactStore>>,
    calib: Option<Arc<CalibCache>>,
}

impl BatchCompiler {
    /// Starts building a batch compiler (defaults match
    /// [`CoOptimizer::builder`](crate::CoOptimizer::builder): 3×4 grid,
    /// `α = 0.5`, `k = 3`, paper requirement, one worker per available
    /// core).
    pub fn builder() -> BatchCompilerBuilder {
        BatchCompilerBuilder::default()
    }

    /// The calibration cache serving this compiler's jobs: the builder's
    /// [`calib_cache`](BatchCompilerBuilder::calib_cache) instance, or the
    /// process-wide [`CalibCache::global`] by default.
    pub fn calib_cache(&self) -> &CalibCache {
        match &self.calib {
            Some(cache) => cache,
            None => CalibCache::global(),
        }
    }

    /// The on-disk artifact store backing this compiler, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// The [`PassManager`] compiling `job`: the job's effective
    /// configuration (its overrides over the compiler's defaults), wired
    /// to the compiler's shared route memo, store and calibration cache.
    fn manager_for(&self, job: &BatchJob) -> PassManager {
        let topo = job.topology.as_ref().unwrap_or(&self.topology);
        let mut builder = PassManager::builder()
            .topology(topo.clone())
            .pulse_method(job.options.method)
            .scheduler(job.options.scheduler)
            .alpha(job.options.alpha_or(self.alpha))
            .k(job.options.k_or(self.k))
            .route_memo(Arc::clone(&self.route_memo));
        if let Some(req) = job.options.requirement_or(self.requirement) {
            builder = builder.requirement(req);
        }
        if let Some(store) = &self.store {
            builder = builder.store(Arc::clone(store));
        }
        if let Some(calib) = &self.calib {
            builder = builder.calib(Arc::clone(calib));
        }
        builder.build()
    }

    /// Compiles one job using the shared caches (no worker pool).
    pub fn compile(&self, job: &BatchJob) -> JobOutcome {
        let t0 = Instant::now();
        match self.manager_for(job).run(Arc::clone(&job.circuit)) {
            Ok(outcome) => {
                let route_cache_hit = outcome.trace.compiled_cache == CacheDisposition::DiskHit
                    || outcome
                        .trace
                        .pass(Stage::Route)
                        .is_some_and(|p| p.cache.is_hit());
                let disk = match outcome.trace.compiled_cache {
                    CacheDisposition::DiskHit => DiskStatus::Hit,
                    CacheDisposition::Miss => DiskStatus::Miss,
                    _ => DiskStatus::NotConsulted,
                };
                JobOutcome {
                    label: job.label.clone(),
                    result: Ok(outcome.compiled),
                    compile_time: t0.elapsed(),
                    route_cache_hit,
                    disk,
                    trace: outcome.trace,
                }
            }
            Err(err) => JobOutcome {
                label: job.label.clone(),
                result: Err(err),
                compile_time: t0.elapsed(),
                route_cache_hit: false,
                disk: DiskStatus::NotConsulted,
                trace: PipelineTrace::default(),
            },
        }
    }

    /// Compiles every job on the worker pool and aggregates a
    /// [`BatchReport`]. Outcomes keep submission order.
    pub fn run(&self, jobs: Vec<BatchJob>) -> BatchReport {
        let start = Instant::now();
        let calib_before = self.calib_cache().calibration_runs();
        let threads = self.threads.min(jobs.len()).max(1);
        let outcomes = parallel_map(jobs.len(), threads, |i| self.compile(&jobs[i]));
        let route_hits = outcomes.iter().filter(|o| o.route_cache_hit).count();
        let route_misses = outcomes
            .iter()
            .filter(|o| !o.route_cache_hit && o.result.is_ok())
            .count();
        let disk_hits = outcomes
            .iter()
            .filter(|o| o.disk == DiskStatus::Hit)
            .count();
        let disk_misses = outcomes
            .iter()
            .filter(|o| o.disk == DiskStatus::Miss)
            .count();
        // Publish every residual table the cache holds — including ones
        // measured *before* this batch (a direct `calib::residuals` call
        // fills the slot without writing), so the next process never
        // repeats a measurement this one already paid for.
        if let Some(store) = &self.store {
            self.calib_cache().save_to(store);
        }
        BatchReport {
            outcomes,
            wall_time: start.elapsed(),
            route_hits,
            route_misses,
            disk_hits,
            disk_misses,
            calibration_runs: self.calib_cache().calibration_runs() - calib_before,
        }
    }

    /// Number of distinct circuit × device shapes currently memoized.
    pub fn memoized_shapes(&self) -> usize {
        self.route_memo.memoized_shapes()
    }
}

/// Builder for [`BatchCompiler`].
#[derive(Debug)]
pub struct BatchCompilerBuilder {
    topology: Topology,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
    threads: usize,
    store: Option<Arc<ArtifactStore>>,
    calib: Option<Arc<CalibCache>>,
}

impl Default for BatchCompilerBuilder {
    fn default() -> Self {
        BatchCompilerBuilder {
            topology: Topology::grid(3, 4),
            alpha: crate::options::DEFAULT_ALPHA,
            k: crate::options::DEFAULT_K,
            requirement: None,
            threads: default_threads(),
            store: None,
            calib: None,
        }
    }
}

impl BatchCompilerBuilder {
    /// Sets the base device topology jobs compile onto unless they override
    /// it (default: the paper's 3×4 grid).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = topo;
        self
    }

    /// Sets the NQ-vs-NC weight α of Algorithm 1 (default 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the top-k path-relaxing budget of Algorithm 1 (default 3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the suppression requirement `R` (default: the paper's,
    /// derived from each job's device).
    pub fn requirement(mut self, requirement: Requirement) -> Self {
        self.requirement = Some(requirement);
        self
    }

    /// Sets the worker-pool size (default: one per available core; always
    /// clamped to the job count at run time).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Backs this compiler with an on-disk [`ArtifactStore`]: compiled
    /// plans, routed translations and residual tables persist across
    /// processes (default: no store — caches are in-memory only).
    pub fn store(mut self, store: ArtifactStore) -> Self {
        self.store = Some(Arc::new(store));
        self
    }

    /// Like [`store`](Self::store), for an already-shared store (e.g. one
    /// that also backs a standalone [`PassManager`]).
    pub fn shared_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Backs this compiler with the store named by the `ZZ_CACHE_DIR`
    /// environment variable; a no-op when the variable is unset or empty.
    /// The figure binaries and examples opt in through this.
    pub fn store_from_env(mut self) -> Self {
        if let Some(store) = ArtifactStore::from_env() {
            self.store = Some(Arc::new(store));
        }
        self
    }

    /// Serves calibration from the given cache instead of the process-wide
    /// [`CalibCache::global`] — lets tests and multi-tenant services
    /// isolate calibration state per compiler.
    pub fn calib_cache(mut self, cache: Arc<CalibCache>) -> Self {
        self.calib = Some(cache);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> BatchCompiler {
        BatchCompiler {
            topology: self.topology,
            alpha: self.alpha,
            k: self.k,
            requirement: self.requirement,
            threads: self.threads,
            route_memo: Arc::new(RouteMemo::new()),
            store: self.store,
            calib: self.calib,
        }
    }
}

/// The workspace's shared fan-out primitive and default worker count — the
/// batch engine, the evaluation helpers and the figure binaries all
/// schedule through the one pool crate (re-exported here so existing
/// `zz_core::batch::parallel_map` call sites keep their path).
pub use zz_pool::{default_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::Gate;

    fn small_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::H, &[0]);
        if n > 1 {
            c.push(Gate::Cnot, &[0, 1]);
        }
        c
    }

    #[test]
    fn batch_preserves_submission_order() {
        let compiler = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build();
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                BatchJob::new(small_circuit(2), PulseMethod::Pert, SchedulerKind::ZzxSched)
                    .with_label(format!("job-{i}"))
            })
            .collect();
        let report = compiler.run(jobs);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.label, format!("job-{i}"));
            assert!(outcome.result.is_ok());
        }
    }

    #[test]
    fn identical_shapes_route_once() {
        // Serial workers make the hit/miss split deterministic.
        let compiler = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .threads(1)
            .build();
        let circuit = small_circuit(2);
        let jobs: Vec<BatchJob> = [
            (PulseMethod::Gaussian, SchedulerKind::ParSched),
            (PulseMethod::Pert, SchedulerKind::ZzxSched),
            (PulseMethod::Dcg, SchedulerKind::ZzxSched),
        ]
        .into_iter()
        .map(|(m, s)| BatchJob::new(circuit.clone(), m, s))
        .collect();
        let report = compiler.run(jobs);
        assert_eq!(report.route_misses, 1, "{report}");
        assert_eq!(report.route_hits, 2, "{report}");
        assert_eq!(compiler.memoized_shapes(), 1);
    }

    #[test]
    fn distinct_shapes_are_keyed_apart() {
        let topo = Topology::grid(2, 2);
        let a = small_circuit(2);
        let mut b = small_circuit(2);
        b.push(Gate::X, &[1]);
        assert_ne!(shape_key(&a, &topo), shape_key(&b, &topo));
        assert_ne!(shape_key(&a, &topo), shape_key(&a, &Topology::grid(2, 3)));
    }

    #[test]
    fn oversized_jobs_error_without_poisoning_the_batch() {
        let compiler = BatchCompiler::builder()
            .topology(Topology::grid(2, 2))
            .build();
        let jobs = vec![
            BatchJob::new(small_circuit(2), PulseMethod::Pert, SchedulerKind::ZzxSched),
            BatchJob::new(small_circuit(9), PulseMethod::Pert, SchedulerKind::ZzxSched),
        ];
        let report = compiler.run(jobs);
        assert_eq!(report.error_count(), 1);
        assert!(report.outcomes[0].result.is_ok());
        assert_eq!(
            report.outcomes[1].result,
            Err(CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4
            })
        );
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(64, 8, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }
}
